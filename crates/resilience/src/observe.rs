//! Running one trial under a failure watch.
//!
//! A *trial* is one world run under some chaos configuration for a
//! bounded virtual window, executed in slices so the watcher can
//! inspect the wait-for graph between them. The first slice after which
//! the world is globally deadlocked, has a panicked thread, or carries a
//! wedge older than the threshold ends the trial with a [`Failure`].
//!
//! Three world families are observable ([`TrialWorld`]):
//!
//! * **Cell** — a `(system, benchmark)` cell of the paper's matrix,
//!   built by [`workloads`];
//! * **MultiCore** — a seed-dependent transfer mesh on [`pcr::MpSim`],
//!   where tellers lock account pairs in seed-derived orders (AB-BA
//!   deadlocks for the unlucky orders, §5.3);
//! * **WeakMemory** — the §5.5 publication race on [`pcr::weakmem`]: a
//!   publisher stores data then flag with no fence, and the reader
//!   panics when the flag outruns the data.
//!
//! The same function serves both directions: recording (probabilistic
//! chaos, harvesting [`pcr::Sim::fault_schedule`]) and replaying (a
//! scripted [`FaultSchedule`], which by the `pcr` fixed-point property
//! reproduces the recorded run byte-for-byte).

use pcr::{
    micros, millis, weakmem::WeakMem, ChaosConfig, FaultSchedule, HazardCounts, MpSim, Priority,
    RunLimit, Sim, SimConfig, SimDuration, SplitMix64, StopReason, WaitForGraph,
};
use threadstudy_core::System;
use workloads::{build_chaos_with, Benchmark};

use crate::case::StoredCase;
use crate::signature::{Failure, FailureClass};

/// Which world family a trial runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrialWorld {
    /// A `(system, benchmark)` cell of the paper's matrix.
    Cell,
    /// The multiprocessor transfer mesh on [`pcr::MpSim`].
    MultiCore {
        /// Simulated CPUs.
        cpus: u32,
    },
    /// The §5.5 publication race over weakly-ordered memory.
    WeakMemory {
        /// Maximum store-visibility delay, in microseconds.
        max_delay_us: u64,
    },
    /// A small, hot cell of the overload-resilient serve world
    /// (`workloads::serve`), with its own burst/outage stressors on top
    /// of whatever chaos the rung injects.
    Serve {
        /// Which canned serve scenario the cell runs.
        scenario: workloads::serve::ServeScenario,
    },
}

impl TrialWorld {
    /// Stable serialization tag: `cell`, `mp:N`, `weakmem:D`, or
    /// `serve:SCENARIO`.
    pub fn tag(&self) -> String {
        match self {
            TrialWorld::Cell => "cell".to_string(),
            TrialWorld::MultiCore { cpus } => format!("mp:{cpus}"),
            TrialWorld::WeakMemory { max_delay_us } => format!("weakmem:{max_delay_us}"),
            TrialWorld::Serve { scenario } => format!("serve:{}", scenario.label()),
        }
    }

    /// Parses a serialization tag back into a world.
    pub fn from_tag(tag: &str) -> Result<TrialWorld, String> {
        if tag == "cell" {
            return Ok(TrialWorld::Cell);
        }
        if let Some(n) = tag.strip_prefix("mp:") {
            let cpus = n
                .parse()
                .map_err(|e| format!("bad mp world {tag:?}: {e}"))?;
            return Ok(TrialWorld::MultiCore { cpus });
        }
        if let Some(d) = tag.strip_prefix("weakmem:") {
            let max_delay_us = d
                .parse()
                .map_err(|e| format!("bad weakmem world {tag:?}: {e}"))?;
            return Ok(TrialWorld::WeakMemory { max_delay_us });
        }
        if let Some(s) = tag.strip_prefix("serve:") {
            let scenario = workloads::serve::ServeScenario::from_label(s)
                .ok_or_else(|| format!("bad serve world {tag:?}: unknown scenario {s:?}"))?;
            return Ok(TrialWorld::Serve { scenario });
        }
        Err(format!("unknown trial world {tag:?}"))
    }

    /// Filesystem-safe prefix for stored-case file names.
    pub fn file_prefix(&self) -> Option<String> {
        match self {
            TrialWorld::Cell => None,
            TrialWorld::MultiCore { cpus } => Some(format!("mp{cpus}")),
            TrialWorld::WeakMemory { max_delay_us } => Some(format!("weakmem{max_delay_us}")),
            TrialWorld::Serve { scenario } => Some(format!("serve-{}", scenario.label())),
        }
    }
}

/// Everything that identifies one trial besides its chaos configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrialSpec {
    /// Which world family to run. `system`/`benchmark` only select the
    /// cell when this is [`TrialWorld::Cell`].
    pub world: TrialWorld,
    /// Which system's world to build.
    pub system: System,
    /// Which benchmark drives it.
    pub benchmark: Benchmark,
    /// Simulator seed.
    pub seed: u64,
    /// Total virtual window to run before declaring the trial clean.
    pub window: SimDuration,
    /// Slice length between failure checks.
    pub slice: SimDuration,
    /// How long a thread must sit blocked before it counts as wedged.
    pub wedge_threshold: SimDuration,
    /// Optional thread-table cap (the §5.4 fork-outage lever).
    pub max_threads: Option<usize>,
    /// Which scheduling policy dispatches the trial's world. Applies to
    /// [`TrialWorld::Cell`] and [`TrialWorld::WeakMemory`] (which run on
    /// [`pcr::Sim`]); the multiprocessor world has its own per-CPU
    /// dispatcher and ignores it.
    pub policy: pcr::PolicyKind,
}

/// The outcome of one trial.
#[derive(Debug)]
pub struct Observation {
    /// The failure, if the trial failed within the window.
    pub failure: Option<Failure>,
    /// The fault schedule the run actually executed (recorded from the
    /// RNG in probabilistic mode, echoed back in scripted mode).
    pub schedule: FaultSchedule,
    /// Hazard tallies over the run.
    pub hazards: HazardCounts,
    /// Virtual time elapsed until failure detection or window end.
    pub elapsed: SimDuration,
    /// Names of the threads still live when the trial ended — the
    /// stall-splice targets for the guided fuzzer's mutation engine.
    pub live_threads: Vec<String>,
    /// Names of the world's monitors — the `while_holding` gates for
    /// the guided fuzzer's §6.2-style mid-critical-section splices.
    pub monitors: Vec<String>,
}

impl Observation {
    /// The failure signature, if the trial failed.
    pub fn signature(&self) -> Option<String> {
        self.failure.as_ref().map(|f| f.signature())
    }
}

fn wedge_failure(graph: &WaitForGraph, wedged: &[&pcr::WaitingThread]) -> Failure {
    Failure {
        class: FailureClass::Wedge,
        parties: wedged
            .iter()
            .map(|w| format!("{}({})", w.name, w.kind.tag()))
            .collect(),
        resources: wedged.iter().map(|w| w.resource.clone()).collect(),
        detail: graph.render(),
    }
}

/// Builds the §5.5 publication-race world: the publisher fills the data
/// word and then raises the flag with no intervening fence, so for some
/// visibility-delay draws the flag outruns the data and the reader's
/// staleness assert panics — the paper's "modern multiprocessors with
/// weakly ordered memory" bug, reproduced on purpose.
fn build_weakmem_world(spec: &TrialSpec, chaos: ChaosConfig, max_delay_us: u64) -> Sim {
    const DATA: usize = 0;
    const FLAG: usize = 1;
    const ROUNDS: u64 = 200;
    let cfg = SimConfig::default()
        .with_seed(spec.seed)
        .with_policy(spec.policy)
        .with_chaos(chaos);
    let mut sim = Sim::new(cfg);
    let mem = WeakMem::new(spec.seed ^ 0x7EA4_5EED, micros(max_delay_us));
    let m = mem.clone();
    let _ = sim.fork_root("wm-publisher", Priority::of(4), move |ctx| {
        for round in 1..=ROUNDS {
            m.store(ctx, DATA, round);
            ctx.work(micros(20));
            m.store(ctx, FLAG, round); // Missing fence: the §5.5 bug.
            ctx.sleep(millis(2));
        }
    });
    let _ = sim.fork_root("wm-reader", Priority::of(5), move |ctx| {
        let mut seen = 0u64;
        while seen < ROUNDS {
            let flag = mem.load(ctx, FLAG);
            if flag > seen {
                let data = mem.load(ctx, DATA);
                assert!(
                    data >= flag,
                    "stale publication: flag {flag} but data {data}"
                );
                seen = flag;
            }
            ctx.sleep_precise(micros(300));
        }
    });
    sim
}

/// Runs the multiprocessor transfer mesh: four tellers move value
/// between three accounts, each locking its account pair in a
/// seed-derived order. Opposing orders race into AB-BA deadlock; the
/// deadlock report's population becomes the failure's parties.
fn observe_multicore(spec: &TrialSpec, cpus: u32) -> Observation {
    let cfg = SimConfig::default().with_seed(spec.seed);
    let mut mp = MpSim::new(cfg, cpus.max(1) as usize);
    let accounts: Vec<_> = (0..3)
        .map(|i| mp.monitor(&format!("account{i}"), 100i64))
        .collect();
    let mut rng = SplitMix64::new(spec.seed ^ 0xAB5A_AB5A);
    for t in 0..4 {
        let a = rng.next_below(accounts.len() as u64) as usize;
        let b = (a + 1 + rng.next_below(accounts.len() as u64 - 1) as usize) % accounts.len();
        let (ma, mb) = (accounts[a].clone(), accounts[b].clone());
        let _ = mp.fork_root(&format!("teller{t}"), Priority::of(4), move |ctx| {
            for _ in 0..40 {
                let mut ga = ctx.enter(&ma);
                ctx.sleep_precise(millis(2)); // threadlint: allow(blocking-call-in-monitor)
                                              // threadlint: allow(lock-order-cycle) — the seed-derived
                                              // order cycle is exactly what this world probes.
                let mut gb = ctx.enter(&mb);
                ga.with_mut(|v| *v -= 1);
                gb.with_mut(|v| *v += 1);
                drop(gb);
                drop(ga);
                ctx.work(micros(200));
            }
        });
    }
    let report = mp.run(RunLimit::For(spec.window));
    let failure = match &report.reason {
        StopReason::Deadlock(rep) => {
            let parties = rep
                .blocked
                .iter()
                .map(|b| {
                    let kind = b.waiting_for.split_whitespace().next().unwrap_or("blocked");
                    format!("{}({kind})", b.name)
                })
                .collect();
            let detail = rep
                .blocked
                .iter()
                .map(|b| format!("  {} waiting for {}\n", b.name, b.waiting_for))
                .collect();
            let resources = rep
                .blocked
                .iter()
                .filter_map(|b| b.waiting_for.split_whitespace().nth(1))
                .map(String::from)
                .collect();
            Some(Failure {
                class: FailureClass::Deadlock,
                parties,
                resources,
                detail,
            })
        }
        _ if mp.stats().panics > 0 => Some(Failure {
            class: FailureClass::Panic,
            parties: vec!["mp-world(panic)".to_string()],
            resources: Vec::new(),
            detail: String::new(),
        }),
        _ => None,
    };
    Observation {
        failure,
        schedule: FaultSchedule::default(),
        hazards: HazardCounts::default(),
        elapsed: report.elapsed,
        live_threads: Vec::new(),
        monitors: Vec::new(),
    }
}

/// Runs one trial of `spec` under `chaos` and watches it for failure.
///
/// Deterministic: the same `(spec, chaos)` observes the same outcome,
/// schedule, and elapsed time every call.
pub fn observe(spec: &TrialSpec, chaos: ChaosConfig) -> Observation {
    let mut sim = match spec.world {
        TrialWorld::MultiCore { cpus } => return observe_multicore(spec, cpus),
        TrialWorld::WeakMemory { max_delay_us } => build_weakmem_world(spec, chaos, max_delay_us),
        TrialWorld::Serve { scenario } => {
            workloads::serve::build_fuzz_world(scenario, spec.seed, chaos, spec.max_threads)
        }
        TrialWorld::Cell => {
            build_chaos_with(spec.system, spec.benchmark, spec.seed, chaos, |cfg| {
                let cfg = cfg.with_policy(spec.policy);
                match spec.max_threads {
                    Some(n) => cfg.with_max_threads(n),
                    None => cfg,
                }
            })
        }
    };
    let mut remaining = spec.window;
    let mut elapsed = SimDuration::ZERO;
    let mut hazards = HazardCounts::default();
    let mut failure = None;
    while !remaining.is_zero() {
        let step = spec.slice.min(remaining);
        let report = sim.run(RunLimit::For(step));
        elapsed += report.elapsed;
        remaining = remaining.saturating_sub(step);
        hazards = report.hazards;
        if sim.stats().panics > 0 {
            let parties = sim
                .threads_iter()
                .filter(|t| t.panicked)
                .map(|t| format!("{}(panic)", t.name))
                .collect();
            failure = Some(Failure {
                class: FailureClass::Panic,
                parties,
                resources: Vec::new(),
                detail: String::new(),
            });
            break;
        }
        let graph = sim.wait_for_graph();
        if let StopReason::Deadlock(_) = report.reason {
            // Global deadlock: every blocked thread is a party (the
            // clock has stopped, so the wedge-age filter is moot).
            let parties = graph
                .threads
                .iter()
                .map(|w| format!("{}({})", w.name, w.kind.tag()))
                .collect();
            failure = Some(Failure {
                class: FailureClass::Deadlock,
                parties,
                resources: graph.threads.iter().map(|w| w.resource.clone()).collect(),
                detail: graph.render(),
            });
            break;
        }
        let wedged = graph.wedged(spec.wedge_threshold);
        if !wedged.is_empty() {
            failure = Some(wedge_failure(&graph, &wedged));
            break;
        }
        if matches!(report.reason, StopReason::AllExited) {
            break;
        }
    }
    let mut live_threads: Vec<String> = sim
        .threads_iter()
        .filter(|t| !t.exited)
        .map(|t| t.name.to_string())
        .collect();
    live_threads.sort();
    live_threads.dedup();
    let mut monitors = sim.monitor_names();
    monitors.sort();
    monitors.dedup();
    Observation {
        failure,
        schedule: sim.fault_schedule(),
        hazards,
        elapsed,
        live_threads,
        monitors,
    }
}

/// Replays a stored case with its own recorded schedule.
pub fn replay(case: &StoredCase) -> Observation {
    replay_schedule(case, &case.schedule)
}

/// Replays a stored case's trial under an arbitrary scripted schedule
/// (the shrinker's oracle: "does this reduced schedule still produce the
/// original failure signature?").
pub fn replay_schedule(case: &StoredCase, schedule: &FaultSchedule) -> Observation {
    observe(&case.spec(), ChaosConfig::none().scripted(schedule.clone()))
}
