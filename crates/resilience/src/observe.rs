//! Running one trial under a failure watch.
//!
//! A *trial* is one benchmark cell run under some chaos configuration
//! for a bounded virtual window, executed in slices so the watcher can
//! inspect the wait-for graph between them. The first slice after which
//! the world is globally deadlocked, has a panicked thread, or carries a
//! wedge older than the threshold ends the trial with a [`Failure`].
//!
//! The same function serves both directions: recording (probabilistic
//! chaos, harvesting [`pcr::Sim::fault_schedule`]) and replaying (a
//! scripted [`FaultSchedule`], which by the `pcr` fixed-point property
//! reproduces the recorded run byte-for-byte).

use pcr::{
    ChaosConfig, FaultSchedule, HazardCounts, RunLimit, SimDuration, StopReason, WaitForGraph,
};
use threadstudy_core::System;
use workloads::{build_chaos_with, Benchmark};

use crate::case::StoredCase;
use crate::signature::{Failure, FailureClass};

/// Everything that identifies one trial besides its chaos configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrialSpec {
    /// Which system's world to build.
    pub system: System,
    /// Which benchmark drives it.
    pub benchmark: Benchmark,
    /// Simulator seed.
    pub seed: u64,
    /// Total virtual window to run before declaring the trial clean.
    pub window: SimDuration,
    /// Slice length between failure checks.
    pub slice: SimDuration,
    /// How long a thread must sit blocked before it counts as wedged.
    pub wedge_threshold: SimDuration,
    /// Optional thread-table cap (the §5.4 fork-outage lever).
    pub max_threads: Option<usize>,
}

/// The outcome of one trial.
#[derive(Debug)]
pub struct Observation {
    /// The failure, if the trial failed within the window.
    pub failure: Option<Failure>,
    /// The fault schedule the run actually executed (recorded from the
    /// RNG in probabilistic mode, echoed back in scripted mode).
    pub schedule: FaultSchedule,
    /// Hazard tallies over the run.
    pub hazards: HazardCounts,
    /// Virtual time elapsed until failure detection or window end.
    pub elapsed: SimDuration,
}

impl Observation {
    /// The failure signature, if the trial failed.
    pub fn signature(&self) -> Option<String> {
        self.failure.as_ref().map(|f| f.signature())
    }
}

fn wedge_failure(graph: &WaitForGraph, wedged: &[&pcr::WaitingThread]) -> Failure {
    Failure {
        class: FailureClass::Wedge,
        parties: wedged
            .iter()
            .map(|w| format!("{}({})", w.name, w.kind.tag()))
            .collect(),
        detail: graph.render(),
    }
}

/// Runs one trial of `spec` under `chaos` and watches it for failure.
///
/// Deterministic: the same `(spec, chaos)` observes the same outcome,
/// schedule, and elapsed time every call.
pub fn observe(spec: &TrialSpec, chaos: ChaosConfig) -> Observation {
    let mut sim = build_chaos_with(
        spec.system,
        spec.benchmark,
        spec.seed,
        chaos,
        |cfg| match spec.max_threads {
            Some(n) => cfg.with_max_threads(n),
            None => cfg,
        },
    );
    let mut remaining = spec.window;
    let mut elapsed = SimDuration::ZERO;
    let mut hazards = HazardCounts::default();
    let mut failure = None;
    while !remaining.is_zero() {
        let step = spec.slice.min(remaining);
        let report = sim.run(RunLimit::For(step));
        elapsed += report.elapsed;
        remaining = remaining.saturating_sub(step);
        hazards = report.hazards;
        if sim.stats().panics > 0 {
            let parties = sim
                .threads_iter()
                .filter(|t| t.panicked)
                .map(|t| format!("{}(panic)", t.name))
                .collect();
            failure = Some(Failure {
                class: FailureClass::Panic,
                parties,
                detail: String::new(),
            });
            break;
        }
        let graph = sim.wait_for_graph();
        if let StopReason::Deadlock(_) = report.reason {
            // Global deadlock: every blocked thread is a party (the
            // clock has stopped, so the wedge-age filter is moot).
            let parties = graph
                .threads
                .iter()
                .map(|w| format!("{}({})", w.name, w.kind.tag()))
                .collect();
            failure = Some(Failure {
                class: FailureClass::Deadlock,
                parties,
                detail: graph.render(),
            });
            break;
        }
        let wedged = graph.wedged(spec.wedge_threshold);
        if !wedged.is_empty() {
            failure = Some(wedge_failure(&graph, &wedged));
            break;
        }
        if matches!(report.reason, StopReason::AllExited) {
            break;
        }
    }
    Observation {
        failure,
        schedule: sim.fault_schedule(),
        hazards,
        elapsed,
    }
}

/// Replays a stored case with its own recorded schedule.
pub fn replay(case: &StoredCase) -> Observation {
    replay_schedule(case, &case.schedule)
}

/// Replays a stored case's trial under an arbitrary scripted schedule
/// (the shrinker's oracle: "does this reduced schedule still produce the
/// original failure signature?").
pub fn replay_schedule(case: &StoredCase, schedule: &FaultSchedule) -> Observation {
    observe(&case.spec(), ChaosConfig::none().scripted(schedule.clone()))
}
