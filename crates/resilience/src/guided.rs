//! Coverage-guided schedule exploration.
//!
//! The grid fuzzer ([`crate::fuzz`]) spends its whole budget on
//! enumeration: every trial is an independent draw from the cell ×
//! intensity × seed lattice. The guided fuzzer instead keeps a **corpus**
//! of interesting cases — one per distinct failure signature — and
//! spends most of its budget *mutating* corpus schedules, biased toward
//! the entries whose mutations keep discovering new signatures:
//!
//! * every corpus entry carries an **energy** score; novelty earns
//!   energy, sterile mutations drain it (never below a floor, so no
//!   entry starves completely);
//! * mutation picks a parent by energy-weighted draw, then applies one
//!   of the schedule mutations below and replays the mutated schedule
//!   as a scripted trial — deterministic, like every other trial;
//! * every third trial is taken from the plain grid enumeration, so the
//!   corpus keeps being seeded with structurally fresh failures and a
//!   guided run can never do *worse* than a third of a grid run.
//!
//! Schedule mutations (all deterministic from the run's base seed):
//!
//! | name            | effect |
//! |-----------------|--------|
//! | `splice-stall`  | add a long stall of a thread that was live at failure time, half the time gated on it holding one of the world's monitors (§6.2's preempted lock holder) |
//! | `perturb-stall` | move or scale an existing stall |
//! | `drop-decision` | delete one recorded fault decision |
//! | `perturb-param` | scale one decision's parameter (timer skew, stall length) |
//! | `pct-inject`    | add PCT priority-change points at random dispatch sites |
//! | `reseed`        | replay the same schedule against a fresh simulator seed |
//! | `intensity-hop` | re-run the parent's cell under a different ladder rung |
//! | `gate-probe`    | drop the parent's schedule and stall one live thread the moment it holds one monitor — a clean §6.2 preempted-lock-holder experiment per (thread, monitor) pair |
//!
//! The headline metric is **distinct signatures per CPU-minute**; the
//! guided fuzzer exists to beat the grid on it, and the CI smoke job
//! fails if it ever stops doing so.

use pcr::{
    millis, ChaosConfig, FaultDecision, FaultSchedule, FaultSiteKind, Priority, SimTime,
    SplitMix64, StallSpec,
};

use crate::case::StoredCase;
use crate::fuzz::{cell_ladder, grid_trial, FoundCase, FuzzConfig, Intensity};
use crate::observe::observe;

/// Energy a corpus entry starts with, and what novelty re-earns.
const ENERGY_START: u32 = 8;
/// Energy floor: no entry is ever fully starved of mutation attempts.
const ENERGY_FLOOR: u32 = 1;

/// Every mutation the engine can apply, in draw order. `gate-probe` is
/// drawn with extra weight (see [`draw_mutation`]): its search space per
/// cell is just threads × monitors, so a boosted draw rate covers it
/// within a normal fuzz budget.
const MUTATIONS: [&str; 8] = [
    "splice-stall",
    "perturb-stall",
    "drop-decision",
    "perturb-param",
    "pct-inject",
    "reseed",
    "intensity-hop",
    "gate-probe",
];

/// Draws the next mutation: `gate-probe` a third of the time, the rest
/// uniformly. Gate probes are the engine's most productive dimension
/// (each is a fresh §6.2 preempted-lock-holder experiment the intensity
/// rungs never run), and their space is small enough that the boosted
/// rate exhausts it.
fn draw_mutation(rng: &mut SplitMix64) -> &'static str {
    if rng.next_below(3) == 0 {
        "gate-probe"
    } else {
        MUTATIONS[rng.next_below(MUTATIONS.len() as u64 - 1) as usize]
    }
}

struct CorpusEntry {
    case: StoredCase,
    live_threads: Vec<String>,
    monitors: Vec<String>,
    energy: u32,
}

/// One new signature first reached by a mutation (rather than the grid).
#[derive(Debug)]
pub struct MutationDiscovery {
    /// Which mutation produced it.
    pub mutation: String,
    /// The signature of the parent case that was mutated.
    pub parent: String,
    /// The newly discovered signature.
    pub signature: String,
}

/// The result of a guided sweep.
#[derive(Debug)]
pub struct GuidedOutcome {
    /// Trials actually run.
    pub trials: u32,
    /// Trials that failed (including duplicates of known signatures).
    pub failures: u32,
    /// Unique failures, sorted by signature.
    pub cases: Vec<FoundCase>,
    /// Signatures first reached by mutation rather than grid
    /// enumeration, in discovery order.
    pub mutation_discoveries: Vec<MutationDiscovery>,
}

fn weighted_pick(rng: &mut SplitMix64, corpus: &[CorpusEntry]) -> usize {
    let total: u64 = corpus.iter().map(|e| u64::from(e.energy)).sum();
    let mut draw = rng.next_below(total.max(1));
    for (i, e) in corpus.iter().enumerate() {
        let w = u64::from(e.energy);
        if draw < w {
            return i;
        }
        draw -= w;
    }
    corpus.len() - 1
}

/// Applies one mutation to a parent entry, returning the mutated case to
/// replay plus the scripted chaos to run it under. `None` means the
/// drawn mutation has nothing to act on (e.g. `drop-decision` with no
/// recorded decisions) — the caller redraws.
fn mutate(
    rng: &mut SplitMix64,
    parent: &CorpusEntry,
    mutation: &str,
) -> Option<(StoredCase, ChaosConfig)> {
    let mut case = parent.case.clone();
    let window_us = case.window.as_micros().max(1);
    match mutation {
        "splice-stall" => {
            let thread = if parent.live_threads.is_empty() {
                return None;
            } else {
                parent.live_threads[rng.next_below(parent.live_threads.len() as u64) as usize]
                    .clone()
            };
            // Half the splices gate on a monitor (§6.2's preempted lock
            // holder): an ungated stall almost never catches a thread
            // mid-critical-section by chance, so gating is what unlocks
            // wedge party sets the intensity rungs never produce.
            let gated = !parent.monitors.is_empty() && rng.next_below(2) == 0;
            if gated {
                let m =
                    parent.monitors[rng.next_below(parent.monitors.len() as u64) as usize].clone();
                case.schedule.stalls.push(StallSpec {
                    thread,
                    at: SimTime::from_micros(rng.next_below((window_us / 2).max(1))),
                    duration: case.window,
                    while_holding: Some(m),
                });
            } else {
                case.schedule.stalls.push(StallSpec {
                    thread,
                    at: SimTime::from_micros(rng.next_below(window_us)),
                    duration: millis(500 + rng.next_below(window_us / 1000 + 1) * 4),
                    while_holding: None,
                });
            }
        }
        "perturb-stall" => {
            let n = case.schedule.stalls.len();
            if n == 0 {
                return None;
            }
            let s = &mut case.schedule.stalls[rng.next_below(n as u64) as usize];
            if rng.next_below(2) == 0 {
                s.at = SimTime::from_micros(rng.next_below(window_us));
            } else {
                let scale = 1 + rng.next_below(4);
                s.duration = millis((s.duration.as_micros() / 1000).max(1) * scale);
            }
        }
        "drop-decision" => {
            let n = case.schedule.decisions.len();
            if n == 0 {
                return None;
            }
            case.schedule
                .decisions
                .remove(rng.next_below(n as u64) as usize);
        }
        "perturb-param" => {
            let n = case.schedule.decisions.len();
            if n == 0 {
                return None;
            }
            let d = &mut case.schedule.decisions[rng.next_below(n as u64) as usize];
            d.param_us = match d.kind {
                // Priority levels stay in range; durations scale freely.
                FaultSiteKind::PriorityChange => 1 + rng.next_below(Priority::LEVELS as u64),
                _ => (d.param_us.max(1)).saturating_mul(1 + rng.next_below(8)),
            };
        }
        "pct-inject" => {
            for _ in 0..(1 + rng.next_below(3)) {
                case.schedule.decisions.push(FaultDecision {
                    kind: FaultSiteKind::PriorityChange,
                    site: rng.next_below(4096),
                    param_us: 1 + rng.next_below(Priority::LEVELS as u64),
                });
            }
        }
        "reseed" => {
            case.seed = rng.next_u64();
        }
        "gate-probe" => {
            // Drop the parent's schedule entirely (so its failure cannot
            // recur first and mask the probe) and stall one live thread
            // the moment it next holds one of the world's monitors — a
            // clean-room §6.2 preempted-lock-holder experiment.
            if parent.live_threads.is_empty() || parent.monitors.is_empty() {
                return None;
            }
            let thread = parent.live_threads
                [rng.next_below(parent.live_threads.len() as u64) as usize]
                .clone();
            let m = parent.monitors[rng.next_below(parent.monitors.len() as u64) as usize].clone();
            case.schedule = FaultSchedule::default();
            case.schedule.stalls.push(StallSpec {
                thread,
                at: SimTime::from_micros(250_000),
                duration: case.window,
                while_holding: Some(m),
            });
        }
        _ => return None,
    }
    let chaos = ChaosConfig::none().scripted(case.schedule.clone());
    Some((case, chaos))
}

/// The intensity-hop mutation needs the ladder, so it is handled apart
/// from the schedule mutations: re-run the parent's cell under a
/// different rung with a fresh derived seed.
fn intensity_hop(
    rng: &mut SplitMix64,
    parent: &CorpusEntry,
    ladders: &[Vec<Intensity>],
    cfg: &FuzzConfig,
) -> Option<(StoredCase, ChaosConfig, String)> {
    let cell_index = cfg.cells.iter().position(|c| {
        c.world == parent.case.world
            && c.system == parent.case.system
            && c.benchmark == parent.case.benchmark
    })?;
    let ladder = &ladders[cell_index];
    if ladder.len() < 2 {
        return None;
    }
    let rung = &ladder[rng.next_below(ladder.len() as u64) as usize];
    if rung.name == parent.case.intensity {
        return None;
    }
    let mut case = parent.case.clone();
    case.seed = rng.next_u64();
    case.max_threads = rung.max_threads;
    case.schedule = FaultSchedule::default();
    Some((case, rung.chaos.clone(), rung.name.to_string()))
}

/// Runs a signature-novelty-guided sweep under the same budget semantics
/// as [`crate::fuzz::fuzz`]. Deterministic for a given config.
pub fn guided_fuzz(cfg: &FuzzConfig, mut progress: impl FnMut(&str)) -> GuidedOutcome {
    assert!(!cfg.cells.is_empty(), "guided fuzz needs at least one cell");
    let ladders: Vec<Vec<Intensity>> = cfg.cells.iter().map(cell_ladder).collect();
    let mut rng = SplitMix64::new(cfg.base_seed ^ 0x6D1D_ED5E_ED5E_ED01);
    let start = std::time::Instant::now();
    let mut corpus: Vec<CorpusEntry> = Vec::new();
    let mut counts: Vec<(String, u32)> = Vec::new();
    let mut mutation_discoveries = Vec::new();
    let mut trials = 0u32;
    let mut failures = 0u32;
    let mut grid_cursor = 0u32;
    for i in 0..cfg.budget {
        if let Some(ms) = cfg.wall_budget_ms {
            if start.elapsed().as_millis() as u64 >= ms {
                progress(&format!("wall budget exhausted after {i} trials"));
                break;
            }
        }
        // Every third trial explores the plain grid; the rest exploit
        // the corpus. With no corpus yet, everything explores.
        let explore = corpus.is_empty() || i % 3 == 0;
        let (case, chaos, label, parent_index) = if explore {
            let (cell, rung, seed) = grid_trial(cfg, &ladders, grid_cursor);
            grid_cursor += 1;
            let case = StoredCase {
                world: cell.world,
                system: cell.system,
                benchmark: cell.benchmark,
                seed,
                window: cfg.window,
                slice: cfg.slice,
                wedge_threshold: cfg.wedge_threshold,
                max_threads: rung.max_threads,
                policy: cfg.policy,
                intensity: rung.name.to_string(),
                signature: String::new(),
                schedule: FaultSchedule::default(),
            };
            (
                case,
                rung.chaos.clone(),
                format!("grid:{}", rung.name),
                None,
            )
        } else {
            let parent_index = weighted_pick(&mut rng, &corpus);
            // Redraw until a mutation applies; every parent admits at
            // least `reseed` and `pct-inject`, so this terminates.
            loop {
                let mutation = draw_mutation(&mut rng);
                let mutated = if mutation == "intensity-hop" {
                    intensity_hop(&mut rng, &corpus[parent_index], &ladders, cfg)
                        .map(|(case, chaos, rung_name)| (case, chaos, format!("hop:{rung_name}")))
                } else {
                    mutate(&mut rng, &corpus[parent_index], mutation)
                        .map(|(case, chaos)| (case, chaos, mutation.to_string()))
                };
                if let Some((mut case, chaos, label)) = mutated {
                    case.intensity = format!("guided:{label}");
                    break (case, chaos, label, Some(parent_index));
                }
            }
        };
        trials += 1;
        let spec = case.spec();
        let obs = observe(&spec, chaos);
        match obs.failure {
            None => {
                progress(&format!("trial {i}: {label} seed={:x} — clean", case.seed));
                if let Some(p) = parent_index {
                    corpus[p].energy = corpus[p].energy.saturating_sub(1).max(ENERGY_FLOOR);
                }
            }
            Some(failure) => {
                failures += 1;
                let signature = failure.signature();
                progress(&format!(
                    "trial {i}: {label} seed={:x} — {} after {}",
                    case.seed, signature, obs.elapsed
                ));
                match counts.iter_mut().find(|(s, _)| *s == signature) {
                    Some((_, n)) => {
                        *n += 1;
                        if let Some(p) = parent_index {
                            corpus[p].energy = corpus[p].energy.saturating_sub(1).max(ENERGY_FLOOR);
                        }
                    }
                    None => {
                        counts.push((signature.clone(), 1));
                        if let Some(p) = parent_index {
                            // Novelty pays the parent back with energy.
                            corpus[p].energy += ENERGY_START;
                            mutation_discoveries.push(MutationDiscovery {
                                mutation: label.clone(),
                                parent: corpus[p].case.signature.clone(),
                                signature: signature.clone(),
                            });
                        }
                        let mut stored = case;
                        stored.signature = signature;
                        // The schedule the run *actually executed* is
                        // what replays, not the mutation input (the run
                        // may have recorded extra probabilistic draws).
                        stored.schedule = obs.schedule;
                        corpus.push(CorpusEntry {
                            case: stored,
                            live_threads: obs.live_threads,
                            monitors: obs.monitors,
                            energy: ENERGY_START,
                        });
                    }
                }
            }
        }
    }
    let mut cases: Vec<FoundCase> = corpus
        .into_iter()
        .map(|e| {
            let count = counts
                .iter()
                .find(|(s, _)| *s == e.case.signature)
                .map_or(1, |(_, n)| *n);
            FoundCase {
                case: e.case,
                count,
                live_threads: e.live_threads,
            }
        })
        .collect();
    cases.sort_by(|a, b| a.case.signature.cmp(&b.case.signature));
    GuidedOutcome {
        trials,
        failures,
        cases,
        mutation_discoveries,
    }
}

/// Distinct signatures per CPU-minute: the tracked coverage metric.
pub fn signatures_per_cpu_minute(distinct: usize, wall: std::time::Duration) -> f64 {
    let minutes = wall.as_secs_f64() / 60.0;
    if minutes <= 0.0 {
        return 0.0;
    }
    distinct as f64 / minutes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::TrialWorld;
    use pcr::secs;
    use threadstudy_core::System;
    use workloads::Benchmark;

    #[test]
    fn weighted_pick_respects_energy() {
        let entry = |energy| CorpusEntry {
            case: StoredCase {
                world: TrialWorld::Cell,
                system: System::Cedar,
                benchmark: Benchmark::Idle,
                seed: 1,
                window: secs(1),
                slice: millis(250),
                wedge_threshold: millis(500),
                max_threads: None,
                policy: pcr::PolicyKind::RoundRobin,
                intensity: "preset".to_string(),
                signature: "sig".to_string(),
                schedule: FaultSchedule::default(),
            },
            live_threads: Vec::new(),
            monitors: Vec::new(),
            energy,
        };
        let corpus = vec![entry(1), entry(100)];
        let mut rng = SplitMix64::new(7);
        let hits = (0..200)
            .filter(|_| weighted_pick(&mut rng, &corpus) == 1)
            .count();
        assert!(hits > 150, "high-energy entry picked only {hits}/200 times");
    }

    #[test]
    fn schedule_mutations_are_deterministic_and_stay_valid() {
        let parent = CorpusEntry {
            case: StoredCase {
                world: TrialWorld::Cell,
                system: System::Gvx,
                benchmark: Benchmark::Scroll,
                seed: 0xABC,
                window: secs(6),
                slice: millis(250),
                wedge_threshold: millis(1500),
                max_threads: None,
                policy: pcr::PolicyKind::RoundRobin,
                intensity: "preset".to_string(),
                signature: "wedge:[x(monitor)]".to_string(),
                schedule: FaultSchedule {
                    decisions: vec![FaultDecision {
                        kind: FaultSiteKind::TimerJitter,
                        site: 3,
                        param_us: 120,
                    }],
                    stalls: vec![StallSpec {
                        thread: "GVX.InputPoller".to_string(),
                        at: SimTime::from_micros(1_000_000),
                        duration: secs(9),
                        while_holding: None,
                    }],
                },
            },
            live_threads: vec!["GVX.Painter".to_string()],
            monitors: vec!["display".to_string()],
            energy: ENERGY_START,
        };
        for mutation in MUTATIONS.iter().filter(|m| **m != "intensity-hop") {
            let a = mutate(&mut SplitMix64::new(42), &parent, mutation);
            let b = mutate(&mut SplitMix64::new(42), &parent, mutation);
            let (ca, _) = a.expect(mutation);
            let (cb, _) = b.expect(mutation);
            assert_eq!(ca.schedule, cb.schedule, "{mutation} not deterministic");
            assert_eq!(ca.seed, cb.seed, "{mutation} seed not deterministic");
            for d in &ca.schedule.decisions {
                if d.kind == FaultSiteKind::PriorityChange {
                    assert!((1..=Priority::LEVELS as u64).contains(&d.param_us));
                }
            }
        }
    }
}
