//! End-to-end tests of the resilience harness: the fuzzer finds the
//! seeded failures on a small budget, the shrinker minimizes their
//! schedules while preserving the failure signature (checked as a
//! property over several seeds), and the supervisor recovers worlds
//! that wedge the unsupervised run.

use pcr::{millis, secs, Priority, Sim, SimConfig};
use resilience::{
    fuzz, guided_fuzz, intensity_ladder, observe, recover_preset, replay, shrink, supervise,
    supervise_benchmark, unsupervised_wedges, FuzzCell, FuzzConfig, ShrinkConfig, StoredCase,
    SupervisorConfig, TrialSpec, TrialWorld,
};
use threadstudy_core::System;
use workloads::Benchmark;

fn no_progress(_: &str) {}

/// The original two-cell grid the seeded-failure tests were written
/// against (the default grid now spans the whole matrix).
fn seeded_cells() -> Vec<FuzzCell> {
    vec![
        FuzzCell::cell(System::Cedar, Benchmark::Keyboard),
        FuzzCell::cell(System::Gvx, Benchmark::Scroll),
    ]
}

/// Runs the guaranteed-failure rung of `system`'s ladder on one cell and
/// returns the stored case.
fn seeded_case(system: System, benchmark: Benchmark, seed: u64) -> StoredCase {
    let ladder = intensity_ladder(system);
    let rung = &ladder[1];
    let spec = TrialSpec {
        world: TrialWorld::Cell,
        system,
        benchmark,
        seed,
        window: secs(6),
        slice: millis(250),
        wedge_threshold: millis(1500),
        max_threads: rung.max_threads,
        policy: pcr::PolicyKind::RoundRobin,
    };
    let obs = observe(&spec, rung.chaos.clone());
    let failure = obs
        .failure
        .as_ref()
        .unwrap_or_else(|| panic!("{} rung {} did not fail", system.name(), rung.name));
    StoredCase {
        world: TrialWorld::Cell,
        system,
        benchmark,
        seed,
        window: spec.window,
        slice: spec.slice,
        wedge_threshold: spec.wedge_threshold,
        max_threads: rung.max_threads,
        policy: spec.policy,
        intensity: rung.name.to_string(),
        signature: failure.signature(),
        schedule: obs.schedule.clone(),
    }
}

#[test]
fn fuzz_small_budget_finds_the_seeded_failures() {
    // Budget 4 covers both cells at rungs 0 (preset, tolerated) and 1
    // (the guaranteed-failure rungs).
    let cfg = FuzzConfig {
        budget: 4,
        cells: seeded_cells(),
        ..FuzzConfig::default()
    };
    let outcome = fuzz(&cfg, no_progress);
    assert_eq!(outcome.trials, 4);
    assert!(
        outcome.failures >= 2,
        "expected both seeded rungs to fail, got {} failure(s)",
        outcome.failures
    );
    let sigs: Vec<&str> = outcome
        .cases
        .iter()
        .map(|c| c.case.signature.as_str())
        .collect();
    assert!(
        sigs.iter().any(|s| s.starts_with("wedge:")),
        "no wedge signature in {sigs:?}"
    );
    let cedar = outcome
        .cases
        .iter()
        .find(|c| c.case.system == System::Cedar)
        .expect("no Cedar failure");
    assert_eq!(cedar.case.intensity, "fork-cap");
    assert!(
        cedar.case.signature.contains("fork"),
        "fork-cap signature should name a fork wait: {}",
        cedar.case.signature
    );
    let gvx = outcome
        .cases
        .iter()
        .find(|c| c.case.system == System::Gvx)
        .expect("no GVX failure");
    assert_eq!(gvx.case.intensity, "stall-gated");
    assert_eq!(gvx.case.schedule.stalls.len(), 1);
}

#[test]
fn fuzz_is_deterministic() {
    let cfg = FuzzConfig {
        budget: 4,
        cells: seeded_cells(),
        ..FuzzConfig::default()
    };
    let a = fuzz(&cfg, no_progress);
    let b = fuzz(&cfg, no_progress);
    assert_eq!(a.failures, b.failures);
    let sig = |o: &resilience::FuzzOutcome| {
        o.cases
            .iter()
            .map(|c| (c.case.signature.clone(), c.count))
            .collect::<Vec<_>>()
    };
    assert_eq!(sig(&a), sig(&b));
}

#[test]
fn stored_case_replays_to_its_signature_from_disk() {
    let case = seeded_case(System::Cedar, Benchmark::Keyboard, 0x5EED);
    let dir = std::env::temp_dir().join("resilience-case-roundtrip");
    let path = case.save(&dir).expect("save");
    let loaded = StoredCase::load(&path).expect("load");
    let obs = replay(&loaded);
    assert_eq!(obs.signature().as_deref(), Some(case.signature.as_str()));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shrink_reduces_fork_cap_schedule_to_a_quarter_or_less() {
    let case = seeded_case(System::Cedar, Benchmark::Keyboard, 0x5EED);
    assert!(
        case.schedule.decisions.len() >= 4,
        "preset chaos over the pre-wedge window should record several decisions, got {}",
        case.schedule.decisions.len()
    );
    let report = shrink(&case, &ShrinkConfig { max_replays: 40 }, no_progress).expect("shrink");
    // The fork-cap wedge is environmental (the thread-table cap), so
    // the minimal schedule is empty — far below the 25% acceptance bar.
    assert!(
        report.case.schedule.decisions.len() * 4 <= case.schedule.decisions.len(),
        "shrunk {} of {} decisions",
        report.case.schedule.decisions.len(),
        case.schedule.decisions.len()
    );
    let obs = replay(&report.case);
    assert_eq!(obs.signature().as_deref(), Some(case.signature.as_str()));
}

#[test]
fn shrink_keeps_the_essential_stall() {
    let case = seeded_case(System::Gvx, Benchmark::Scroll, 0x5EED);
    let report = shrink(&case, &ShrinkConfig { max_replays: 40 }, no_progress).expect("shrink");
    assert_eq!(
        report.case.schedule.stalls.len(),
        1,
        "the gated stall is the failure's cause and must survive shrinking"
    );
    assert!(report.case.schedule.decisions.len() * 4 <= case.schedule.decisions.len());
}

#[test]
fn property_shrunk_schedules_preserve_the_failure_signature() {
    // The satellite property, hand-rolled over fixed seeds: for every
    // failing case the minimized schedule replays to the original
    // signature.
    for case_seed in [0x5EED_0001u64, 0x5EED_0002, 0x5EED_0003] {
        let case = seeded_case(System::Gvx, Benchmark::Scroll, case_seed);
        let report = shrink(&case, &ShrinkConfig { max_replays: 25 }, no_progress)
            .unwrap_or_else(|e| panic!("seed {case_seed:x}: {e}"));
        let obs = replay(&report.case);
        assert_eq!(
            obs.signature().as_deref(),
            Some(case.signature.as_str()),
            "seed {case_seed:x}: minimized schedule lost the signature"
        );
        assert!(
            report.case.schedule.decisions.len() <= case.schedule.decisions.len(),
            "seed {case_seed:x}: shrink grew the schedule"
        );
    }
}

#[test]
fn shrink_rejects_a_stale_case() {
    let mut case = seeded_case(System::Gvx, Benchmark::Scroll, 0x5EED);
    // Remove the stall that causes the failure: the stored signature no
    // longer reproduces.
    case.schedule.stalls.clear();
    let err = shrink(&case, &ShrinkConfig { max_replays: 5 }, no_progress).unwrap_err();
    assert!(err.contains("does not reproduce"), "{err}");
}

#[test]
fn supervisor_recovers_cedar_from_a_fork_outage() {
    let (chaos, max_threads) = recover_preset(System::Cedar);
    let cfg = SupervisorConfig::for_window(secs(6));
    assert!(
        unsupervised_wedges(
            System::Cedar,
            Benchmark::Keyboard,
            0xC0FFEE,
            chaos.clone(),
            max_threads,
            &cfg
        ),
        "the fault load must wedge the unsupervised run"
    );
    let sup = supervise_benchmark(
        System::Cedar,
        Benchmark::Keyboard,
        0xC0FFEE,
        chaos,
        max_threads,
        &cfg,
    );
    assert!(!sup.supervision.gave_up);
    assert!(
        sup.supervision
            .actions
            .iter()
            .any(|a| a.kind.tag() == "fail-pending-forks"),
        "expected the §5.4 lever in {:?}",
        sup.supervision.actions
    );
    let degradation = sup.result.degradation.expect("degradation score");
    assert!(
        degradation > 0.0 && degradation <= 1.0,
        "degradation = {degradation}"
    );
}

#[test]
fn supervisor_rejuvenates_gvx_out_of_a_gated_stall() {
    let (chaos, max_threads) = recover_preset(System::Gvx);
    let cfg = SupervisorConfig::for_window(secs(6));
    assert!(
        unsupervised_wedges(
            System::Gvx,
            Benchmark::Scroll,
            0xC0FFEE,
            chaos.clone(),
            max_threads,
            &cfg
        ),
        "the gated stall must wedge the unsupervised run"
    );
    let sup = supervise_benchmark(
        System::Gvx,
        Benchmark::Scroll,
        0xC0FFEE,
        chaos,
        max_threads,
        &cfg,
    );
    assert!(!sup.supervision.gave_up);
    assert!(
        sup.supervision
            .actions
            .iter()
            .any(|a| a.kind.tag() == "rejuvenate"),
        "expected a rejuvenation in {:?}",
        sup.supervision.actions
    );
    assert!(
        sup.supervision.healthy_at_end,
        "one-shot stall recovered: the world should finish healthy"
    );
    let degradation = sup.result.degradation.expect("degradation score");
    assert!(degradation > 0.0, "degradation = {degradation}");
}

#[test]
fn supervisor_restarts_an_attempt_dependent_deadlock() {
    // Attempt 0 acquires two monitors in opposite orders (AB-BA) and
    // deadlocks; the rebuilt attempt uses one order and completes. The
    // restart rung is the only lever that helps here.
    let build = |attempt: u32| {
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.monitor("A", ());
        let b = sim.monitor("B", ());
        let (a1, b1) = (a.clone(), b.clone());
        let _ = sim.fork_root("left", Priority::of(4), move |ctx| {
            let _ga = ctx.enter(&a1);
            ctx.sleep(millis(5)); // threadlint: allow(blocking-call-in-monitor)
            let _gb = ctx.enter(&b1);
            ctx.work(millis(1));
        });
        let flip = attempt == 0;
        let _ = sim.fork_root("right", Priority::of(4), move |ctx| {
            if flip {
                let _gb = ctx.enter(&b);
                ctx.sleep(millis(5)); // threadlint: allow(blocking-call-in-monitor)
                                      // threadlint: allow(lock-order-cycle) — the AB-BA cycle is the point.
                let _ga = ctx.enter(&a);
            } else {
                let _ga = ctx.enter(&a);
                ctx.sleep(millis(5)); // threadlint: allow(blocking-call-in-monitor)
                                      // threadlint: allow(lock-order-cycle)
                let _gb = ctx.enter(&b);
            }
            ctx.work(millis(1));
        });
        sim
    };
    let cfg = SupervisorConfig {
        window: secs(2),
        slice: millis(100),
        wedge_threshold: millis(500),
        max_restarts: 3,
        backoff: millis(100),
        grace_slices: 2,
    };
    let (sup, _sim) = supervise(build, &cfg);
    assert_eq!(sup.restarts, 1, "actions: {:?}", sup.actions);
    assert_eq!(sup.attempts, 2);
    assert!(!sup.gave_up);
    assert!(sup.healthy_at_end);
    assert_eq!(sup.actions.len(), 1);
    assert_eq!(sup.actions[0].kind.tag(), "restart");
    assert!(
        sup.actions[0].detail.contains("left") || sup.actions[0].detail.contains("right"),
        "restart detail should name the deadlocked parties: {:?}",
        sup.actions[0]
    );
}

#[test]
fn guided_fuzz_is_deterministic_and_covers_the_seeded_failures() {
    let cfg = FuzzConfig {
        budget: 12,
        cells: seeded_cells(),
        ..FuzzConfig::default()
    };
    let a = guided_fuzz(&cfg, no_progress);
    let b = guided_fuzz(&cfg, no_progress);
    let sig = |o: &resilience::GuidedOutcome| {
        o.cases
            .iter()
            .map(|c| (c.case.signature.clone(), c.count))
            .collect::<Vec<_>>()
    };
    assert_eq!(sig(&a), sig(&b), "guided sweep is not deterministic");
    assert!(
        a.cases.len() >= 2,
        "the interleaved grid trials should still reach both seeded rungs: {:?}",
        sig(&a)
    );
    // Byte-deterministic corpus ordering: sorted by signature.
    for w in a.cases.windows(2) {
        assert!(w[0].case.signature <= w[1].case.signature);
    }
    // Every corpus entry replays to its own signature.
    for found in &a.cases {
        let obs = replay(&found.case);
        assert_eq!(
            obs.signature().as_deref(),
            Some(found.case.signature.as_str()),
            "guided case {} does not replay",
            found.case.signature
        );
    }
}

#[test]
fn fuzz_reaches_the_out_of_matrix_worlds() {
    let cfg = FuzzConfig {
        budget: 8,
        cells: vec![
            FuzzCell {
                world: TrialWorld::MultiCore { cpus: 2 },
                system: System::Cedar,
                benchmark: Benchmark::Idle,
            },
            FuzzCell {
                world: TrialWorld::WeakMemory { max_delay_us: 200 },
                system: System::Cedar,
                benchmark: Benchmark::Idle,
            },
        ],
        ..FuzzConfig::default()
    };
    let outcome = fuzz(&cfg, no_progress);
    assert!(
        outcome
            .cases
            .iter()
            .any(|c| matches!(c.case.world, TrialWorld::MultiCore { .. })
                && c.case.signature.starts_with("deadlock:")),
        "no AB-BA deadlock out of the mp transfer mesh: {:?}",
        outcome
            .cases
            .iter()
            .map(|c| &c.case.signature)
            .collect::<Vec<_>>()
    );
    assert!(
        outcome
            .cases
            .iter()
            .any(|c| matches!(c.case.world, TrialWorld::WeakMemory { .. })
                && c.case.signature.contains("wm-reader(panic)")),
        "no stale-publication panic out of the weak-memory race: {:?}",
        outcome
            .cases
            .iter()
            .map(|c| &c.case.signature)
            .collect::<Vec<_>>()
    );
}

#[test]
fn supervisor_boosts_a_monitor_inversion_instead_of_restarting() {
    // §6.2 shape: a low-priority holder is starved by a middle-priority
    // hog while a high-priority claimant waits on the monitor. No rung
    // below the inversion remedies helps (nothing is stalled, nothing is
    // fork-blocked), and a restart would just rebuild the same starvation.
    let build = |_attempt: u32| {
        let mut sim = Sim::new(SimConfig::default());
        let m = sim.monitor("shared", ());
        let m2 = m.clone();
        let _ = sim.fork_root("low-holder", Priority::of(2), move |ctx| {
            let _g = ctx.enter(&m2);
            // Short enough that, once boosted, the holder releases
            // within the supervisor's grace window.
            ctx.work(millis(150));
        });
        let _ = sim.fork_root("middle-hog", Priority::of(4), move |ctx| {
            ctx.sleep(millis(5));
            for _ in 0..100_000 {
                ctx.work(millis(10));
            }
        });
        let _ = sim.fork_root("high-claimant", Priority::of(6), move |ctx| {
            ctx.sleep(millis(20));
            let _g = ctx.enter(&m);
            ctx.work(millis(1));
        });
        sim
    };
    let cfg = SupervisorConfig {
        window: secs(2),
        slice: millis(100),
        wedge_threshold: millis(500),
        max_restarts: 3,
        backoff: millis(100),
        grace_slices: 2,
    };
    let (sup, _sim) = supervise(build, &cfg);
    assert_eq!(sup.restarts, 0, "actions: {:?}", sup.actions);
    assert!(
        sup.actions
            .iter()
            .any(|a| a.kind == resilience::RecoveryKind::PriorityBoost),
        "expected a priority boost in {:?}",
        sup.actions
    );
    assert!(
        sup.actions
            .iter()
            .find(|a| a.kind == resilience::RecoveryKind::PriorityBoost)
            .unwrap()
            .detail
            .contains("low-holder"),
        "boost should name the starved holder: {:?}",
        sup.actions
    );
    assert!(!sup.gave_up);
}
