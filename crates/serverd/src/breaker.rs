//! A circuit breaker on the simulated X-server connection.
//!
//! Classic three-state machine: **Closed** (normal; count consecutive
//! failures), **Open** (fast-fail everything without touching the
//! connection, for `open_for`), **HalfOpen** (let a few probe batches
//! through; one success closes, one failure re-opens). Composes with
//! `pcr::chaos` outage faults: the outage makes writes fail, the
//! breaker converts sustained failure into cheap fast-fails that the
//! client retry budget then refuses to amplify.

use pcr::{millis, SimTime};

/// Tuning knobs for [`CircuitBreaker`].
#[derive(Clone, Copy, Debug)]
pub struct BreakerSpec {
    /// Consecutive failures that trip Closed → Open.
    pub failure_threshold: u32,
    /// How long to stay Open before probing.
    pub open_for: pcr::SimDuration,
    /// Probe batches allowed through per HalfOpen episode.
    pub half_open_probes: u32,
}

impl Default for BreakerSpec {
    fn default() -> Self {
        BreakerSpec {
            failure_threshold: 5,
            open_for: millis(400),
            half_open_probes: 2,
        }
    }
}

/// The breaker's current state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation.
    Closed,
    /// Fast-failing; no traffic reaches the connection.
    Open,
    /// Probing with limited traffic.
    HalfOpen,
}

/// The breaker itself. Lives in a monitor shared by the pipeline
/// workers (who ask [`CircuitBreaker::allow`]) and the X-connection
/// thread (who reports outcomes).
#[derive(Clone, Copy, Debug)]
pub struct CircuitBreaker {
    spec: BreakerSpec,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: SimTime,
    probes_left: u32,
    /// Closed→Open transitions.
    pub trips: u64,
    /// Batches fast-failed while Open / probe-exhausted.
    pub fast_failed_batches: u64,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(spec: BreakerSpec) -> Self {
        CircuitBreaker {
            spec,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: SimTime::ZERO,
            probes_left: 0,
            trips: 0,
            fast_failed_batches: 0,
        }
    }

    /// Current state (after lazily applying the Open → HalfOpen clock).
    pub fn state(&mut self, now: SimTime) -> BreakerState {
        if self.state == BreakerState::Open && now >= self.opened_at + self.spec.open_for {
            self.state = BreakerState::HalfOpen;
            self.probes_left = self.spec.half_open_probes;
        }
        self.state
    }

    /// May this batch proceed to the connection? `false` = fast-fail.
    pub fn allow(&mut self, now: SimTime) -> bool {
        match self.state(now) {
            BreakerState::Closed => true,
            BreakerState::Open => {
                self.fast_failed_batches += 1;
                false
            }
            BreakerState::HalfOpen => {
                if self.probes_left > 0 {
                    self.probes_left -= 1;
                    true
                } else {
                    self.fast_failed_batches += 1;
                    false
                }
            }
        }
    }

    /// The connection served a batch.
    pub fn on_success(&mut self, now: SimTime) {
        let _ = now;
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
    }

    /// The connection failed a batch.
    pub fn on_failure(&mut self, now: SimTime) {
        match self.state(now) {
            BreakerState::HalfOpen => {
                // A failed probe re-opens immediately.
                self.state = BreakerState::Open;
                self.opened_at = now;
                self.trips += 1;
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.spec.failure_threshold {
                    self.state = BreakerState::Open;
                    self.opened_at = now;
                    self.trips += 1;
                }
            }
            BreakerState::Open => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_probes_and_recovers() {
        let spec = BreakerSpec {
            failure_threshold: 3,
            open_for: millis(100),
            half_open_probes: 1,
        };
        let mut b = CircuitBreaker::new(spec);
        let t0 = SimTime::ZERO;
        assert!(b.allow(t0));
        for _ in 0..3 {
            b.on_failure(t0);
        }
        assert_eq!(b.state(t0), BreakerState::Open);
        assert_eq!(b.trips, 1);
        assert!(!b.allow(t0), "open fast-fails");
        // After open_for: half-open, one probe allowed, second refused.
        let t1 = t0 + millis(100);
        assert!(b.allow(t1));
        assert!(!b.allow(t1));
        // Probe fails → re-open; next window's probe succeeds → closed.
        b.on_failure(t1);
        assert_eq!(b.state(t1), BreakerState::Open);
        assert_eq!(b.trips, 2);
        let t2 = t1 + millis(100);
        assert!(b.allow(t2));
        b.on_success(t2);
        assert_eq!(b.state(t2), BreakerState::Closed);
        assert!(b.allow(t2));
        assert_eq!(b.fast_failed_batches, 2);
    }
}
