//! Open-loop traffic model: session classes, diurnal ramps, bursts.
//!
//! A *session* is one simulated user interacting for a short burst: a
//! class (keyboard / mouse / scroll, mirroring the paper's interactive
//! benchmark rows), a start time drawn from the load shape, and a
//! Poisson request train while active. Sessions are open-loop: they
//! emit on their own clock and never wait for responses, which is what
//! makes overload possible — and worth defending against.

use pcr::{micros, SimDuration, SplitMix64};

/// A session's interaction class. The three classes mirror the paper's
/// Keyboard / Mouse / Scroll interactive benchmarks (§5.1): tiny
/// frequent echoes, a dense motion stream, and heavier repaints.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SessionClass {
    /// Character echo: small, frequent, tight deadline.
    Keyboard,
    /// Pointer motion: very frequent, tiny service cost, tightest
    /// deadline (stale motion is worthless).
    Mouse,
    /// Scroll repaint: fewer, heavier requests with a looser deadline.
    Scroll,
}

impl SessionClass {
    /// All classes, in stable index order.
    pub const ALL: [SessionClass; 3] = [
        SessionClass::Keyboard,
        SessionClass::Mouse,
        SessionClass::Scroll,
    ];

    /// Stable index (array keying).
    pub fn index(self) -> usize {
        match self {
            SessionClass::Keyboard => 0,
            SessionClass::Mouse => 1,
            SessionClass::Scroll => 2,
        }
    }

    /// Lower-case label for reports.
    pub fn name(self) -> &'static str {
        match self {
            SessionClass::Keyboard => "keyboard",
            SessionClass::Mouse => "mouse",
            SessionClass::Scroll => "scroll",
        }
    }
}

/// Per-class traffic and service parameters.
#[derive(Clone, Copy, Debug)]
pub struct ClassParams {
    /// Which class this row describes.
    pub class: SessionClass,
    /// Fraction of sessions in this class (shares should sum to 1).
    pub share: f64,
    /// Mean requests per second while the session is active.
    pub events_per_sec: f64,
    /// Mean active duration of a session, seconds.
    pub active_secs: f64,
    /// Input-to-echo deadline: past this the echo is worthless and the
    /// request is shed (server side) or timed out (client side).
    pub deadline: SimDuration,
    /// Imaging CPU cost per request (worker side, pre-paint).
    pub service: SimDuration,
}

impl ClassParams {
    /// Expected requests per session of this class.
    pub fn events_per_session(&self) -> f64 {
        self.events_per_sec * self.active_secs
    }
}

/// The reference traffic mix. Shares and rates are scaled so a session
/// averages ~4 requests; service costs keep the single virtual CPU at
/// ~55% utilization at the reference arrival rate, leaving headroom
/// that bursts deliberately exhaust.
pub fn default_mix() -> Vec<ClassParams> {
    vec![
        ClassParams {
            class: SessionClass::Keyboard,
            share: 0.5,
            events_per_sec: 4.5,
            active_secs: 0.9,
            deadline: pcr::millis(100),
            service: micros(90),
        },
        ClassParams {
            class: SessionClass::Mouse,
            share: 0.3,
            events_per_sec: 12.0,
            active_secs: 0.33,
            deadline: pcr::millis(60),
            service: micros(40),
        },
        ClassParams {
            class: SessionClass::Scroll,
            share: 0.2,
            events_per_sec: 6.0,
            active_secs: 0.7,
            deadline: pcr::millis(150),
            service: micros(180),
        },
    ]
}

/// How session arrivals are spread over the run window.
#[derive(Clone, Copy, Debug)]
pub struct LoadShape {
    /// Modulate the base rate with a diurnal sin² ramp (trough at the
    /// window edges, peak in the middle).
    pub diurnal: bool,
    /// Number of short overload bursts superimposed on the base rate.
    pub bursts: u32,
    /// Extra arrival density inside a burst, as a multiple of the base
    /// rate (2.0 = 3× total during the burst).
    pub burst_amp: f64,
    /// Burst width as a fraction of the window.
    pub burst_width: f64,
}

impl LoadShape {
    /// Flat arrivals, no bursts.
    pub fn steady() -> Self {
        LoadShape {
            diurnal: false,
            bursts: 0,
            burst_amp: 0.0,
            burst_width: 0.0,
        }
    }

    /// The reference shape: diurnal ramp plus two 1%-wide 2×-extra
    /// bursts.
    pub fn reference() -> Self {
        LoadShape {
            diurnal: true,
            bursts: 2,
            burst_amp: 2.0,
            burst_width: 0.01,
        }
    }

    /// Relative arrival density at window fraction `frac` ∈ [0, 1).
    pub fn density(&self, frac: f64) -> f64 {
        let mut d = if self.diurnal {
            // 0.4 at the edges, 1.7 at the peak; mean 1.05.
            let s = (std::f64::consts::PI * frac).sin();
            0.4 + 1.3 * s * s
        } else {
            1.0
        };
        for k in 0..self.bursts {
            let center = (k as f64 + 0.5) / self.bursts as f64;
            if (frac - center).abs() < self.burst_width / 2.0 {
                d += self.burst_amp * if self.diurnal { 1.05 } else { 1.0 };
            }
        }
        d
    }
}

/// A binned inverse-CDF table over a [`LoadShape`], for sampling
/// session start times by inverse transform — exact enough at 4096
/// bins, fully deterministic, no rejection loop.
pub struct StartTable {
    /// `cum[i]` = P(start < bin i); `cum[BINS]` = 1.
    cum: Vec<f64>,
}

const START_BINS: usize = 4096;

impl StartTable {
    /// Integrates `shape` into a cumulative table.
    pub fn build(shape: &LoadShape) -> Self {
        let mut cum = Vec::with_capacity(START_BINS + 1);
        let mut acc = 0.0;
        cum.push(0.0);
        for i in 0..START_BINS {
            let frac = (i as f64 + 0.5) / START_BINS as f64;
            acc += shape.density(frac).max(0.0);
            cum.push(acc);
        }
        if acc <= 0.0 {
            // Degenerate shape: fall back to uniform.
            for (i, c) in cum.iter_mut().enumerate() {
                *c = i as f64 / START_BINS as f64;
            }
        } else {
            for c in &mut cum {
                *c /= acc;
            }
        }
        StartTable { cum }
    }

    /// Maps a uniform `u` ∈ [0, 1) to a window fraction.
    pub fn sample(&self, u: f64) -> f64 {
        // Binary search for the bin containing u, then interpolate.
        let mut lo = 0usize;
        let mut hi = START_BINS;
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.cum[mid] <= u {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let span = self.cum[lo + 1] - self.cum[lo];
        let within = if span > 0.0 {
            (u - self.cum[lo]) / span
        } else {
            0.0
        };
        (lo as f64 + within) / START_BINS as f64
    }
}

/// Samples a Poisson inter-arrival gap at `per_sec` events/second,
/// floored at 100µs. The same formula `workloads::world::next_gap` has
/// always used; hoisted here so both worlds share one definition.
pub fn poisson_gap(rng: &mut SplitMix64, per_sec: f64) -> SimDuration {
    if per_sec <= 0.0 {
        return pcr::millis(3_600_000);
    }
    let mean_us = 1_000_000.0 / per_sec;
    micros((rng.next_exp(mean_us) as u64).max(100))
}

/// The canned serve scenarios the fuzz grid and CLI presets name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeScenario {
    /// Steady reference traffic (diurnal + bursts, no faults).
    Reference,
    /// An overload spike: burst amplitude high enough to exceed
    /// capacity, exercising admission + CoDel + the ladder.
    Burst,
    /// X-connection outage windows: exercises the breaker, fast-fail
    /// path, and the retry budget.
    Outage,
}

impl ServeScenario {
    /// Stable label (`serve:<label>` is the fuzz-world tag).
    pub fn label(self) -> &'static str {
        match self {
            ServeScenario::Reference => "reference",
            ServeScenario::Burst => "burst",
            ServeScenario::Outage => "outage",
        }
    }

    /// Parses [`ServeScenario::label`] back.
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "reference" => Some(ServeScenario::Reference),
            "burst" => Some(ServeScenario::Burst),
            "outage" => Some(ServeScenario::Outage),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let total: f64 = default_mix().iter().map(|c| c.share).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn start_table_is_monotone_and_tracks_density() {
        let table = StartTable::build(&LoadShape::reference());
        let mut prev = -1.0f64;
        let mut rng = SplitMix64::new(7);
        let mut mid = 0u32;
        for _ in 0..4000 {
            let f = table.sample(rng.next_f64());
            assert!((0.0..1.0).contains(&f));
            if (0.25..0.75).contains(&f) {
                mid += 1;
            }
            prev = prev.max(f);
        }
        assert!(prev > 0.9, "samples must reach the window tail");
        // The diurnal peak concentrates well over half the mass in the
        // middle half of the window.
        assert!(mid > 2400, "diurnal ramp missing: {mid}/4000 in middle");
    }

    #[test]
    fn uniform_u_maps_monotonically() {
        let table = StartTable::build(&LoadShape::steady());
        let mut prev = 0.0;
        for i in 0..100 {
            let f = table.sample(i as f64 / 100.0);
            assert!(f >= prev, "inverse CDF must be monotone");
            prev = f;
        }
    }

    #[test]
    fn poisson_gap_matches_world_formula() {
        // Same seed → same gaps as the historical workloads formula.
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            let got = poisson_gap(&mut a, 50.0);
            let want = micros((b.next_exp(1_000_000.0 / 50.0) as u64).max(100));
            assert_eq!(got, want);
        }
        assert_eq!(poisson_gap(&mut a, 0.0), pcr::millis(3_600_000));
    }
}
