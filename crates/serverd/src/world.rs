//! The serve world: client fleet → admission → bounded ingress →
//! coalescing workers → circuit-broken X connection.
//!
//! One `Serve.Main` root thread owns the client fleet (sessions are
//! data on a timer wheel, not threads — a million sessions costs a
//! million wheel entries, not a million stacks), forks the pipeline
//! threads, and harvests every counter into a [`ServeOutcome`].

use paradigms::pump::BoundedQueue;
use pcr::{
    micros, millis, secs, PolicyKind, Priority, RunLimit, Sim, SimConfig, SimDuration, SimTime,
    StopReason, ThreadCtx,
};
use xpipe::server::ServerCosts;

use crate::admission::TokenBucket;
use crate::breaker::{BreakerSpec, CircuitBreaker};
use crate::clients::{ClientCounters, ClientPopulation, Completion, Outcome, RejectReason};
use crate::codel::{CoDel, CodelSpec, CodelVerdict};
use crate::degrade::{Ladder, LadderSpec};
use crate::metrics::ServeMetrics;
use crate::report::SloTargets;
use crate::retry::RetryPolicy;
use crate::traffic::{default_mix, ClassParams, LoadShape, ServeScenario, SessionClass};

/// Everything that determines a serve run. Fully deterministic: two
/// specs with equal fields produce byte-identical reports.
#[derive(Clone, Debug)]
pub struct ServeSpec {
    /// Client sessions to simulate (10k–1M is the intended range).
    pub sessions: u32,
    /// Arrival window (sessions start inside it; the run drains past it).
    pub window: SimDuration,
    /// Master seed.
    pub seed: u64,
    /// Traffic mix.
    pub mix: Vec<ClassParams>,
    /// Arrival shaping (diurnal ramp + bursts).
    pub shape: LoadShape,
    /// Simulated pipeline worker threads.
    pub workers: usize,
    /// Ingress queue bound (backpressure past this).
    pub ingress_capacity: usize,
    /// Batch queue bound between workers and the X connection.
    pub xq_capacity: usize,
    /// Completion queue bound (server → clients).
    pub completion_capacity: usize,
    /// CV timeout for the pipeline queues (keeps idle waits Mesa-honest).
    pub cv_timeout: Option<SimDuration>,
    /// Client-loop housekeeping tick while requests are outstanding.
    pub tick: SimDuration,
    /// X connection cost model.
    pub costs: ServerCosts,
    /// Client retry policy (backoff + budget).
    pub retry: RetryPolicy,
    /// Admission rate headroom over the expected per-class offered rate.
    pub admission_headroom: f64,
    /// Admission bucket depth, seconds of headroom rate.
    pub admission_burst_secs: f64,
    /// CoDel sojourn control at dequeue.
    pub codel: CodelSpec,
    /// Circuit breaker on the X connection.
    pub breaker: BreakerSpec,
    /// Graceful-degradation ladder.
    pub ladder: LadderSpec,
    /// Controller wake interval.
    pub control_interval: SimDuration,
    /// Latency gates the run is measured against.
    pub slo: SloTargets,
    /// X-connection outage windows as `(offset, duration)` from t=0.
    pub outage: Vec<(SimDuration, SimDuration)>,
    /// Scheduling policy for the simulator.
    pub policy: PolicyKind,
}

impl ServeSpec {
    /// The reference cell: diurnal ramp with two bursts, no outage.
    /// The window scales so the offered rate stays ~300 sessions/s —
    /// the diurnal peak then sits near half of pipeline capacity, so
    /// the cell meets its SLOs with margin (overload is what the burst
    /// and outage scenarios are for).
    pub fn reference(sessions: u32, seed: u64) -> ServeSpec {
        let window_secs = (sessions as u64).div_ceil(300).max(20);
        ServeSpec {
            sessions,
            window: secs(window_secs),
            seed,
            mix: default_mix(),
            shape: LoadShape::reference(),
            workers: 2,
            ingress_capacity: 512,
            // Keep the pipe *downstream* of the shedding point short:
            // backlog must accumulate in ingress, where CoDel and the
            // deadline check can act on it, not past them.
            xq_capacity: 2,
            completion_capacity: 2048,
            cv_timeout: Some(millis(50)),
            tick: millis(1),
            costs: ServerCosts::serve_connection(),
            retry: RetryPolicy::default(),
            admission_headroom: 1.8,
            admission_burst_secs: 0.25,
            codel: CodelSpec::default(),
            breaker: BreakerSpec::default(),
            ladder: LadderSpec::default(),
            control_interval: millis(250),
            slo: SloTargets::default(),
            outage: Vec::new(),
            policy: PolicyKind::RoundRobin,
        }
    }

    /// A named scenario cell.
    pub fn scenario(sc: ServeScenario, sessions: u32, seed: u64) -> ServeSpec {
        let mut spec = ServeSpec::reference(sessions, seed);
        match sc {
            ServeScenario::Reference => {}
            ServeScenario::Burst => {
                // Overload spike: taller bursts than the admission
                // headroom was provisioned for, and sessions that fire
                // their events 3× faster (same events per session,
                // concentrated) so a burst of starts really is a burst
                // of requests rather than a smear.
                spec.shape = LoadShape {
                    diurnal: true,
                    bursts: 3,
                    burst_amp: 6.0,
                    burst_width: 0.015,
                };
                for c in &mut spec.mix {
                    c.events_per_sec *= 3.0;
                    c.active_secs /= 3.0;
                }
            }
            ServeScenario::Outage => {
                spec.outage = Self::outage_preset(spec.window);
            }
        }
        spec
    }

    /// The standard outage schedule: two blackouts at 35% and 65% of
    /// the arrival window, 1.2s each.
    pub fn outage_preset(window: SimDuration) -> Vec<(SimDuration, SimDuration)> {
        let w = window.as_micros();
        vec![
            (micros(w * 35 / 100), millis(1200)),
            (micros(w * 65 / 100), millis(1200)),
        ]
    }

    /// A small, hot cell for fuzzing: few sessions, tight queues, short
    /// window — pressure without long runtimes.
    pub fn fuzz_small(sc: ServeScenario, seed: u64) -> ServeSpec {
        let mut spec = ServeSpec::scenario(sc, 600, seed);
        spec.window = secs(6);
        spec.ingress_capacity = 64;
        spec.completion_capacity = 512;
        if sc == ServeScenario::Outage {
            spec.outage = vec![(secs(2), millis(900)), (secs(4), millis(900))];
        }
        spec
    }

    /// Which scenario label this spec reports.
    pub fn scenario_label(&self) -> &'static str {
        if !self.outage.is_empty() {
            ServeScenario::Outage.label()
        } else if self.shape.burst_amp > 2.5 {
            ServeScenario::Burst.label()
        } else {
            ServeScenario::Reference.label()
        }
    }
}

/// A submission inside the server pipeline.
#[derive(Clone, Copy, Debug)]
struct Request {
    sub: crate::clients::Submission,
    enqueued_at: SimTime,
    dequeued_at: SimTime,
}

/// Shared worker-side control state (one monitor).
struct ControlState {
    coalesce: u32,
    codel: CoDel,
    workers_left: usize,
}

/// Everything a finished run reports.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// Client-fleet counters.
    pub counters: ClientCounters,
    /// Retry-budget suppressions.
    pub budget_suppressed: u64,
    /// Pipeline metrics (latency/sojourn histograms, paint counts).
    pub metrics: ServeMetrics,
    /// Breaker trips (Closed→Open).
    pub breaker_trips: u64,
    /// Batches fast-failed while the breaker was open.
    pub fast_failed_batches: u64,
    /// CoDel sheds at dequeue.
    pub codel_drops: u64,
    /// The degradation ladder with its counters, finished.
    pub ladder: Ladder,
    /// Virtual time when the pipeline fully drained.
    pub end: SimTime,
}

fn in_outage(outage: &[(SimDuration, SimDuration)], now: SimTime) -> bool {
    let t = now.as_micros();
    outage.iter().any(|&(off, dur)| {
        let lo = off.as_micros();
        t >= lo && t < lo + dur.as_micros()
    })
}

/// Installs the serve world into `sim` and returns the handle to join
/// for the outcome. Separate from [`run_serve`] so fuzz/chaos callers
/// can drive the sim themselves.
pub fn install(sim: &mut Sim, spec: ServeSpec) -> pcr::JoinHandle<ServeOutcome> {
    sim.fork_root("Serve.Main", Priority::of(6), move |ctx| {
        serve_main(ctx, &spec)
    })
}

/// Builds a configured simulator with the serve world installed.
pub fn build_sim(
    spec: ServeSpec,
    chaos: Option<pcr::ChaosConfig>,
    max_threads: Option<usize>,
) -> (Sim, pcr::JoinHandle<ServeOutcome>) {
    let mut cfg = SimConfig::default()
        .with_seed(spec.seed)
        .with_policy(spec.policy);
    if let Some(chaos) = chaos {
        cfg = cfg.with_chaos(chaos);
    }
    if let Some(n) = max_threads {
        cfg = cfg.with_max_threads(n);
    }
    let mut sim = Sim::new(cfg);
    let handle = install(&mut sim, spec);
    (sim, handle)
}

/// Runs the spec to completion and returns the outcome.
///
/// # Panics
///
/// Panics if the world deadlocks or fails to drain within three arrival
/// windows plus a minute of virtual time.
pub fn run_serve(spec: ServeSpec) -> ServeOutcome {
    let limit = spec.window * 3 + secs(60);
    let (mut sim, handle) = build_sim(spec, None, None);
    let report = sim.run(RunLimit::For(limit));
    assert!(
        matches!(report.reason, StopReason::AllExited),
        "serve world failed to drain: {:?}",
        report.reason
    );
    handle
        .into_result()
        .expect("Serve.Main left no result")
        .expect("Serve.Main panicked")
}

fn serve_main(ctx: &ThreadCtx, spec: &ServeSpec) -> ServeOutcome {
    let ingress = BoundedQueue::new(ctx, "serve.ingress", spec.ingress_capacity, spec.cv_timeout);
    let xq: BoundedQueue<Vec<Request>> =
        BoundedQueue::new(ctx, "serve.xq", spec.xq_capacity, spec.cv_timeout);
    let completions: BoundedQueue<Completion> = BoundedQueue::new(
        ctx,
        "serve.completions",
        spec.completion_capacity,
        spec.cv_timeout,
    );
    let control = ctx.new_monitor(
        "serve.control",
        ControlState {
            coalesce: Ladder::new(spec.ladder.clone()).coalesce(),
            codel: CoDel::new(spec.codel),
            workers_left: spec.workers.max(1),
        },
    );
    let breaker_m = ctx.new_monitor("serve.breaker", CircuitBreaker::new(spec.breaker));
    let metrics_m = ctx.new_monitor("serve.metrics", ServeMetrics::default());
    let done_m = ctx.new_monitor("serve.done", false);

    let mut workers = Vec::with_capacity(spec.workers.max(1));
    for i in 0..spec.workers.max(1) {
        let ingress = ingress.clone();
        let xq = xq.clone();
        let completions = completions.clone();
        let control = control.clone();
        let breaker_m = breaker_m.clone();
        let mix = spec.mix.clone();
        workers.push(
            ctx.fork_prio(&format!("Serve.Worker{i}"), Priority::of(4), move |ctx| {
                worker_loop(ctx, &mix, &ingress, &xq, &completions, &control, &breaker_m)
            })
            .expect("fork serve worker"),
        );
    }

    let xconn = {
        let xq = xq.clone();
        let completions = completions.clone();
        let breaker_m = breaker_m.clone();
        let metrics_m = metrics_m.clone();
        let costs = spec.costs;
        let outage = spec.outage.clone();
        ctx.fork_prio("Serve.XConn", Priority::of(4), move |ctx| {
            xconn_loop(
                ctx,
                costs,
                &outage,
                &xq,
                &completions,
                &breaker_m,
                &metrics_m,
            )
        })
        .expect("fork serve xconn")
    };

    let controller = {
        let ingress = ingress.clone();
        let control = control.clone();
        let metrics_m = metrics_m.clone();
        let done_m = done_m.clone();
        let ladder_spec = spec.ladder.clone();
        let interval = spec.control_interval;
        let capacity = spec.ingress_capacity;
        let slo_p99 = spec.slo.p99;
        ctx.fork_prio("Serve.Controller", Priority::of(5), move |ctx| {
            controller_loop(
                ctx,
                ladder_spec,
                interval,
                capacity,
                slo_p99,
                &ingress,
                &control,
                &metrics_m,
                &done_m,
            )
        })
        .expect("fork serve controller")
    };

    // ---- The client fleet, run inline on Serve.Main. ----
    let mut pop = ClientPopulation::new(
        &spec.mix,
        &spec.shape,
        spec.sessions,
        spec.window,
        spec.retry,
        spec.seed,
    );
    let window_secs = spec.window.as_micros() as f64 / 1e6;
    let sessions_per_sec = spec.sessions as f64 / window_secs;
    // One admission bucket per mix row, looked up by class index.
    let mut bucket_of_class: [Option<usize>; SessionClass::ALL.len()] =
        [None; SessionClass::ALL.len()];
    let mut buckets: Vec<TokenBucket> = Vec::with_capacity(spec.mix.len());
    for (i, c) in spec.mix.iter().enumerate() {
        let rate = sessions_per_sec * c.share * c.events_per_session() * spec.admission_headroom;
        buckets.push(TokenBucket::new(
            rate,
            (rate * spec.admission_burst_secs).max(20.0),
        ));
        bucket_of_class[c.class.index()] = Some(i);
    }

    while !pop.done() {
        let now = ctx.now();
        for c in completions.drain(ctx) {
            pop.on_completion(now, c);
        }
        let subs = pop.poll(now);
        if !subs.is_empty() {
            let mut admitted = Vec::with_capacity(subs.len());
            for sub in subs {
                let slot = bucket_of_class[sub.class.index()].expect("class not in mix");
                if buckets[slot].admit(now) {
                    admitted.push(Request {
                        sub,
                        enqueued_at: now,
                        dequeued_at: now,
                    });
                } else {
                    pop.on_submit_rejected(now, sub.rid, RejectReason::Admission);
                }
            }
            for req in ingress.try_put_all(ctx, admitted) {
                pop.on_submit_rejected(ctx.now(), req.sub.rid, RejectReason::Backpressure);
            }
        }
        if pop.done() {
            break;
        }
        let now = ctx.now();
        let mut target = pop.next_wakeup().unwrap_or(now + spec.tick);
        if pop.has_outstanding() {
            // Wake at least every tick to drain completions promptly.
            target = target.min(now + spec.tick);
        }
        ctx.sleep_precise(target.saturating_since(now).max(micros(50)));
    }

    // ---- Drain and shut down. ----
    ingress.close(ctx);
    // The last worker closes xq; XConn closes completions on exit. Keep
    // draining completions meanwhile so nothing upstream can wedge on a
    // full completion queue.
    while let Some(c) = completions.take(ctx) {
        pop.on_completion(ctx.now(), c);
    }
    for h in workers {
        ctx.join(h).expect("serve worker panicked");
    }
    ctx.join(xconn).expect("serve xconn panicked");
    ctx.enter(&done_m).with_mut(|d| *d = true);
    let mut ladder = ctx.join(controller).expect("serve controller panicked");
    let end = ctx.now();
    ladder.finish(end);
    let (breaker_trips, fast_failed_batches) = ctx
        .enter(&breaker_m)
        .with(|b| (b.trips, b.fast_failed_batches));
    let codel_drops = ctx.enter(&control).with(|c| c.codel.drops);
    let metrics = ctx.enter(&metrics_m).with(|m| m.clone());
    ServeOutcome {
        counters: pop.counters,
        budget_suppressed: pop.budget_suppressed(),
        metrics,
        breaker_trips,
        fast_failed_batches,
        codel_drops,
        ladder,
        end,
    }
}

fn worker_loop(
    ctx: &ThreadCtx,
    mix: &[ClassParams],
    ingress: &BoundedQueue<Request>,
    xq: &BoundedQueue<Vec<Request>>,
    completions: &BoundedQueue<Completion>,
    control: &pcr::Monitor<ControlState>,
    breaker_m: &pcr::Monitor<CircuitBreaker>,
) {
    let mut service_of_class = [SimDuration::ZERO; SessionClass::ALL.len()];
    for c in mix {
        service_of_class[c.class.index()] = c.service;
    }
    loop {
        let coalesce = ctx.enter(control).with(|c| c.coalesce).max(1) as usize;
        let batch = ingress.take_up_to(ctx, coalesce);
        if batch.is_empty() {
            break; // Closed and drained.
        }
        let now = ctx.now();
        let mut live: Vec<Request> = Vec::with_capacity(batch.len());
        let mut shed: Vec<Completion> = Vec::new();
        for (i, mut req) in batch.into_iter().enumerate() {
            if i == 0 {
                // CoDel watches head-of-queue sojourn only.
                let sojourn = now.saturating_since(req.enqueued_at);
                let verdict = ctx
                    .enter(control)
                    .with_mut(|c| c.codel.on_dequeue(now, sojourn));
                if verdict == CodelVerdict::Drop {
                    shed.push(Completion {
                        rid: req.sub.rid,
                        outcome: Outcome::ShedCodel,
                    });
                    continue;
                }
            }
            if now >= req.sub.deadline {
                // Already blown: imaging it would waste capacity on a
                // paint nobody wants.
                shed.push(Completion {
                    rid: req.sub.rid,
                    outcome: Outcome::ShedDeadline,
                });
                continue;
            }
            req.dequeued_at = now;
            live.push(req);
        }
        if !live.is_empty() {
            if ctx.enter(breaker_m).with_mut(|b| b.allow(now)) {
                let mut cost = SimDuration::ZERO;
                for req in &live {
                    cost += service_of_class[req.sub.class.index()];
                }
                ctx.work(cost);
                xq.put(ctx, live);
            } else {
                for req in live {
                    shed.push(Completion {
                        rid: req.sub.rid,
                        outcome: Outcome::FastFail,
                    });
                }
            }
        }
        for c in shed {
            completions.put(ctx, c);
        }
    }
    let last = ctx.enter(control).with_mut(|c| {
        c.workers_left -= 1;
        c.workers_left == 0
    });
    if last {
        xq.close(ctx);
    }
}

fn xconn_loop(
    ctx: &ThreadCtx,
    costs: ServerCosts,
    outage: &[(SimDuration, SimDuration)],
    xq: &BoundedQueue<Vec<Request>>,
    completions: &BoundedQueue<Completion>,
    breaker_m: &pcr::Monitor<CircuitBreaker>,
    metrics_m: &pcr::Monitor<ServeMetrics>,
) {
    while let Some(batch) = xq.take(ctx) {
        let now = ctx.now();
        if in_outage(outage, now) {
            // The connection is down: a quick failed write, not a paint.
            ctx.work(micros(200));
            let t = ctx.now();
            ctx.enter(breaker_m).with_mut(|b| b.on_failure(t));
            ctx.enter(metrics_m)
                .with_mut(|m| m.outage_failed_batches += 1);
            for req in batch {
                completions.put(
                    ctx,
                    Completion {
                        rid: req.sub.rid,
                        outcome: Outcome::XFail,
                    },
                );
            }
        } else {
            // Last-chance deadline shed: a request that blew its
            // deadline while queued behind this connection is not worth
            // a paint (the client already gave up on it).
            let (live, blown): (Vec<Request>, Vec<Request>) =
                batch.into_iter().partition(|r| now < r.sub.deadline);
            for req in blown {
                completions.put(
                    ctx,
                    Completion {
                        rid: req.sub.rid,
                        outcome: Outcome::ShedDeadline,
                    },
                );
            }
            if live.is_empty() {
                continue;
            }
            ctx.work(costs.batch_cost(live.len()));
            let painted_at = ctx.now();
            ctx.enter(breaker_m).with_mut(|b| b.on_success(painted_at));
            ctx.enter(metrics_m).with_mut(|m| {
                m.batches += 1;
                for req in &live {
                    m.record_paint(req.sub.produced_at, painted_at);
                    m.sojourn
                        .record(req.dequeued_at.saturating_since(req.enqueued_at));
                }
            });
            for req in live {
                completions.put(
                    ctx,
                    Completion {
                        rid: req.sub.rid,
                        outcome: Outcome::Painted,
                    },
                );
            }
        }
    }
    completions.close(ctx);
}

#[allow(clippy::too_many_arguments)]
fn controller_loop(
    ctx: &ThreadCtx,
    ladder_spec: LadderSpec,
    interval: SimDuration,
    ingress_capacity: usize,
    slo_p99: SimDuration,
    ingress: &BoundedQueue<Request>,
    control: &pcr::Monitor<ControlState>,
    metrics_m: &pcr::Monitor<ServeMetrics>,
    done_m: &pcr::Monitor<bool>,
) -> Ladder {
    let mut ladder = Ladder::new(ladder_spec);
    loop {
        ctx.sleep_precise(interval);
        if ctx.enter(done_m).with(|d| *d) {
            break;
        }
        let depth_frac = ingress.len(ctx) as f64 / ingress_capacity.max(1) as f64;
        let now = ctx.now();
        let window_p99 = ctx.enter(metrics_m).with_mut(|m| {
            let p = m.window.quantile(0.99);
            m.window.reset();
            p
        });
        let coalesce = ladder.on_window(now, window_p99, depth_frac, slo_p99);
        ctx.enter(control).with_mut(|c| c.coalesce = coalesce);
    }
    ladder
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(seed: u64) -> ServeSpec {
        let mut spec = ServeSpec::reference(600, seed);
        spec.window = secs(5);
        spec
    }

    fn outcome_fingerprint(o: &ServeOutcome) -> String {
        format!(
            "{:?}|{}|{}|{}|{}|{}|{}|{:?}|{}",
            o.counters,
            o.budget_suppressed,
            o.metrics.painted,
            o.metrics.batches,
            o.breaker_trips,
            o.fast_failed_batches,
            o.codel_drops,
            o.metrics.latency.rows(),
            o.end.as_micros(),
        )
    }

    #[test]
    fn reference_cell_drains_and_paints_most_requests() {
        let o = run_serve(small_spec(0xA5));
        let c = &o.counters;
        assert!(c.offered > 1000, "offered {}", c.offered);
        assert_eq!(c.resolved(), c.offered);
        // The reference cell has headroom: the vast majority paints.
        assert!(
            c.painted as f64 >= 0.97 * c.offered as f64,
            "painted {} of {}",
            c.painted,
            c.offered
        );
        assert!(o.metrics.latency.count() > 0);
        assert!(o.end.as_micros() > secs(5).as_micros());
    }

    #[test]
    fn identical_specs_are_byte_deterministic() {
        let a = run_serve(small_spec(0xDE7));
        let b = run_serve(small_spec(0xDE7));
        assert_eq!(outcome_fingerprint(&a), outcome_fingerprint(&b));
        let c = run_serve(small_spec(0xDE8));
        assert_ne!(outcome_fingerprint(&a), outcome_fingerprint(&c));
    }

    #[test]
    fn outage_trips_breaker_and_budget_bounds_amplification() {
        let mut spec = ServeSpec::scenario(ServeScenario::Outage, 600, 0xA5);
        spec.window = secs(6);
        spec.outage = vec![(secs(2), millis(900)), (secs(4), millis(900))];
        let o = run_serve(spec);
        assert!(o.breaker_trips >= 1, "breaker never tripped");
        assert!(
            o.fast_failed_batches + o.counters.fast_fail > 0,
            "breaker never fast-failed anything"
        );
        let amp = o.counters.amplification();
        assert!(amp < 2.0, "retry amplification {amp} out of bounds");
        assert_eq!(o.counters.resolved(), o.counters.offered);
    }

    #[test]
    fn unbudgeted_retries_amplify_more() {
        let mk = |enabled| {
            let mut spec = ServeSpec::scenario(ServeScenario::Outage, 600, 0xA5);
            spec.window = secs(6);
            spec.outage = vec![(secs(2), millis(900)), (secs(4), millis(900))];
            spec.retry.budget_enabled = enabled;
            run_serve(spec)
        };
        let with_budget = mk(true);
        let without = mk(false);
        assert!(
            without.counters.amplification() > with_budget.counters.amplification(),
            "budget {} vs unbudgeted {}",
            with_budget.counters.amplification(),
            without.counters.amplification()
        );
    }

    #[test]
    fn burst_scenario_sheds_rather_than_stalls() {
        // Reference-scale arrival (600 sessions/s) so the bursts really
        // exceed capacity.
        let mut spec = ServeSpec::scenario(ServeScenario::Burst, 3000, 0x17);
        spec.window = secs(5);
        let o = run_serve(spec);
        let c = &o.counters;
        assert_eq!(c.resolved(), c.offered);
        // Overload must show up as *controlled* shedding somewhere.
        let shed = c.rejected_admission
            + c.rejected_backpressure
            + c.shed_deadline
            + c.timed_out
            + o.codel_drops;
        assert!(shed > 0, "no shedding under burst overload");
        // And the ladder must have spent the knob before latency.
        assert!(o.ladder.degrade_steps > 0, "ladder never degraded");
        // Late paints stay rare: blown requests are shed, not painted.
        assert!(
            c.late_paint * 20 <= c.painted.max(1),
            "late paints {} vs painted {}",
            c.late_paint,
            c.painted
        );
    }
}
