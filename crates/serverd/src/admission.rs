//! Admission control: a token bucket per session class at the ingress
//! edge.
//!
//! The bucket rate is provisioned above the class's expected offered
//! rate (headroom), so steady traffic always admits; bursts beyond the
//! headroom are rejected *before* they occupy queue space — the
//! cheapest possible shed, and one the client may retry after backoff.

use pcr::SimTime;

/// A classic token bucket over virtual time. Deterministic: refill is
/// computed from integer microsecond timestamps.
#[derive(Clone, Copy, Debug)]
pub struct TokenBucket {
    rate_per_us: f64,
    burst: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// A bucket refilling at `rate_per_sec`, holding at most `burst`
    /// tokens, starting full.
    pub fn new(rate_per_sec: f64, burst: f64) -> Self {
        TokenBucket {
            rate_per_us: rate_per_sec / 1_000_000.0,
            burst: burst.max(1.0),
            tokens: burst.max(1.0),
            last: SimTime::ZERO,
        }
    }

    /// Refills for the elapsed time, then takes one token if available.
    pub fn admit(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Overrides the starting token count (buckets start full).
    pub fn with_initial(mut self, tokens: f64) -> Self {
        self.tokens = tokens.min(self.burst);
        self
    }

    /// Adds `amount` tokens (the retry budget earns fractions this way).
    pub fn earn(&mut self, amount: f64) {
        self.tokens = (self.tokens + amount).min(self.burst);
    }

    /// Current token count (after refilling to `now`).
    pub fn level(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    fn refill(&mut self, now: SimTime) {
        if now > self.last {
            let dt = now.since(self.last).as_micros() as f64;
            self.tokens = (self.tokens + dt * self.rate_per_us).min(self.burst);
            self.last = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::millis;

    #[test]
    fn steady_rate_admits_burst_rejects() {
        // 1000/s bucket, burst 10: 10 instant admits, the 11th rejects,
        // and after 5ms five tokens are back.
        let mut b = TokenBucket::new(1000.0, 10.0);
        let t0 = SimTime::ZERO + millis(1);
        for _ in 0..10 {
            assert!(b.admit(t0));
        }
        assert!(!b.admit(t0));
        let t1 = t0 + millis(5);
        for _ in 0..5 {
            assert!(b.admit(t1));
        }
        assert!(!b.admit(t1));
    }

    #[test]
    fn earn_caps_at_burst() {
        let mut b = TokenBucket::new(0.0, 4.0);
        let t = SimTime::ZERO;
        assert_eq!(b.level(t), 4.0);
        b.earn(10.0);
        assert_eq!(b.level(t), 4.0);
        assert!(b.admit(t));
        b.earn(0.5);
        assert_eq!(b.level(t), 3.5);
    }
}
