//! The `threadstudy-serve-v1` report: SLO gates, JSON, baseline
//! regression checks.

use pcr::{millis, SimDuration};
use trace::Json;

use crate::clients::ClientCounters;
use crate::metrics::LatencyHistogram;

/// Input-to-echo latency service-level objectives.
#[derive(Clone, Copy, Debug)]
pub struct SloTargets {
    /// Median gate.
    pub p50: SimDuration,
    /// Tail gate — the one CI enforces hardest.
    pub p99: SimDuration,
    /// Extreme-tail gate.
    pub p999: SimDuration,
}

impl Default for SloTargets {
    fn default() -> Self {
        // Pinned for the reference cell (calibrated; see docs/SERVING.md).
        SloTargets {
            p50: millis(10),
            p99: millis(50),
            p999: millis(200),
        }
    }
}

/// Degradation-ladder summary.
#[derive(Clone, Debug, Default)]
pub struct DegradeSummary {
    /// Quality-shedding steps taken.
    pub degrade_steps: u64,
    /// Quality-restoring steps taken.
    pub restore_steps: u64,
    /// Deepest quality level reached (0 = never degraded).
    pub max_level: u64,
    /// Virtual µs spent at each quality level.
    pub time_at_level_us: Vec<u64>,
}

/// Everything `repro serve` reports, prints, and gates on.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Sessions simulated.
    pub sessions: u32,
    /// Spec seed.
    pub seed: u64,
    /// Arrival window, µs.
    pub window_us: u64,
    /// Scheduling policy label.
    pub policy: String,
    /// Chaos/scenario label ("none", "outage", ...).
    pub scenario: String,
    /// Virtual end-of-run time, µs.
    pub end_us: u64,
    /// Latency percentiles of painted requests, µs.
    pub p50_us: u64,
    /// 99th percentile, µs.
    pub p99_us: u64,
    /// 99.9th percentile, µs.
    pub p999_us: u64,
    /// Worst observed, µs.
    pub max_us: u64,
    /// Mean, µs.
    pub mean_us: u64,
    /// Histogram rows `(bucket_lo_us, count)`.
    pub histogram: Vec<(u64, u64)>,
    /// Client-fleet counters.
    pub counters: ClientCounters,
    /// Goodput: painted requests per virtual second of the window.
    pub goodput_per_sec: f64,
    /// Amplification factor: submissions / original requests.
    pub amplification: f64,
    /// Retry-budget suppressions.
    pub budget_suppressed: u64,
    /// CoDel sheds (server side).
    pub codel_drops: u64,
    /// Breaker trips (Closed→Open).
    pub breaker_trips: u64,
    /// Batches fast-failed by the breaker.
    pub breaker_fast_failed_batches: u64,
    /// Batches failed by the outage itself.
    pub outage_failed_batches: u64,
    /// Batches painted.
    pub batches: u64,
    /// Ladder summary.
    pub degrade: DegradeSummary,
    /// The gates this run was measured against.
    pub slo: SloTargets,
}

impl ServeReport {
    /// Builds the latency fields from a histogram.
    pub fn fill_latency(&mut self, h: &LatencyHistogram) {
        self.p50_us = h.quantile_us(0.50).unwrap_or(0);
        self.p99_us = h.quantile_us(0.99).unwrap_or(0);
        self.p999_us = h.quantile_us(0.999).unwrap_or(0);
        self.max_us = h.max_us();
        self.mean_us = h.mean_us();
        self.histogram = h.rows();
    }

    /// SLO breaches, empty when all gates hold. A run that painted
    /// nothing breaches by definition.
    pub fn slo_breaches(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.counters.painted == 0 {
            out.push("no requests painted at all".to_string());
            return out;
        }
        for (name, got, gate) in [
            ("p50", self.p50_us, self.slo.p50),
            ("p99", self.p99_us, self.slo.p99),
            ("p999", self.p999_us, self.slo.p999),
        ] {
            if got > gate.as_micros() {
                out.push(format!(
                    "{name} {}µs exceeds the {}µs SLO",
                    got,
                    gate.as_micros()
                ));
            }
        }
        out
    }

    /// Regressions vs a stored baseline, empty when clean. Latency may
    /// drift 25% (plus 2ms absolute grace), goodput may lose 10%,
    /// amplification may grow 10% + 0.05.
    pub fn compare_baseline(&self, base: &ServeReport) -> Vec<String> {
        let mut out = Vec::new();
        for (name, got, was) in [
            ("p50", self.p50_us, base.p50_us),
            ("p99", self.p99_us, base.p99_us),
            ("p999", self.p999_us, base.p999_us),
        ] {
            let allowed = (was as f64 * 1.25) as u64 + 2_000;
            if got > allowed {
                out.push(format!(
                    "{name} regressed: {got}µs vs baseline {was}µs (allowed {allowed}µs)"
                ));
            }
        }
        if self.goodput_per_sec < base.goodput_per_sec * 0.9 {
            out.push(format!(
                "goodput regressed: {:.1}/s vs baseline {:.1}/s",
                self.goodput_per_sec, base.goodput_per_sec
            ));
        }
        if self.amplification > base.amplification * 1.1 + 0.05 {
            out.push(format!(
                "amplification regressed: {:.3} vs baseline {:.3}",
                self.amplification, base.amplification
            ));
        }
        out
    }

    /// Serializes as `threadstudy-serve-v1`. Deliberately excludes wall
    /// time: the file must be byte-identical for identical seeds.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .fields()
                .into_iter()
                .map(|(k, v)| (k.to_string(), Json::from(v)))
                .collect(),
        );
        Json::obj([
            ("schema", Json::from("threadstudy-serve-v1")),
            ("sessions", Json::from(self.sessions)),
            ("seed", Json::Str(format!("{:X}", self.seed))),
            ("window_us", Json::from(self.window_us)),
            ("policy", Json::from(self.policy.as_str())),
            ("scenario", Json::from(self.scenario.as_str())),
            ("end_us", Json::from(self.end_us)),
            (
                "latency_us",
                Json::obj([
                    ("p50", Json::from(self.p50_us)),
                    ("p99", Json::from(self.p99_us)),
                    ("p999", Json::from(self.p999_us)),
                    ("max", Json::from(self.max_us)),
                    ("mean", Json::from(self.mean_us)),
                ]),
            ),
            (
                "slo_us",
                Json::obj([
                    ("p50", Json::from(self.slo.p50.as_micros())),
                    ("p99", Json::from(self.slo.p99.as_micros())),
                    ("p999", Json::from(self.slo.p999.as_micros())),
                ]),
            ),
            (
                "histogram",
                Json::arr(
                    self.histogram
                        .iter()
                        .map(|&(lo, c)| Json::arr([Json::from(lo), Json::from(c)])),
                ),
            ),
            ("counters", counters),
            ("goodput_per_sec", Json::from(self.goodput_per_sec)),
            ("amplification", Json::from(self.amplification)),
            ("budget_suppressed", Json::from(self.budget_suppressed)),
            ("codel_drops", Json::from(self.codel_drops)),
            ("breaker_trips", Json::from(self.breaker_trips)),
            (
                "breaker_fast_failed_batches",
                Json::from(self.breaker_fast_failed_batches),
            ),
            (
                "outage_failed_batches",
                Json::from(self.outage_failed_batches),
            ),
            ("batches", Json::from(self.batches)),
            (
                "degrade",
                Json::obj([
                    ("steps", Json::from(self.degrade.degrade_steps)),
                    ("restores", Json::from(self.degrade.restore_steps)),
                    ("max_level", Json::from(self.degrade.max_level)),
                    (
                        "time_at_level_us",
                        Json::arr(self.degrade.time_at_level_us.iter().map(|&t| Json::from(t))),
                    ),
                ]),
            ),
        ])
    }

    /// Parses a stored `threadstudy-serve-v1` file back (for
    /// `--baseline`).
    pub fn from_json(j: &Json) -> Result<ServeReport, String> {
        let schema = j.get("schema").and_then(|s| s.as_str()).unwrap_or("");
        if schema != "threadstudy-serve-v1" {
            return Err(format!("unsupported serve schema {schema:?}"));
        }
        let u = |key: &str| -> u64 { j.get(key).and_then(|v| v.as_u64()).unwrap_or(0) };
        let f = |key: &str| -> f64 { j.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0) };
        let lat = j.get("latency_us");
        let lu = |key: &str| -> u64 {
            lat.and_then(|l| l.get(key))
                .and_then(|v| v.as_u64())
                .unwrap_or(0)
        };
        let slo = j.get("slo_us");
        let su = |key: &str, default: SimDuration| -> SimDuration {
            slo.and_then(|l| l.get(key))
                .and_then(|v| v.as_u64())
                .map(SimDuration::from_micros)
                .unwrap_or(default)
        };
        let mut counters = ClientCounters::default();
        if let Some(Json::Obj(fields)) = j.get("counters") {
            for (k, v) in fields {
                let val = v.as_u64().unwrap_or(0);
                match k.as_str() {
                    "offered" => counters.offered = val,
                    "attempts" => counters.attempts = val,
                    "painted" => counters.painted = val,
                    "timed_out" => counters.timed_out = val,
                    "shed_deadline" => counters.shed_deadline = val,
                    "failed" => counters.failed = val,
                    "late_paint" => counters.late_paint = val,
                    "rejected_admission" => counters.rejected_admission = val,
                    "rejected_backpressure" => counters.rejected_backpressure = val,
                    "shed_codel" => counters.shed_codel = val,
                    "fast_fail" => counters.fast_fail = val,
                    "xfail" => counters.xfail = val,
                    "retries" => counters.retries = val,
                    "retries_capped" => counters.retries_capped = val,
                    "retries_past_deadline" => counters.retries_past_deadline = val,
                    "retries_budget_dry" => counters.retries_budget_dry = val,
                    _ => {}
                }
            }
        }
        let degrade = j.get("degrade");
        let du = |key: &str| -> u64 {
            degrade
                .and_then(|d| d.get(key))
                .and_then(|v| v.as_u64())
                .unwrap_or(0)
        };
        Ok(ServeReport {
            sessions: u("sessions") as u32,
            seed: j
                .get("seed")
                .and_then(|s| s.as_str())
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .unwrap_or(0),
            window_us: u("window_us"),
            policy: j
                .get("policy")
                .and_then(|s| s.as_str())
                .unwrap_or("")
                .to_string(),
            scenario: j
                .get("scenario")
                .and_then(|s| s.as_str())
                .unwrap_or("")
                .to_string(),
            end_us: u("end_us"),
            p50_us: lu("p50"),
            p99_us: lu("p99"),
            p999_us: lu("p999"),
            max_us: lu("max"),
            mean_us: lu("mean"),
            histogram: j
                .get("histogram")
                .and_then(|h| h.as_array())
                .map(|rows| {
                    rows.iter()
                        .filter_map(|r| {
                            let pair = r.as_array()?;
                            Some((pair.first()?.as_u64()?, pair.get(1)?.as_u64()?))
                        })
                        .collect()
                })
                .unwrap_or_default(),
            counters,
            goodput_per_sec: f("goodput_per_sec"),
            amplification: f("amplification"),
            budget_suppressed: u("budget_suppressed"),
            codel_drops: u("codel_drops"),
            breaker_trips: u("breaker_trips"),
            breaker_fast_failed_batches: u("breaker_fast_failed_batches"),
            outage_failed_batches: u("outage_failed_batches"),
            batches: u("batches"),
            degrade: DegradeSummary {
                degrade_steps: du("steps"),
                restore_steps: du("restores"),
                max_level: du("max_level"),
                time_at_level_us: degrade
                    .and_then(|d| d.get("time_at_level_us"))
                    .and_then(|a| a.as_array())
                    .map(|xs| xs.iter().filter_map(|x| x.as_u64()).collect())
                    .unwrap_or_default(),
            },
            slo: SloTargets {
                p50: su("p50", SloTargets::default().p50),
                p99: su("p99", SloTargets::default().p99),
                p999: su("p999", SloTargets::default().p999),
            },
        })
    }

    /// Human-readable summary table.
    pub fn text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let c = &self.counters;
        let _ = writeln!(
            out,
            "serve: {} sessions, seed {:X}, window {:.1}s, policy {}, scenario {}",
            self.sessions,
            self.seed,
            self.window_us as f64 / 1e6,
            self.policy,
            self.scenario
        );
        let _ = writeln!(
            out,
            "  input-to-echo  p50 {:>7}µs   p99 {:>7}µs   p999 {:>7}µs   max {:>7}µs",
            self.p50_us, self.p99_us, self.p999_us, self.max_us
        );
        let _ = writeln!(
            out,
            "  slo gates      p50 {:>7}µs   p99 {:>7}µs   p999 {:>7}µs",
            self.slo.p50.as_micros(),
            self.slo.p99.as_micros(),
            self.slo.p999.as_micros()
        );
        let _ = writeln!(
            out,
            "  offered {}  painted {} ({:.2}%)  goodput {:.1}/s  amplification {:.3}",
            c.offered,
            c.painted,
            100.0 * c.painted as f64 / c.offered.max(1) as f64,
            self.goodput_per_sec,
            self.amplification
        );
        let _ = writeln!(
            out,
            "  shed: admission {}  backpressure {}  codel {}  deadline {}  timeout {}  failed {}",
            c.rejected_admission,
            c.rejected_backpressure,
            c.shed_codel,
            c.shed_deadline,
            c.timed_out,
            c.failed
        );
        let _ = writeln!(
            out,
            "  retry: {} scheduled, {} budget-dry, {} capped, {} past-deadline",
            c.retries, c.retries_budget_dry, c.retries_capped, c.retries_past_deadline
        );
        let _ = writeln!(
            out,
            "  breaker: {} trips, {} fast-failed batches, {} outage-failed batches",
            self.breaker_trips, self.breaker_fast_failed_batches, self.outage_failed_batches
        );
        let _ = writeln!(
            out,
            "  degrade: {} steps (max level {}), {} restores; batches {}",
            self.degrade.degrade_steps,
            self.degrade.max_level,
            self.degrade.restore_steps,
            self.batches
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeReport {
        let mut h = LatencyHistogram::new();
        for i in 1..=100u64 {
            h.record(pcr::micros(i * 100));
        }
        let mut r = ServeReport {
            sessions: 100,
            seed: 0xA5,
            window_us: 2_000_000,
            policy: "round-robin".into(),
            scenario: "none".into(),
            end_us: 2_500_000,
            p50_us: 0,
            p99_us: 0,
            p999_us: 0,
            max_us: 0,
            mean_us: 0,
            histogram: Vec::new(),
            counters: ClientCounters {
                offered: 400,
                attempts: 410,
                painted: 390,
                timed_out: 4,
                shed_deadline: 2,
                failed: 4,
                ..ClientCounters::default()
            },
            goodput_per_sec: 195.0,
            amplification: 410.0 / 400.0,
            budget_suppressed: 3,
            codel_drops: 2,
            breaker_trips: 1,
            breaker_fast_failed_batches: 5,
            outage_failed_batches: 6,
            batches: 97,
            degrade: DegradeSummary {
                degrade_steps: 2,
                restore_steps: 1,
                max_level: 2,
                time_at_level_us: vec![1_000_000, 800_000, 700_000],
            },
            slo: SloTargets::default(),
        };
        r.fill_latency(&h);
        r
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let j = r.to_json();
        let parsed = ServeReport::from_json(&Json::parse(&j.to_string()).unwrap()).unwrap();
        assert_eq!(parsed.to_json().to_string(), j.to_string());
        assert_eq!(parsed.sessions, 100);
        assert_eq!(parsed.seed, 0xA5);
        assert_eq!(parsed.counters.offered, 400);
        assert_eq!(parsed.degrade.max_level, 2);
    }

    #[test]
    fn slo_gates_fire() {
        let mut r = sample();
        assert!(r.slo_breaches().is_empty(), "{:?}", r.slo_breaches());
        r.p99_us = r.slo.p99.as_micros() + 1;
        assert_eq!(r.slo_breaches().len(), 1);
        r.counters.painted = 0;
        assert_eq!(r.slo_breaches(), vec!["no requests painted at all"]);
    }

    #[test]
    fn baseline_comparison_catches_drift() {
        let base = sample();
        let mut r = sample();
        assert!(r.compare_baseline(&base).is_empty());
        r.p99_us = base.p99_us * 2 + 10_000;
        r.goodput_per_sec = base.goodput_per_sec * 0.5;
        r.amplification = base.amplification * 2.0;
        assert_eq!(r.compare_baseline(&base).len(), 3);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let j = Json::obj([("schema", Json::from("threadstudy-bench-v2"))]);
        assert!(ServeReport::from_json(&j).is_err());
    }
}
