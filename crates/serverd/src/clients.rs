//! The simulated client fleet, as data.
//!
//! One `pcr` thread cannot be spawned per session (each simulated
//! thread is a real OS thread), so the fleet lives in a single
//! [`ClientPopulation`] driven by the client event-loop thread: a
//! [`pcr::Wheel`] holds every future client event (session arrivals,
//! next-request ticks, retry timers, per-request deadlines), and the
//! loop pops due events, submits requests, and resolves completions.
//! Deadline timers are armed once per request and *cancelled* on
//! resolution — the churn pattern the wheel's O(1) cancel exists for.

use std::collections::BTreeMap;

use pcr::{SimTime, SplitMix64, Wheel, WheelToken};

use crate::retry::{RetryBudget, RetryPolicy};
use crate::traffic::{poisson_gap, ClassParams, LoadShape, SessionClass, StartTable};

/// One request submission handed to the serving pipeline.
#[derive(Clone, Copy, Debug)]
pub struct Submission {
    /// Request id, unique per original request (stable across retries).
    pub rid: u64,
    /// The session's class.
    pub class: SessionClass,
    /// When the input event was produced (start of input-to-echo).
    pub produced_at: SimTime,
    /// Absolute input-to-echo deadline.
    pub deadline: SimTime,
    /// Submission ordinal for this request (1 = first attempt).
    pub attempt: u32,
}

/// Why a synchronous submit was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The class token bucket was empty.
    Admission,
    /// The ingress queue was full (backpressure).
    Backpressure,
}

/// How the pipeline resolved a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Painted; input-to-echo latency was recorded pipeline-side.
    Painted,
    /// Shed at dequeue: deadline already blown.
    ShedDeadline,
    /// Shed by the CoDel sojourn controller (standing queue).
    ShedCodel,
    /// Fast-failed by the open circuit breaker.
    FastFail,
    /// The X connection failed the batch (outage window).
    XFail,
}

/// A pipeline → client notification.
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    /// Which request.
    pub rid: u64,
    /// What happened.
    pub outcome: Outcome,
}

/// Everything the fleet counted. Resolution counters (`painted`,
/// `timed_out`, `shed_deadline`, `failed`) partition `offered`; event
/// counters may overlap (one request can be rejected, retried, and
/// finally painted).
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientCounters {
    /// Original requests produced by sessions.
    pub offered: u64,
    /// Submissions presented to the pipeline (offered + retries).
    pub attempts: u64,
    /// Resolved: echo painted in time (before the client deadline).
    pub painted: u64,
    /// Resolved: client deadline fired with no echo.
    pub timed_out: u64,
    /// Resolved: server shed it as already-late.
    pub shed_deadline: u64,
    /// Resolved: failed with retries exhausted/suppressed.
    pub failed: u64,
    /// Paints that arrived after the client had given up.
    pub late_paint: u64,
    /// Submissions refused by admission control.
    pub rejected_admission: u64,
    /// Submissions refused by ingress backpressure.
    pub rejected_backpressure: u64,
    /// CoDel-shed completions received.
    pub shed_codel: u64,
    /// Breaker fast-fail completions received.
    pub fast_fail: u64,
    /// Connection-failure completions received.
    pub xfail: u64,
    /// Retries scheduled.
    pub retries: u64,
    /// Retries suppressed: attempt cap reached.
    pub retries_capped: u64,
    /// Retries suppressed: backoff would land past the deadline.
    pub retries_past_deadline: u64,
    /// Retries suppressed: retry budget dry (also in budget counter).
    pub retries_budget_dry: u64,
}

impl ClientCounters {
    /// Requests resolved so far.
    pub fn resolved(&self) -> u64 {
        self.painted + self.timed_out + self.shed_deadline + self.failed
    }

    /// Amplification factor: submissions per original request.
    pub fn amplification(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.attempts as f64 / self.offered as f64
        }
    }

    /// `(name, value)` rows, stable order, for reports.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("offered", self.offered),
            ("attempts", self.attempts),
            ("painted", self.painted),
            ("timed_out", self.timed_out),
            ("shed_deadline", self.shed_deadline),
            ("failed", self.failed),
            ("late_paint", self.late_paint),
            ("rejected_admission", self.rejected_admission),
            ("rejected_backpressure", self.rejected_backpressure),
            ("shed_codel", self.shed_codel),
            ("fast_fail", self.fast_fail),
            ("xfail", self.xfail),
            ("retries", self.retries),
            ("retries_capped", self.retries_capped),
            ("retries_past_deadline", self.retries_past_deadline),
            ("retries_budget_dry", self.retries_budget_dry),
        ]
    }
}

enum ClientEvent {
    /// Session `sid` starts (emits its first request).
    Arrive(u32),
    /// Session `sid` emits its next request.
    NextReq(u32),
    /// Resubmit request `rid` (stale if already resolved).
    Retry(u64),
    /// Request `rid`'s input-to-echo deadline (stale if resolved).
    Deadline(u64),
}

// Wheel payloads must be Copy.
impl Clone for ClientEvent {
    fn clone(&self) -> Self {
        *self
    }
}
impl Copy for ClientEvent {}

struct Session {
    class: u8,
    remaining: u32,
    rng: SplitMix64,
}

struct Outstanding {
    class: u8,
    produced_at: SimTime,
    deadline: SimTime,
    deadline_tok: WheelToken,
    attempts: u32,
}

/// The whole client fleet: sessions, in-flight requests, timers,
/// retry state, counters.
pub struct ClientPopulation {
    wheel: Wheel<ClientEvent>,
    sessions: Vec<Session>,
    outstanding: BTreeMap<u64, Outstanding>,
    mix: Vec<ClassParams>,
    policy: RetryPolicy,
    budget: RetryBudget,
    retry_rng: SplitMix64,
    next_rid: u64,
    /// All the fleet's counters.
    pub counters: ClientCounters,
}

impl ClientPopulation {
    /// Builds `n` sessions with classes from `mix` and start times from
    /// `shape`, spread over `window`. Fully determined by `seed`.
    pub fn new(
        mix: &[ClassParams],
        shape: &LoadShape,
        n: u32,
        window: pcr::SimDuration,
        policy: RetryPolicy,
        seed: u64,
    ) -> Self {
        assert!(!mix.is_empty(), "traffic mix must be nonempty");
        let mut master = SplitMix64::new(seed ^ 0x5E2F_D00D_5E2F_D00D);
        let table = StartTable::build(shape);
        let window_us = window.as_micros().max(1);
        let mut wheel = Wheel::new();
        let mut sessions = Vec::with_capacity(n as usize);
        for sid in 0..n {
            // Class by cumulative share.
            let u = master.next_f64();
            let mut acc = 0.0;
            let mut class = mix.len() - 1;
            for (i, c) in mix.iter().enumerate() {
                acc += c.share;
                if u < acc {
                    class = i;
                    break;
                }
            }
            let start = SimTime::from_micros(
                ((table.sample(master.next_f64()) * window_us as f64) as u64).min(window_us - 1),
            );
            let mut rng = SplitMix64::new(master.next_u64());
            let mean = mix[class].events_per_session();
            let cap = (mean * 6.0) as u64 + 8;
            let remaining = if mean > 1.0 {
                1 + (rng.next_exp(mean - 1.0) as u64).min(cap) as u32
            } else {
                1
            };
            wheel.schedule(start, ClientEvent::Arrive(sid));
            sessions.push(Session {
                class: class as u8,
                remaining,
                rng,
            });
        }
        ClientPopulation {
            wheel,
            sessions,
            outstanding: BTreeMap::new(),
            mix: mix.to_vec(),
            budget: RetryBudget::new(&policy),
            policy,
            retry_rng: SplitMix64::new(seed ^ 0x9E37_79B9_7F4A_7C15),
            next_rid: 0,
            counters: ClientCounters::default(),
        }
    }

    /// The next client event's time, if any.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        self.wheel.next_deadline()
    }

    /// True while any request is in flight.
    pub fn has_outstanding(&self) -> bool {
        !self.outstanding.is_empty()
    }

    /// True once every session is exhausted and every request resolved.
    pub fn done(&self) -> bool {
        self.wheel.is_empty() && self.outstanding.is_empty()
    }

    /// Retry-budget suppressions (for the report).
    pub fn budget_suppressed(&self) -> u64 {
        self.budget.suppressed
    }

    /// Pops every event due at or before `now`; returns the submissions
    /// to present to the pipeline, in deterministic event order.
    pub fn poll(&mut self, now: SimTime) -> Vec<Submission> {
        let mut subs = Vec::new();
        while let Some((t, ev)) = self.wheel.pop_due_at(now) {
            match ev {
                ClientEvent::Arrive(sid) | ClientEvent::NextReq(sid) => {
                    self.emit(sid, t, &mut subs);
                }
                ClientEvent::Retry(rid) => {
                    if let Some(o) = self.outstanding.get_mut(&rid) {
                        o.attempts += 1;
                        self.counters.attempts += 1;
                        subs.push(Submission {
                            rid,
                            class: SessionClass::ALL[o.class as usize],
                            produced_at: o.produced_at,
                            deadline: o.deadline,
                            attempt: o.attempts,
                        });
                    }
                }
                ClientEvent::Deadline(rid) => {
                    if self.outstanding.remove(&rid).is_some() {
                        self.counters.timed_out += 1;
                    }
                }
            }
        }
        subs
    }

    fn emit(&mut self, sid: u32, t: SimTime, subs: &mut Vec<Submission>) {
        let s = &mut self.sessions[sid as usize];
        let class_idx = s.class as usize;
        let params = self.mix[class_idx];
        s.remaining -= 1;
        if s.remaining > 0 {
            let gap = poisson_gap(&mut s.rng, params.events_per_sec);
            self.wheel.schedule(t + gap, ClientEvent::NextReq(sid));
        }
        let rid = self.next_rid;
        self.next_rid += 1;
        let deadline = t + params.deadline;
        let tok = self.wheel.schedule(deadline, ClientEvent::Deadline(rid));
        self.outstanding.insert(
            rid,
            Outstanding {
                class: s.class,
                produced_at: t,
                deadline,
                deadline_tok: tok,
                attempts: 1,
            },
        );
        self.counters.offered += 1;
        self.counters.attempts += 1;
        self.budget.on_offered();
        subs.push(Submission {
            rid,
            class: params.class,
            produced_at: t,
            deadline,
            attempt: 1,
        });
    }

    /// A synchronous submit was refused (admission or backpressure).
    pub fn on_submit_rejected(&mut self, now: SimTime, rid: u64, reason: RejectReason) {
        match reason {
            RejectReason::Admission => self.counters.rejected_admission += 1,
            RejectReason::Backpressure => self.counters.rejected_backpressure += 1,
        }
        self.maybe_retry(now, rid);
    }

    /// An asynchronous completion arrived from the pipeline.
    pub fn on_completion(&mut self, now: SimTime, c: Completion) {
        match c.outcome {
            Outcome::Painted => {
                if let Some(o) = self.outstanding.remove(&c.rid) {
                    self.wheel.cancel(o.deadline_tok);
                    self.counters.painted += 1;
                } else {
                    self.counters.late_paint += 1;
                }
            }
            Outcome::ShedDeadline => {
                if let Some(o) = self.outstanding.remove(&c.rid) {
                    self.wheel.cancel(o.deadline_tok);
                    self.counters.shed_deadline += 1;
                }
            }
            Outcome::ShedCodel => {
                self.counters.shed_codel += 1;
                self.maybe_retry(now, c.rid);
            }
            Outcome::FastFail => {
                self.counters.fast_fail += 1;
                self.maybe_retry(now, c.rid);
            }
            Outcome::XFail => {
                self.counters.xfail += 1;
                self.maybe_retry(now, c.rid);
            }
        }
    }

    /// Schedules a backoff retry for `rid` if the attempt cap, the
    /// deadline, and the retry budget all allow; resolves the request
    /// as failed otherwise.
    fn maybe_retry(&mut self, now: SimTime, rid: u64) {
        let Some(o) = self.outstanding.get(&rid) else {
            return; // already resolved (e.g. deadline fired first)
        };
        if o.attempts >= self.policy.max_attempts {
            self.counters.retries_capped += 1;
            self.resolve_failed(rid);
            return;
        }
        let backoff = self.policy.backoff(o.attempts, &mut self.retry_rng);
        if now + backoff >= o.deadline {
            self.counters.retries_past_deadline += 1;
            self.resolve_failed(rid);
            return;
        }
        if !self.budget.try_spend(now) {
            self.counters.retries_budget_dry += 1;
            self.resolve_failed(rid);
            return;
        }
        self.counters.retries += 1;
        self.wheel.schedule(now + backoff, ClientEvent::Retry(rid));
    }

    fn resolve_failed(&mut self, rid: u64) {
        if let Some(o) = self.outstanding.remove(&rid) {
            self.wheel.cancel(o.deadline_tok);
            self.counters.failed += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::default_mix;
    use pcr::{millis, secs};

    fn small_pop(policy: RetryPolicy) -> ClientPopulation {
        ClientPopulation::new(
            &default_mix(),
            &LoadShape::steady(),
            20,
            secs(2),
            policy,
            0xA5,
        )
    }

    #[test]
    fn every_offered_request_resolves_exactly_once() {
        // Drive the population with an immediate-paint pipeline stub.
        let mut pop = small_pop(RetryPolicy::default());
        let mut now = SimTime::ZERO;
        while !pop.done() {
            now = pop.next_wakeup().unwrap_or(now + millis(1)).max(now);
            let subs = pop.poll(now);
            let comps: Vec<Completion> = subs
                .iter()
                .map(|s| Completion {
                    rid: s.rid,
                    outcome: Outcome::Painted,
                })
                .collect();
            for c in comps {
                pop.on_completion(now, c);
            }
        }
        let c = pop.counters;
        assert!(c.offered > 20, "each session emits at least one request");
        assert_eq!(c.painted, c.offered);
        assert_eq!(c.resolved(), c.offered);
        assert_eq!(c.attempts, c.offered, "no retries when everything paints");
    }

    #[test]
    fn rejects_retry_then_resolve() {
        let mut pop = small_pop(RetryPolicy {
            budget_cap: 1000.0,
            budget_ratio: 1.0,
            ..RetryPolicy::default()
        });
        let mut now = SimTime::ZERO;
        let mut first_attempts = 0u64;
        while !pop.done() {
            now = pop.next_wakeup().unwrap_or(now + millis(1)).max(now);
            let subs = pop.poll(now);
            for s in subs {
                if s.attempt == 1 {
                    // Reject every first attempt; paint every retry.
                    first_attempts += 1;
                    pop.on_submit_rejected(now, s.rid, RejectReason::Backpressure);
                } else {
                    pop.on_completion(
                        now,
                        Completion {
                            rid: s.rid,
                            outcome: Outcome::Painted,
                        },
                    );
                }
            }
        }
        let c = pop.counters;
        assert_eq!(c.rejected_backpressure, first_attempts);
        assert!(c.retries > 0);
        assert!(c.painted > 0, "retried requests must eventually paint");
        assert_eq!(c.resolved(), c.offered);
        assert!(
            c.amplification() > 1.0 && c.amplification() <= 2.0,
            "one retry per request → amplification in (1, 2], got {}",
            c.amplification()
        );
    }

    #[test]
    fn unanswered_requests_time_out() {
        let mut pop = small_pop(RetryPolicy::default());
        let mut now = SimTime::ZERO;
        while !pop.done() {
            now = pop.next_wakeup().unwrap_or(now + millis(1)).max(now);
            let _ = pop.poll(now); // swallow submissions, answer nothing
        }
        let c = pop.counters;
        assert_eq!(c.timed_out, c.offered, "silence → every request times out");
        assert_eq!(c.painted, 0);
    }

    #[test]
    fn budget_dry_fails_fast_instead_of_storming() {
        let mut pop = small_pop(RetryPolicy {
            budget_ratio: 0.05,
            ..RetryPolicy::default()
        });
        let mut now = SimTime::ZERO;
        while !pop.done() {
            now = pop.next_wakeup().unwrap_or(now + millis(1)).max(now);
            let subs = pop.poll(now);
            for s in subs {
                // Total outage: every submission fast-fails.
                pop.on_completion(
                    now,
                    Completion {
                        rid: s.rid,
                        outcome: Outcome::FastFail,
                    },
                );
            }
        }
        let c = pop.counters;
        assert_eq!(c.resolved(), c.offered);
        assert!(c.retries_budget_dry > 0, "budget must run dry");
        assert!(
            c.amplification() < 1.5,
            "budget must bound amplification, got {}",
            c.amplification()
        );
    }

    #[test]
    fn deterministic_event_stream() {
        let run = || {
            let mut pop = small_pop(RetryPolicy::default());
            let mut log = Vec::new();
            let mut now = SimTime::ZERO;
            while !pop.done() {
                now = pop.next_wakeup().unwrap_or(now + millis(1)).max(now);
                for s in pop.poll(now) {
                    log.push((s.rid, s.produced_at.as_micros(), s.attempt));
                    pop.on_completion(
                        now,
                        Completion {
                            rid: s.rid,
                            outcome: Outcome::Painted,
                        },
                    );
                }
            }
            log
        };
        assert_eq!(run(), run());
    }
}
