//! Client-side retry: capped exponential backoff with deterministic
//! jitter, governed by a retry *budget*.
//!
//! The budget is the part that matters under outage: each original
//! request earns a fraction of a retry token, each retry spends a whole
//! one. While the failure rate stays below the earn ratio retries flow
//! freely; when an outage fails *everything*, the budget drains and
//! further retries are suppressed — bounding the amplification factor
//! (total submissions / original requests) near 1 + ratio instead of
//! the `max_attempts`× retry storm an unbudgeted client fleet produces.

use crate::admission::TokenBucket;
use pcr::{millis, SimDuration, SimTime, SplitMix64};

/// Client retry policy.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// First backoff (doubles per attempt).
    pub base: SimDuration,
    /// Backoff cap.
    pub cap: SimDuration,
    /// Max total submissions per request (1 = no retries).
    pub max_attempts: u32,
    /// Retry tokens earned per original request (0.1 = 10% budget).
    pub budget_ratio: f64,
    /// Budget bucket depth.
    pub budget_cap: f64,
    /// Disable the budget entirely (the E17 counterfactual).
    pub budget_enabled: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: millis(5),
            cap: millis(80),
            max_attempts: 4,
            budget_ratio: 0.1,
            budget_cap: 64.0,
            budget_enabled: true,
        }
    }
}

impl RetryPolicy {
    /// Backoff before submission `attempt + 1`, where `attempt` ≥ 1 is
    /// the submission that just failed: capped exponential, with
    /// deterministic half-jitter (`d/2 + uniform(0, d/2)`).
    pub fn backoff(&self, attempt: u32, rng: &mut SplitMix64) -> SimDuration {
        let exp = attempt.saturating_sub(1).min(16);
        let full = self
            .cap
            .min(SimDuration::from_micros(self.base.as_micros() << exp));
        let half = full.as_micros() / 2;
        SimDuration::from_micros(half + rng.next_below(half.max(1)))
    }
}

/// The budget bucket plus its suppression counters.
#[derive(Clone, Copy, Debug)]
pub struct RetryBudget {
    bucket: TokenBucket,
    enabled: bool,
    ratio: f64,
    /// Retries refused because the budget was dry.
    pub suppressed: u64,
}

impl RetryBudget {
    /// A budget for `policy`, starting with a small float of tokens.
    pub fn new(policy: &RetryPolicy) -> Self {
        RetryBudget {
            // Rate 0 and empty start: tokens come only from earn().
            bucket: TokenBucket::new(0.0, policy.budget_cap).with_initial(0.0),
            enabled: policy.budget_enabled,
            ratio: policy.budget_ratio,
            suppressed: 0,
        }
    }

    /// An original request was offered: earn the ratio.
    pub fn on_offered(&mut self) {
        self.bucket.earn(self.ratio);
    }

    /// May we schedule a retry now? Spends a token when allowed.
    pub fn try_spend(&mut self, now: SimTime) -> bool {
        if !self.enabled {
            return true;
        }
        if self.bucket.admit(now) {
            true
        } else {
            self.suppressed += 1;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps_with_jitter() {
        let p = RetryPolicy::default();
        let mut rng = SplitMix64::new(1);
        for attempt in 1..8 {
            let d = p.backoff(attempt, &mut rng);
            let full = p.cap.min(SimDuration::from_micros(
                p.base.as_micros() << (attempt - 1),
            ));
            assert!(d >= SimDuration::from_micros(full.as_micros() / 2));
            assert!(d <= full);
        }
    }

    #[test]
    fn budget_bounds_amplification() {
        // 100 offered requests at 10% ratio: at most ~10 retries pass
        // (plus nothing from refill — rate is zero).
        let p = RetryPolicy::default();
        let mut b = RetryBudget::new(&p);
        let now = SimTime::ZERO;
        for _ in 0..100 {
            b.on_offered();
        }
        let granted = (0..100).filter(|_| b.try_spend(now)).count() as u64;
        // 100 × 0.1 earns ~10 tokens (float accumulation may land a
        // hair under an integer boundary).
        assert!((9..=10).contains(&granted), "granted {granted}");
        assert_eq!(b.suppressed, 100 - granted);
        // Disabled budget always grants.
        let mut free = RetryBudget::new(&RetryPolicy {
            budget_enabled: false,
            ..p
        });
        assert!((0..50).all(|_| free.try_spend(now)));
        assert_eq!(free.suppressed, 0);
    }
}
