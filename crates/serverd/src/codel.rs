//! CoDel-style sojourn control on the ingress queue.
//!
//! The controlled-delay algorithm (Nichols & Jacobson) adapted to a
//! request queue: measure each dequeued batch head's *sojourn* (time
//! spent queued); if sojourn has stayed above `target` for a full
//! `interval`, enter a dropping state that sheds one head per control
//! decision, tightening as `interval / sqrt(count)` while the queue
//! stays bad. Unlike a fixed queue cap, this distinguishes a brief
//! burst (absorbed by the queue, no drops) from a standing queue
//! (systematically shed until latency recovers).

use pcr::{millis, SimDuration, SimTime};

/// Tuning knobs for [`CoDel`].
#[derive(Clone, Copy, Debug)]
pub struct CodelSpec {
    /// Acceptable standing sojourn.
    pub target: SimDuration,
    /// How long sojourn must exceed `target` before dropping starts.
    pub interval: SimDuration,
}

impl Default for CodelSpec {
    fn default() -> Self {
        CodelSpec {
            target: millis(5),
            interval: millis(100),
        }
    }
}

/// What to do with the dequeued head.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodelVerdict {
    /// Serve it.
    Pass,
    /// Shed it (standing queue).
    Drop,
}

/// The control-law state machine. One instance guards one queue.
#[derive(Clone, Copy, Debug)]
pub struct CoDel {
    spec: CodelSpec,
    /// When sojourn first exceeded target (None = currently below).
    first_above: Option<SimTime>,
    dropping: bool,
    drop_next: SimTime,
    /// Drops in the current dropping episode.
    count: u32,
    /// Total drops (reporting).
    pub drops: u64,
}

impl CoDel {
    /// A controller with the given knobs.
    pub fn new(spec: CodelSpec) -> Self {
        CoDel {
            spec,
            first_above: None,
            dropping: false,
            drop_next: SimTime::ZERO,
            count: 0,
            drops: 0,
        }
    }

    /// Feeds one dequeue observation; the verdict applies to the head.
    pub fn on_dequeue(&mut self, now: SimTime, sojourn: SimDuration) -> CodelVerdict {
        if sojourn < self.spec.target {
            self.first_above = None;
            self.dropping = false;
            return CodelVerdict::Pass;
        }
        match self.first_above {
            None => {
                self.first_above = Some(now + self.spec.interval);
                CodelVerdict::Pass
            }
            Some(deadline) if now < deadline => CodelVerdict::Pass,
            Some(_) => {
                if !self.dropping {
                    self.dropping = true;
                    // Resume near the previous rate if we were dropping
                    // recently (classic CoDel hysteresis), else restart.
                    self.count = if self.count > 2 { self.count - 2 } else { 1 };
                    self.drop_next = now;
                }
                if now >= self.drop_next {
                    self.count += 1;
                    self.drops += 1;
                    let step = self.spec.interval.as_micros() as f64 / (self.count as f64).sqrt();
                    self.drop_next = now + SimDuration::from_micros(step as u64);
                    CodelVerdict::Drop
                } else {
                    CodelVerdict::Pass
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::micros;

    #[test]
    fn brief_spike_passes_standing_queue_drops() {
        let mut c = CoDel::new(CodelSpec::default());
        let mut now = SimTime::ZERO;
        // Short excursion above target, then recovery: no drops.
        for _ in 0..5 {
            assert_eq!(c.on_dequeue(now, millis(8)), CodelVerdict::Pass);
            now += millis(10);
        }
        assert_eq!(c.on_dequeue(now, millis(1)), CodelVerdict::Pass);
        assert_eq!(c.drops, 0);
        // Standing queue: above target for > interval → drops begin,
        // accelerating while it stays bad.
        for _ in 0..40 {
            c.on_dequeue(now, millis(20));
            now += millis(10);
        }
        assert!(c.drops >= 2, "standing queue must shed (got {})", c.drops);
        // Recovery resets the state machine.
        assert_eq!(c.on_dequeue(now, micros(100)), CodelVerdict::Pass);
        let drops = c.drops;
        assert_eq!(
            c.on_dequeue(now + millis(1), millis(20)),
            CodelVerdict::Pass
        );
        assert_eq!(c.drops, drops, "fresh excursion passes for an interval");
    }
}
