//! The overload-resilient server world: "millions of users" on the
//! paper's runtime.
//!
//! Cedar and GVX (the two systems in the study) run ~35 eternal threads
//! for *one* user. This crate scales the same input-to-echo pipeline to
//! an open-loop stream of 10k–1M simulated client sessions — and since
//! each simulated `pcr` thread is a real OS thread, the sessions are
//! *data* driven by a small fixed set of pipeline threads, not threads
//! themselves (the event-driven discipline of PAPERS.md's CCP
//! interpreters).
//!
//! The robustness toolkit, end to end:
//!
//! - **Open-loop traffic** ([`traffic`]): keyboard/mouse/scroll session
//!   classes, diurnal ramps and bursts, all seeded.
//! - **Admission control** ([`admission`]): a token bucket per session
//!   class at the ingress edge.
//! - **Bounded queues + backpressure**: `paradigms::pump::BoundedQueue`
//!   between every stage; a full ingress queue rejects, never blocks
//!   the client loop.
//! - **Deadline shedding** ([`codel`] + worker dequeue checks): drop
//!   requests whose input-to-echo deadline is already blown, and
//!   CoDel's sojourn control law on standing queues.
//! - **Retry with a budget** ([`retry`]): capped exponential backoff
//!   with deterministic jitter, and a token-bucket retry budget so an
//!   outage cannot be amplified into a retry storm.
//! - **Circuit breaker** ([`breaker`]): closed → open → half-open on
//!   the simulated X-server connection; composes with `pcr::chaos`.
//! - **Graceful degradation** ([`degrade`]): a coalescing-quality
//!   ladder that sheds echo quality before latency, the §5.2
//!   slack-process knob turned into a control loop.
//!
//! [`world::run_serve`] assembles the pipeline and returns a
//! [`report::ServeReport`] (`threadstudy-serve-v1`) with SLO gates on
//! input-to-echo p50/p99/p999. Everything is deterministic under the
//! spec seed: same seed, byte-identical report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod breaker;
pub mod clients;
pub mod codel;
pub mod degrade;
pub mod metrics;
pub mod report;
pub mod retry;
pub mod traffic;
pub mod world;

pub use admission::TokenBucket;
pub use breaker::{BreakerSpec, BreakerState, CircuitBreaker};
pub use clients::{
    ClientCounters, ClientPopulation, Completion, Outcome, RejectReason, Submission,
};
pub use codel::{CoDel, CodelSpec, CodelVerdict};
pub use degrade::{Ladder, LadderSpec};
pub use metrics::LatencyHistogram;
pub use report::{DegradeSummary, ServeReport, SloTargets};
pub use retry::{RetryBudget, RetryPolicy};
pub use traffic::{ClassParams, LoadShape, ServeScenario, SessionClass, StartTable};
pub use world::{build_sim, install, run_serve, ServeOutcome, ServeSpec};
