//! Latency histograms and the shared pipeline metrics monitor.

use pcr::{SimDuration, SimTime};

const BUCKETS: usize = 40; // covers 1µs .. ~9 minutes in log2 steps

/// A log2-bucketed microsecond latency histogram with deterministic
/// quantile extraction (linear interpolation within the bucket).
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(us: u64) -> usize {
        // Bucket b holds [2^(b-1), 2^b); bucket 0 holds {0}.
        ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Records one observation.
    pub fn record(&mut self, d: SimDuration) {
        let us = d.as_micros();
        self.counts[Self::bucket_of(us)] += 1;
        self.count += 1;
        self.sum_us += us;
        self.max_us = self.max_us.max(us);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest observation, µs.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Mean, µs (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile in µs (`q` ∈ (0, 1]); `None` when empty.
    /// Deterministic: integer rank, linear interpolation across the
    /// bucket's value range by intra-bucket position.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = if b == 0 { 0 } else { 1u64 << (b - 1) };
                let hi = if b == 0 { 0 } else { (1u64 << b) - 1 };
                let pos = (rank - seen - 1) as f64 / c as f64;
                let v = lo as f64 + (hi - lo) as f64 * pos;
                return Some((v as u64).min(self.max_us));
            }
            seen += c;
        }
        Some(self.max_us)
    }

    /// Quantile as a duration.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        self.quantile_us(q).map(SimDuration::from_micros)
    }

    /// Resets to empty (control-window reuse).
    pub fn reset(&mut self) {
        *self = LatencyHistogram::new();
    }

    /// Nonzero `(bucket_lo_us, count)` rows for the JSON report.
    pub fn rows(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (if b == 0 { 0 } else { 1u64 << (b - 1) }, c))
            .collect()
    }
}

/// Pipeline-side counters and histograms, shared via one monitor.
#[derive(Clone, Debug, Default)]
pub struct ServeMetrics {
    /// Input-to-echo latency of painted requests, whole run.
    pub latency: LatencyHistogram,
    /// Same, current control window only (controller resets it).
    pub window: LatencyHistogram,
    /// Ingress-queue sojourn of requests reaching the X connection.
    pub sojourn: LatencyHistogram,
    /// Requests painted.
    pub painted: u64,
    /// Batches painted.
    pub batches: u64,
    /// Batches failed by the (simulated) connection outage.
    pub outage_failed_batches: u64,
}

impl ServeMetrics {
    /// Records a painted request's input-to-echo latency.
    pub fn record_paint(&mut self, produced_at: SimTime, painted_at: SimTime) {
        let lat = painted_at.saturating_since(produced_at);
        self.latency.record(lat);
        self.window.record(lat);
        self.painted += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::{micros, millis};

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(micros(i * 10));
        }
        let p50 = h.quantile_us(0.5).unwrap();
        let p99 = h.quantile_us(0.99).unwrap();
        let p999 = h.quantile_us(0.999).unwrap();
        assert!(p50 <= p99 && p99 <= p999);
        assert!(p999 <= h.max_us());
        // log2 buckets: p50 within a factor of 2 of the true 5000µs.
        assert!((2500..=10_000).contains(&p50), "p50 {p50}");
        assert_eq!(h.count(), 1000);
        h.reset();
        assert_eq!(h.quantile_us(0.5), None);
    }

    #[test]
    fn zero_and_huge_observations_survive() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::ZERO);
        h.record(millis(10_000_000));
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_us(0.01).unwrap(), 0);
        assert!(h.quantile_us(1.0).unwrap() <= h.max_us());
        assert_eq!(h.rows().len(), 2);
    }
}
