//! The graceful-degradation ladder: shed echo-coalescing quality before
//! latency.
//!
//! §5.2's slack process trades echo granularity for throughput by
//! merging adjacent screen updates. This module turns that knob into a
//! feedback controller: each control window the controller looks at the
//! painted p99 and the ingress queue depth; if latency is drifting
//! toward the SLO (or a standing backlog is forming), it *raises* the
//! coalescing factor — batches get bigger, per-request overhead
//! amortizes further, capacity rises, users see chunkier echoes but on
//! time. When pressure clears and holds clear, it steps back down.

use pcr::{millis, SimDuration, SimTime};

/// Ladder tuning.
#[derive(Clone, Debug)]
pub struct LadderSpec {
    /// Coalescing factor per quality level; level 0 is full quality.
    pub levels: Vec<u32>,
    /// Degrade when window p99 exceeds this fraction of the p99 SLO.
    pub degrade_at: f64,
    /// Restore when window p99 is below this fraction (and depth low).
    pub restore_below: f64,
    /// Degrade when sampled ingress depth exceeds this fraction of
    /// capacity, regardless of painted latency (outage backlogs paint
    /// nothing, so p99 alone can look deceptively healthy).
    pub depth_degrade_frac: f64,
    /// Minimum dwell between level changes.
    pub hold: SimDuration,
}

impl Default for LadderSpec {
    fn default() -> Self {
        LadderSpec {
            levels: vec![4, 8, 16, 32],
            degrade_at: 0.75,
            restore_below: 0.35,
            depth_degrade_frac: 0.5,
            hold: millis(400),
        }
    }
}

/// The controller state plus its outcome counters.
#[derive(Clone, Debug)]
pub struct Ladder {
    spec: LadderSpec,
    level: usize,
    last_change: SimTime,
    level_entered: SimTime,
    /// Quality-shedding steps taken (level raised).
    pub degrade_steps: u64,
    /// Quality-restoring steps taken (level lowered).
    pub restore_steps: u64,
    /// Deepest level reached.
    pub max_level: usize,
    /// Virtual µs spent at each level (finalized by [`Ladder::finish`]).
    pub time_at_level_us: Vec<u64>,
}

impl Ladder {
    /// A ladder at full quality.
    pub fn new(spec: LadderSpec) -> Self {
        assert!(!spec.levels.is_empty(), "ladder needs at least one level");
        let n = spec.levels.len();
        Ladder {
            spec,
            level: 0,
            last_change: SimTime::ZERO,
            level_entered: SimTime::ZERO,
            degrade_steps: 0,
            restore_steps: 0,
            max_level: 0,
            time_at_level_us: vec![0; n],
        }
    }

    /// The current coalescing factor workers should use.
    pub fn coalesce(&self) -> u32 {
        self.spec.levels[self.level]
    }

    /// Current quality level (0 = full quality).
    pub fn level(&self) -> usize {
        self.level
    }

    /// One control-window observation. `window_p99` is the painted p99
    /// over the window (None when nothing painted), `depth_frac` the
    /// sampled ingress depth / capacity, `slo_p99` the gate. Returns
    /// the possibly-changed coalescing factor.
    pub fn on_window(
        &mut self,
        now: SimTime,
        window_p99: Option<SimDuration>,
        depth_frac: f64,
        slo_p99: SimDuration,
    ) -> u32 {
        let held = now.saturating_since(self.last_change) >= self.spec.hold;
        let slo_us = slo_p99.as_micros() as f64;
        let p99_frac = window_p99.map(|d| d.as_micros() as f64 / slo_us);
        let pressured = p99_frac.is_some_and(|f| f > self.spec.degrade_at)
            || depth_frac > self.spec.depth_degrade_frac;
        let calm = p99_frac.is_none_or(|f| f < self.spec.restore_below)
            && depth_frac < self.spec.depth_degrade_frac / 4.0;
        if pressured && held && self.level + 1 < self.spec.levels.len() {
            self.switch_to(self.level + 1, now);
            self.degrade_steps += 1;
            self.max_level = self.max_level.max(self.level);
        } else if calm
            && self.level > 0
            && now.saturating_since(self.last_change) >= self.spec.hold * 2
        {
            self.switch_to(self.level - 1, now);
            self.restore_steps += 1;
        }
        self.coalesce()
    }

    fn switch_to(&mut self, level: usize, now: SimTime) {
        self.time_at_level_us[self.level] += now.saturating_since(self.level_entered).as_micros();
        self.level = level;
        self.last_change = now;
        self.level_entered = now;
    }

    /// Closes the books at end of run.
    pub fn finish(&mut self, now: SimTime) {
        self.time_at_level_us[self.level] += now.saturating_since(self.level_entered).as_micros();
        self.level_entered = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::secs;

    #[test]
    fn degrades_under_pressure_restores_when_calm() {
        let mut l = Ladder::new(LadderSpec::default());
        let slo = millis(50);
        let mut now = SimTime::ZERO + secs(1);
        assert_eq!(l.coalesce(), 4);
        // Hot window → degrade (after hold).
        assert_eq!(l.on_window(now, Some(millis(45)), 0.1, slo), 8);
        // Immediately hot again → hold blocks a second step.
        now += millis(100);
        assert_eq!(l.on_window(now, Some(millis(45)), 0.1, slo), 8);
        now += millis(400);
        assert_eq!(l.on_window(now, Some(millis(45)), 0.1, slo), 16);
        assert_eq!(l.degrade_steps, 2);
        assert_eq!(l.max_level, 2);
        // Depth pressure alone degrades too (outage backlog).
        now += millis(500);
        assert_eq!(l.on_window(now, None, 0.8, slo), 32);
        // Calm long enough → restore one step at a time.
        now += secs(1);
        assert_eq!(l.on_window(now, Some(millis(2)), 0.0, slo), 16);
        assert_eq!(l.restore_steps, 1);
        l.finish(now + secs(1));
        // Segments partition the whole run: ZERO → finish time.
        let total: u64 = l.time_at_level_us.iter().sum();
        assert_eq!(total, (now + secs(1)).as_micros());
    }
}
