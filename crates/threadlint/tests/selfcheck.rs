//! Self-hosted checks: the analyzer runs over the workspace's own
//! sources. Disciplined code must produce zero unallowed findings;
//! `paradigms::mistakes` must trip every lint at least once (allowed).

use threadlint::{analyze_workspace, workspace_root, Lint, PrimKind};

#[test]
fn workspace_has_zero_unallowed_findings() {
    let a = analyze_workspace(&workspace_root()).expect("workspace scan");
    let bad: Vec<_> = a.unallowed().collect();
    assert!(
        bad.is_empty(),
        "unallowed findings:\n{}",
        bad.iter()
            .map(|f| format!("  {} {}:{} {}", f.lint, f.file, f.line, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_lint_fires_on_the_deliberate_mistakes() {
    let a = analyze_workspace(&workspace_root()).expect("workspace scan");
    let in_mistakes = a.findings_in("crates/paradigms/src/mistakes.rs");
    for lint in Lint::ALL {
        assert!(
            in_mistakes.iter().any(|f| f.lint == lint && f.allowed),
            "{lint} has no (allowed) finding in paradigms::mistakes; findings there: {:#?}",
            in_mistakes
        );
    }
}

#[test]
fn interprocedural_lints_fire_on_their_exemplars() {
    // The tentpole lints must catch the cross-function shapes that the
    // per-file lints structurally cannot: the deep ABBA reports its
    // composed call chain, and the nested WAIT names both monitors.
    let a = analyze_workspace(&workspace_root()).expect("workspace scan");
    let in_mistakes = a.findings_in("crates/paradigms/src/mistakes.rs");
    let cycle = in_mistakes
        .iter()
        .find(|f| f.lint == Lint::LockOrderCycleTransitive)
        .expect("deep_transfer halves form a transitive cycle");
    assert!(cycle.message.contains("via"), "{}", cycle.message);
    assert!(
        cycle.monitors.contains(&"ledger".into()) && cycle.monitors.contains(&"audit".into()),
        "{:?}",
        cycle.monitors
    );
    let wait = in_mistakes
        .iter()
        .find(|f| f.lint == Lint::WaitWithOuterMonitor)
        .expect("nested_wait_inner waits with registry pinned");
    assert!(
        wait.monitors.contains(&"registry".into()) && wait.monitors.contains(&"inbox".into()),
        "{:?}",
        wait.monitors
    );
}

#[test]
fn fork_escape_remedy_is_not_a_transitive_cycle() {
    // §4.4's remedy — fork a fresh thread for the second acquisition so
    // the first lock is released before the second is taken — must
    // break the chain: the forked closure starts with an empty lockset.
    // deadlock_avoid demonstrates the remedy; the transitive-cycle lint
    // must not fire there at all, allowed or otherwise.
    let a = analyze_workspace(&workspace_root()).expect("workspace scan");
    let in_remedy = a.findings_in("crates/paradigms/src/deadlock_avoid.rs");
    assert!(
        !in_remedy
            .iter()
            .any(|f| f.lint == Lint::LockOrderCycleTransitive),
        "{:#?}",
        in_remedy
    );
}

#[test]
fn census_floor_holds() {
    let a = analyze_workspace(&workspace_root()).expect("workspace scan");
    let count = |k: PrimKind| a.sites.iter().filter(|s| s.kind == k).count();
    // The workspace is saturated with primitives; these floors catch a
    // scanner regression that silently drops a whole class of sites.
    assert!(
        count(PrimKind::Fork) >= 50,
        "forks: {}",
        count(PrimKind::Fork)
    );
    assert!(
        count(PrimKind::Wait) >= 10,
        "waits: {}",
        count(PrimKind::Wait)
    );
    assert!(
        count(PrimKind::Notify) >= 10,
        "notifies: {}",
        count(PrimKind::Notify)
    );
    assert!(
        count(PrimKind::Enter) >= 20,
        "enters: {}",
        count(PrimKind::Enter)
    );
    assert!(
        count(PrimKind::MonitorNew) >= 10,
        "monitors: {}",
        count(PrimKind::MonitorNew)
    );
}
