//! Self-hosted checks: the analyzer runs over the workspace's own
//! sources. Disciplined code must produce zero unallowed findings;
//! `paradigms::mistakes` must trip every lint at least once (allowed).

use threadlint::{analyze_workspace, workspace_root, Lint, PrimKind};

#[test]
fn workspace_has_zero_unallowed_findings() {
    let a = analyze_workspace(&workspace_root()).expect("workspace scan");
    let bad: Vec<_> = a.unallowed().collect();
    assert!(
        bad.is_empty(),
        "unallowed findings:\n{}",
        bad.iter()
            .map(|f| format!("  {} {}:{} {}", f.lint, f.file, f.line, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_lint_fires_on_the_deliberate_mistakes() {
    let a = analyze_workspace(&workspace_root()).expect("workspace scan");
    let in_mistakes = a.findings_in("crates/paradigms/src/mistakes.rs");
    for lint in Lint::ALL {
        assert!(
            in_mistakes.iter().any(|f| f.lint == lint && f.allowed),
            "{lint} has no (allowed) finding in paradigms::mistakes; findings there: {:#?}",
            in_mistakes
        );
    }
}

#[test]
fn census_floor_holds() {
    let a = analyze_workspace(&workspace_root()).expect("workspace scan");
    let count = |k: PrimKind| a.sites.iter().filter(|s| s.kind == k).count();
    // The workspace is saturated with primitives; these floors catch a
    // scanner regression that silently drops a whole class of sites.
    assert!(
        count(PrimKind::Fork) >= 50,
        "forks: {}",
        count(PrimKind::Fork)
    );
    assert!(
        count(PrimKind::Wait) >= 10,
        "waits: {}",
        count(PrimKind::Wait)
    );
    assert!(
        count(PrimKind::Notify) >= 10,
        "notifies: {}",
        count(PrimKind::Notify)
    );
    assert!(
        count(PrimKind::Enter) >= 20,
        "enters: {}",
        count(PrimKind::Enter)
    );
    assert!(
        count(PrimKind::MonitorNew) >= 10,
        "monitors: {}",
        count(PrimKind::MonitorNew)
    );
}
