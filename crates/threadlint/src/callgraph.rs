//! Workspace-wide call graph over the structural scan.
//!
//! The per-file lints stop at `fn` boundaries on purpose; the
//! interprocedural lockset analysis ([`crate::lockset`]) needs to know
//! who calls whom. This module builds that graph from the hand-rolled
//! scanner's output, with deliberately conservative name resolution:
//!
//! * **Nodes** are function-like bodies: every `fn` definition and
//!   every closure body. Closures are the paper's §4.4 "fork to avoid
//!   deadlock" escape hatch — a closure runs on a *new* activation
//!   (forked thread, deferred callback), so it never inherits its
//!   lexical creator's lockset and is never the target of a named
//!   call. It still *originates* calls and acquisitions of its own.
//! * **Edges** resolve a callee identifier to a unique workspace
//!   definition, preferring same-file, then same-crate, then a unique
//!   global match. Ambiguity (two defs with the same name in the
//!   winning tier) or a name on the common-trait deny list produces no
//!   edge — a missing edge only loses findings, never invents them.
//! * Thread primitives (`fork*`, `enter`, `wait`, …) are census
//!   territory, not call-graph edges.

use std::collections::BTreeMap;

use crate::scan::{normalize_arg, BlockKind};
use crate::{FileScan, PrimKind};

/// Method/function names too generic to resolve by name alone: nearly
/// every type in the workspace defines these, so a textual match says
/// nothing about which body actually runs.
const DENY: &[&str] = &[
    "new",
    "default",
    "clone",
    "drop",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "from",
    "into",
    "try_from",
    "index",
    "deref",
    "next",
    "len",
    "is_empty",
    "to_string",
    "get",
    "insert",
    "remove",
    "push",
    "pop",
    "run",
    "build",
    "name",
    "tag",
];

/// What kind of body a node is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// A named `fn` definition, with its parameter names in order
    /// (receiver params like `&mut self` are kept as `self`).
    Fn {
        /// The function name as written.
        name: String,
        /// Parameter names, in declaration order.
        params: Vec<String>,
    },
    /// A closure body — anonymous, never a call target.
    Closure,
}

/// One function-like body in the workspace.
#[derive(Clone, Debug)]
pub struct Node {
    /// Index into the analysis' file list.
    pub file: usize,
    /// Index of the body block in that file's scan.
    pub block: usize,
    /// 1-based line of the body's opening brace (closures) or of the
    /// definition (fns).
    pub line: usize,
    /// Fn-vs-closure classification.
    pub kind: NodeKind,
}

impl Node {
    /// Display name: the fn name, or `closure@LINE`.
    pub fn label(&self) -> String {
        match &self.kind {
            NodeKind::Fn { name, .. } => name.clone(),
            NodeKind::Closure => format!("closure@{}", self.line),
        }
    }

    /// Parameter names for fns, empty for closures.
    pub fn params(&self) -> &[String] {
        match &self.kind {
            NodeKind::Fn { params, .. } => params,
            NodeKind::Closure => &[],
        }
    }
}

/// One resolved call edge.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Calling node (index into [`CallGraph::nodes`]).
    pub caller: usize,
    /// Called node.
    pub callee: usize,
    /// File the call site lives in (== the caller's file).
    pub file: usize,
    /// Byte offset of the call site.
    pub off: usize,
    /// 1-based line of the call site.
    pub line: usize,
    /// Call arguments, normalized ([`normalize_arg`]) in position
    /// order — the lockset pass maps these onto the callee's params.
    pub args: Vec<String>,
}

/// The workspace call graph.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// Every function-like body, in (file, block) order.
    pub nodes: Vec<Node>,
    /// Every resolved call edge, in deterministic order.
    pub edges: Vec<Edge>,
    /// Outgoing edge indices per caller node.
    pub out: BTreeMap<usize, Vec<usize>>,
}

impl CallGraph {
    /// The node owning the innermost fn/closure body around `off` in
    /// file `fi`, if any.
    pub fn node_at(&self, files: &[FileScan], fi: usize, off: usize) -> Option<usize> {
        let block = files[fi].scan.body_of(off)?;
        self.nodes
            .iter()
            .position(|n| n.file == fi && n.block == block)
    }
}

/// Splits a parameter list at top-level commas, tracking `<>` depth as
/// well as brackets so `BTreeMap<String, String>` stays one parameter.
fn split_params(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in text.chars() {
        match c {
            '(' | '[' | '{' | '<' => depth += 1,
            ')' | ']' | '}' | '>' => depth -= 1,
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
                continue;
            }
            _ => {}
        }
        cur.push(c);
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

/// Parameter *names* from a def-site parameter list: `m: &Monitor<u32>`
/// → `m`; `&mut self` → `self`; patterns that aren't plain identifiers
/// come back as written (they will simply never match an argument).
fn param_names(args_text: &str) -> Vec<String> {
    split_params(args_text)
        .iter()
        .map(|p| {
            let name = p.split(':').next().unwrap_or(p).trim();
            let name = name.trim_start_matches('&').trim();
            let name = name.strip_prefix("mut ").unwrap_or(name).trim();
            name.to_string()
        })
        .collect()
}

/// Builds the call graph over all analyzed files.
pub fn build(files: &[FileScan]) -> CallGraph {
    let mut g = CallGraph::default();

    // Pass 1: nodes. Fn blocks pair with their def-site call entry (the
    // scanner records `fn name(params)` headers as `is_def` calls);
    // closure blocks become anonymous nodes.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        for (bi, b) in f.scan.blocks.iter().enumerate() {
            match b.kind {
                BlockKind::Fn => {
                    let Some(sig) = b.sig else { continue };
                    let Some(def) = f
                        .scan
                        .calls
                        .iter()
                        .find(|c| c.is_def && c.off > sig && c.off < b.start)
                    else {
                        continue;
                    };
                    let params = param_names(&f.clean.text[def.args_start..def.args_end]);
                    g.nodes.push(Node {
                        file: fi,
                        block: bi,
                        line: def.line,
                        kind: NodeKind::Fn {
                            name: def.callee.clone(),
                            params,
                        },
                    });
                }
                BlockKind::Closure => {
                    g.nodes.push(Node {
                        file: fi,
                        block: bi,
                        line: f.clean.line_of(b.start),
                        kind: NodeKind::Closure,
                    });
                }
                _ => {}
            }
        }
    }
    for (ni, n) in g.nodes.iter().enumerate() {
        if let NodeKind::Fn { name, .. } = &n.kind {
            by_name.entry(name.as_str()).or_default().push(ni);
        }
    }

    // Pass 2: edges. Resolve each non-primitive call to a unique def,
    // tiered same-file > same-crate > unique-global.
    for (fi, f) in files.iter().enumerate() {
        for c in &f.scan.calls {
            // Blocking primitives and `work` are runtime leaves: an
            // edge into e.g. pcr's own `fn work` implementation would
            // carry every caller's lockset into the scheduler's guts.
            if c.is_def
                || PrimKind::of_callee(&c.callee).is_some()
                || crate::lockset::is_blocking(&c.callee)
                || c.callee == "work"
                || DENY.contains(&c.callee.as_str())
            {
                continue;
            }
            let Some(cands) = by_name.get(c.callee.as_str()) else {
                continue;
            };
            let Some(caller) = g.node_at(files, fi, c.off) else {
                continue;
            };
            let unique = |pool: Vec<&usize>| (pool.len() == 1).then(|| *pool[0]);
            let same_file: Vec<&usize> = cands.iter().filter(|&&d| g.nodes[d].file == fi).collect();
            let same_crate: Vec<&usize> = cands
                .iter()
                .filter(|&&d| files[g.nodes[d].file].krate == f.krate)
                .collect();
            let callee = if !same_file.is_empty() {
                unique(same_file)
            } else if !same_crate.is_empty() {
                unique(same_crate)
            } else {
                unique(cands.iter().collect())
            };
            let Some(callee) = callee else { continue };
            let args: Vec<String> =
                crate::scan::split_args(&f.clean.text[c.args_start..c.args_end])
                    .iter()
                    .map(|a| normalize_arg(a))
                    .collect();
            // Every monitor-touching fn in this codebase threads an
            // explicit `ctx: &ThreadCtx`. A call that does not pass
            // `ctx` where the def expects it first is a name collision
            // (e.g. `VecDeque::drain` hitting a local `fn drain`), not
            // a real edge.
            let params = g.nodes[callee].params();
            let skip = usize::from(params.first().map(String::as_str) == Some("self"));
            if params.get(skip).map(String::as_str) == Some("ctx")
                && args.first().map(String::as_str) != Some("ctx")
            {
                continue;
            }
            g.edges.push(Edge {
                caller,
                callee,
                file: fi,
                off: c.off,
                line: c.line,
                args,
            });
        }
    }
    for (ei, e) in g.edges.iter().enumerate() {
        g.out.entry(e.caller).or_default().push(ei);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_str;

    fn graph_of(srcs: &[(&str, &str, &str)]) -> (Vec<FileScan>, CallGraph) {
        let files: Vec<FileScan> = srcs.iter().map(|(k, p, s)| analyze_str(k, p, s)).collect();
        let g = build(&files);
        (files, g)
    }

    fn node_labels(g: &CallGraph) -> Vec<String> {
        g.nodes.iter().map(|n| n.label()).collect()
    }

    #[test]
    fn fns_and_closures_become_nodes() {
        let (_, g) = graph_of(&[(
            "t",
            "t.rs",
            "fn outer(ctx: &ThreadCtx) { let c = move |ctx| { inner(ctx); }; }\nfn inner(ctx: &ThreadCtx) {}",
        )]);
        let labels = node_labels(&g);
        assert!(labels.contains(&"outer".to_string()), "{labels:?}");
        assert!(labels.contains(&"inner".to_string()), "{labels:?}");
        assert!(
            labels.iter().any(|l| l.starts_with("closure@")),
            "{labels:?}"
        );
    }

    #[test]
    fn same_file_call_resolves_and_records_args() {
        let (_, g) = graph_of(&[(
            "t",
            "t.rs",
            "fn caller(ctx: &ThreadCtx, m: &Monitor<u32>) { helper(ctx, &m); }\n\
             fn helper(ctx: &ThreadCtx, x: &Monitor<u32>) {}",
        )]);
        assert_eq!(g.edges.len(), 1);
        let e = &g.edges[0];
        assert_eq!(g.nodes[e.caller].label(), "caller");
        assert_eq!(g.nodes[e.callee].label(), "helper");
        assert_eq!(e.args, vec!["ctx", "m"]);
        assert_eq!(g.nodes[e.callee].params(), ["ctx", "x"]);
    }

    #[test]
    fn calls_inside_closures_attribute_to_the_closure_node() {
        let (_, g) = graph_of(&[(
            "t",
            "t.rs",
            "fn outer(ctx: &ThreadCtx) { fork(ctx, move |ctx| { inner(ctx); }); }\nfn inner(ctx: &ThreadCtx) {}",
        )]);
        assert_eq!(g.edges.len(), 1);
        let caller = &g.nodes[g.edges[0].caller];
        assert_eq!(caller.kind, NodeKind::Closure);
    }

    #[test]
    fn ambiguous_cross_crate_names_produce_no_edge() {
        let (_, g) = graph_of(&[
            ("a", "crates/a/src/lib.rs", "fn helper() {}"),
            ("b", "crates/b/src/lib.rs", "fn helper() {}"),
            ("c", "crates/c/src/lib.rs", "fn caller() { helper(); }"),
        ]);
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn same_crate_beats_other_crate() {
        let (files, g) = graph_of(&[
            ("a", "crates/a/src/lib.rs", "fn helper() {}"),
            ("b", "crates/b/src/one.rs", "fn helper() {}"),
            ("b", "crates/b/src/two.rs", "fn caller() { helper(); }"),
        ]);
        assert_eq!(g.edges.len(), 1);
        let callee = &g.nodes[g.edges[0].callee];
        assert_eq!(files[callee.file].krate, "b");
    }

    #[test]
    fn deny_listed_and_primitive_names_are_skipped() {
        let (_, g) = graph_of(&[(
            "t",
            "t.rs",
            "fn new() {}\nfn wait() {}\nfn caller(ctx: &ThreadCtx) { new(); ctx.wait(cv); }",
        )]);
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn generic_params_with_commas_keep_positions() {
        assert_eq!(
            param_names("ctx: &ThreadCtx, map: &BTreeMap<String, u32>, m: &Monitor<u32>"),
            vec!["ctx", "map", "m"]
        );
        assert_eq!(param_names("&mut self, cv: &Condition"), vec!["self", "cv"]);
    }
}
