//! Report rendering: the Table-4-style self-census, the findings
//! table, the JSON export, and the inventory cross-check.
//!
//! The paper's Table 4 classified ~650 fork sites found by a static
//! sweep of 2.5 MLoC. Here the sweep runs over this workspace's own
//! sources, and the cross-check closes the loop: every `modeled` site
//! in the hand-transcribed `core::inventory` catalog must be traceable
//! to a real fork call site in the code that claims to model it.

use std::collections::{BTreeMap, BTreeSet};

use trace::{Json, Table};

use crate::{Analysis, PrimKind};

/// Renders the self-census as a Table-4-style per-crate table: one row
/// per crate, one column per primitive kind, plus totals.
pub fn census_table(a: &Analysis) -> Table {
    let mut per_crate: BTreeMap<&str, BTreeMap<PrimKind, usize>> = BTreeMap::new();
    for s in &a.sites {
        *per_crate
            .entry(s.krate.as_str())
            .or_default()
            .entry(s.kind)
            .or_insert(0) += 1;
    }
    let mut headers = vec!["Crate"];
    headers.extend(PrimKind::ALL.iter().map(|k| k.label()));
    headers.push("Total");
    let mut t = Table::new(
        "Thread-primitive call sites by crate (self-census, cf. Table 4)",
        &headers,
    );
    let mut totals: BTreeMap<PrimKind, usize> = BTreeMap::new();
    for (krate, counts) in &per_crate {
        let mut row = vec![krate.to_string()];
        let mut sum = 0usize;
        for k in PrimKind::ALL {
            let n = counts.get(&k).copied().unwrap_or(0);
            *totals.entry(k).or_insert(0) += n;
            sum += n;
            row.push(n.to_string());
        }
        row.push(sum.to_string());
        t.row(row);
    }
    let mut row = vec!["total".to_string()];
    let mut sum = 0usize;
    for k in PrimKind::ALL {
        let n = totals.get(&k).copied().unwrap_or(0);
        sum += n;
        row.push(n.to_string());
    }
    row.push(sum.to_string());
    t.row(row);
    t
}

/// Renders the findings as a table: lint, location, status, message.
pub fn findings_table(a: &Analysis) -> Table {
    let mut t = Table::new(
        "Discipline findings",
        &["Lint", "§", "Site", "Status", "Message"],
    )
    .with_aligns(&[trace::Align::Left; 5]);
    for f in &a.findings {
        t.row(vec![
            f.lint.name().to_string(),
            f.lint.paper_section().trim_start_matches('§').to_string(),
            format!("{}:{}", f.file, f.line),
            if f.allowed { "allowed" } else { "FAIL" }.to_string(),
            f.message.clone(),
        ]);
    }
    t
}

/// Exports the analysis as a JSON document: census sites, per-crate
/// counts, findings, and summary totals — the machine-readable artifact
/// `repro lint --json` writes and CI uploads.
pub fn to_json(a: &Analysis) -> Json {
    let sites = Json::arr(a.sites.iter().map(|s| {
        Json::obj([
            ("kind", Json::from(s.kind.label())),
            ("callee", Json::from(s.callee.as_str())),
            ("crate", Json::from(s.krate.as_str())),
            ("file", Json::from(s.file.as_str())),
            ("line", Json::from(s.line)),
            ("name", Json::from(s.name_literal.clone())),
        ])
    }));
    let findings = Json::arr(a.findings.iter().map(|f| {
        Json::obj([
            ("lint", Json::from(f.lint.name())),
            ("section", Json::from(f.lint.paper_section())),
            ("crate", Json::from(f.krate.as_str())),
            ("file", Json::from(f.file.as_str())),
            ("line", Json::from(f.line)),
            ("allowed", Json::from(f.allowed)),
            ("message", Json::from(f.message.as_str())),
            ("monitors", Json::from(f.monitors.clone())),
            ("thread", Json::from(f.thread.clone())),
        ])
    }));
    let unallowed = a.unallowed().count();
    Json::obj([
        ("tool", Json::from("threadlint")),
        ("files", Json::from(a.files.len())),
        ("sites", sites),
        ("findings", findings),
        (
            "summary",
            Json::obj([
                ("site_count", Json::from(a.sites.len())),
                ("finding_count", Json::from(a.findings.len())),
                ("unallowed_count", Json::from(unallowed)),
                ("ok", Json::from(unallowed == 0)),
            ]),
        ),
    ])
}

/// Replaces digit runs with `#` so baseline keys survive line-number
/// churn inside messages.
fn squash_digits(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut in_digits = false;
    for c in s.chars() {
        if c.is_ascii_digit() {
            if !in_digits {
                out.push('#');
            }
            in_digits = true;
        } else {
            in_digits = false;
            out.push(c);
        }
    }
    out
}

/// The stable identity of a finding for the `ci/lint-baseline.json`
/// ratchet: lint, file, and the digit-squashed message (line numbers
/// move on every edit; the *shape* of a finding does not).
pub fn baseline_key(f: &crate::Finding) -> String {
    format!("{}|{}|{}", f.lint.name(), f.file, squash_digits(&f.message))
}

/// Exports the findings as a SARIF 2.1.0 document (one run, one rule
/// per lint). Allowed findings carry an `inSource` suppression and
/// level `note`; unallowed ones are `warning` — CI viewers render the
/// distinction natively.
pub fn to_sarif(a: &Analysis) -> Json {
    let rules = Json::arr(crate::Lint::ALL.iter().map(|l| {
        Json::obj([
            ("id", Json::from(l.name())),
            (
                "shortDescription",
                Json::obj([(
                    "text",
                    Json::from(format!("{} (paper {})", l.name(), l.paper_section())),
                )]),
            ),
        ])
    }));
    let results = Json::arr(a.findings.iter().map(|f| {
        let location = Json::obj([(
            "physicalLocation",
            Json::obj([
                (
                    "artifactLocation",
                    Json::obj([("uri", Json::from(f.file.as_str()))]),
                ),
                ("region", Json::obj([("startLine", Json::from(f.line))])),
            ]),
        )]);
        let mut r = Json::obj([
            ("ruleId", Json::from(f.lint.name())),
            (
                "level",
                Json::from(if f.allowed { "note" } else { "warning" }),
            ),
            (
                "message",
                Json::obj([("text", Json::from(f.message.as_str()))]),
            ),
            ("locations", Json::arr([location])),
        ]);
        if f.allowed {
            r.push(
                "suppressions",
                Json::arr([Json::obj([("kind", Json::from("inSource"))])]),
            );
        }
        r
    }));
    Json::obj([
        (
            "$schema",
            Json::from("https://json.schemastore.org/sarif-2.1.0.json"),
        ),
        ("version", Json::from("2.1.0")),
        (
            "runs",
            Json::arr([Json::obj([
                (
                    "tool",
                    Json::obj([(
                        "driver",
                        Json::obj([("name", Json::from("threadlint")), ("rules", rules)]),
                    )]),
                ),
                ("results", results),
            ])]),
        ),
    ])
}

/// Rewrites `{…}` interpolation groups to `#`, the same shape
/// [`squash_digits`] gives runtime instance numbers: the static
/// literal `window-{w}.damage` and the runtime name `window-3.damage`
/// both land on `window-#.damage`.
fn braces_to_hash(lit: &str) -> String {
    let mut out = String::with_capacity(lit.len());
    let mut in_brace = false;
    for c in lit.chars() {
        match c {
            '{' if !in_brace => {
                in_brace = true;
                out.push('#');
            }
            '}' if in_brace => in_brace = false,
            _ if !in_brace => out.push(c),
            _ => {}
        }
    }
    out
}

/// Maps static monitor binding names to the runtime name literals they
/// were created with: `let screen = sim.monitor("gvx-screen", …)` maps
/// `screen` → `gvx-screen`, and the clone alias `screen_poller` maps
/// there too. Interpolated literals are normalized with `#` in place
/// of `{…}` groups so they compare against digit-squashed runtime
/// names. This is the static half of `repro lint --confirm`'s join.
pub fn monitor_literals(a: &Analysis) -> BTreeMap<String, BTreeSet<String>> {
    let mut map: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in &a.files {
        let mut local: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for c in
            f.scan.calls.iter().filter(|c| {
                !c.is_def && PrimKind::of_callee(&c.callee) == Some(PrimKind::MonitorNew)
            })
        {
            let Some(lit) = f
                .clean
                .strings
                .iter()
                .find(|s| s.offset >= c.args_start && s.offset < c.args_end)
            else {
                continue;
            };
            let Some(name) = crate::lints::cv_binding_name(f, c) else {
                continue;
            };
            local
                .entry(name)
                .or_default()
                .insert(squash_digits(&braces_to_hash(&lit.value)));
        }
        let aliases = crate::lints::alias_map(f);
        for (k, root) in &aliases {
            if let Some(lits) = local.get(root).cloned() {
                local.entry(k.clone()).or_default().extend(lits);
            }
        }
        for (k, v) in local {
            map.entry(k).or_default().extend(v);
        }
    }
    map
}

/// Cross-checks the hand-transcribed inventory against the census:
/// returns every `modeled` site name that could **not** be traced to a
/// real fork call site. A name maps when it appears as a string literal
/// in a file that itself contains at least one FORK call site — this
/// covers both direct `fork_prio("Cedar.X", …)` literals and sleeper
/// specs whose names are forked indirectly through `SleeperBus`.
pub fn census_unmapped(modeled: &[String], a: &Analysis) -> Vec<String> {
    let fork_files: BTreeSet<&str> = a
        .sites
        .iter()
        .filter(|s| s.kind == PrimKind::Fork)
        .map(|s| s.file.as_str())
        .collect();
    let mut literals: BTreeSet<&str> = BTreeSet::new();
    for f in &a.files {
        if !fork_files.contains(f.path.as_str()) {
            continue;
        }
        for s in &f.clean.strings {
            literals.insert(s.value.as_str());
        }
    }
    modeled
        .iter()
        .filter(|name| !literals.contains(name.as_str()))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_str, lints, Analysis};

    fn analysis_of(files: Vec<(&str, &str, &str)>) -> Analysis {
        let files: Vec<_> = files
            .into_iter()
            .map(|(k, p, s)| analyze_str(k, p, s))
            .collect();
        let sites = crate::collect_census(&files);
        let findings = lints::run_all(&files);
        Analysis {
            files,
            sites,
            findings,
        }
    }

    #[test]
    fn census_table_counts_per_crate() {
        let a = analysis_of(vec![
            (
                "w",
                "crates/w/src/a.rs",
                "fn f(ctx: &ThreadCtx) { let h = ctx.fork(\"W.A\", b); let g = ctx.enter(m); }",
            ),
            (
                "x",
                "crates/x/src/b.rs",
                "fn f(g: &mut MonitorGuard<'_, u32>, cv: &Condition) { g.notify(cv); }",
            ),
        ]);
        let t = census_table(&a);
        let text = t.to_text();
        assert!(text.contains("FORK"), "{text}");
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.last().unwrap().starts_with("total"), "{text}");
        assert_eq!(a.sites.len(), 3);
    }

    #[test]
    fn json_summary_reflects_findings() {
        let a = analysis_of(vec![(
            "w",
            "crates/w/src/a.rs",
            "fn f(ctx: &ThreadCtx) { let _ = ctx.fork(n, b); }",
        )]);
        let j = to_json(&a).to_string();
        assert!(j.contains("\"unallowed_count\":1"), "{j}");
        assert!(j.contains("\"ok\":false"), "{j}");
        assert!(j.contains("fork-result-discarded"), "{j}");
    }

    #[test]
    fn unmapped_names_are_reported() {
        let a = analysis_of(vec![(
            "w",
            "crates/w/src/a.rs",
            "fn f(ctx: &ThreadCtx) { let h = ctx.fork(\"W.Real\", b); }",
        )]);
        let modeled = vec!["W.Real".to_string(), "W.Ghost".to_string()];
        assert_eq!(census_unmapped(&modeled, &a), vec!["W.Ghost".to_string()]);
    }

    #[test]
    fn literal_in_forkless_file_does_not_map() {
        let a = analysis_of(vec![(
            "w",
            "crates/w/src/a.rs",
            "fn f() { let s = \"W.NameOnly\"; }",
        )]);
        let modeled = vec!["W.NameOnly".to_string()];
        assert_eq!(census_unmapped(&modeled, &a), modeled);
    }

    #[test]
    fn findings_table_marks_status() {
        let a = analysis_of(vec![(
            "w",
            "crates/w/src/a.rs",
            "fn f(ctx: &ThreadCtx) {\n\
             // threadlint: allow(fork-result-discarded)\n\
             let _ = ctx.fork(n, b);\n}",
        )]);
        let text = findings_table(&a).to_text();
        assert!(text.contains("allowed"), "{text}");
        assert!(!text.contains("FAIL"), "{text}");
    }
}
