//! Interprocedural lockset analysis: a context-insensitive fixpoint
//! that propagates held-monitor sets through the call graph.
//!
//! The paper's worst mistakes are lock-discipline violations *across*
//! call chains: §4.4's fork-to-avoid-deadlock exists precisely because
//! a callee re-acquiring its caller's monitor deadlocks, §5.3's "WAIT
//! releases only the innermost monitor" bites when the outer monitor
//! was entered three frames up, and §6.1's lock-holder stalls are
//! usually a helper function blocking while a caller holds the lock.
//! The per-file lints cannot see any of this; this module can.
//!
//! Three summaries are computed over [`crate::callgraph::CallGraph`]:
//!
//! * **entry locksets** — for each `fn`, the union over all call sites
//!   of the monitors the caller holds at that site (forward-renamed
//!   through argument→parameter positions), iterated to fixpoint;
//! * **transitive acquisitions** — for each `fn`, every monitor it or
//!   any callee may enter (parameter names renamed back to the
//!   caller's arguments), with a witness call path;
//! * **transitive lock-order edges** — `held → acquired` pairs
//!   composed through calls, feeding a global cycle search.
//!
//! Three lints come out: `lock-order-cycle-transitive` (a cycle with
//! at least one edge crossing a call — purely local cycles stay the
//! per-file lint's territory), `wait-with-outer-monitor` (a `wait`
//! reachable with ≥ 2 monitors in the lockset), and
//! `blocking-call-in-monitor` (fork/join/sleep/long-work reached while
//! holding a monitor). Closures are the §4.4 new-thread escape: they
//! inherit **no** lockset from their lexical creator (and so suppress
//! exactly the idiom the paper recommends), but their own acquisitions
//! and outgoing calls are analyzed.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{self, CallGraph, Edge};
use crate::lints::{alias_map, enclosing_fork_name, resolve, Finding};
use crate::scan::{last_segment, normalize_arg, split_args};
use crate::{FileScan, Lint};

/// Callees that block or stall the calling thread: `join` (unbounded)
/// and the sleeps — the §6.1 lock-holder-stall sources. Two deliberate
/// absences: fork, because forking while holding a monitor is the
/// §4.4 *remedy* idiom and fork returns immediately; and `work`,
/// because bounded CPU work inside a critical section is what critical
/// sections are for (§3 pricing, not a §6.1 pathology).
pub(crate) fn is_blocking(callee: &str) -> bool {
    matches!(callee, "join" | "sleep" | "sleep_precise")
}

/// One step of a witness call path: a call site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteRef {
    /// Workspace-relative file of the call site.
    pub file: String,
    /// 1-based line of the call site.
    pub line: usize,
    /// The callee name at that site.
    pub callee: String,
}

impl SiteRef {
    fn of(files: &[FileScan], e: &Edge, g: &CallGraph) -> SiteRef {
        SiteRef {
            file: files[e.file].path.clone(),
            line: e.line,
            callee: g.nodes[e.callee].label(),
        }
    }

    fn render(path: &[SiteRef]) -> String {
        path.iter()
            .map(|s| format!("{}:{} calls {}", s.file, s.line, s.callee))
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// One transitively reachable acquisition, with its witness.
#[derive(Clone, Debug)]
struct Acq {
    /// Call path from the summarized fn to the acquiring fn.
    via: Vec<SiteRef>,
    /// File index of the actual `enter`.
    enter_file: usize,
    /// 1-based line of the actual `enter`.
    enter_line: usize,
}

/// Per-node local facts, in source order.
#[derive(Default)]
struct Locals {
    /// `enter` sites: (monitor, line, monitors held just before).
    enters: Vec<(String, usize, Vec<String>)>,
    /// `wait` sites: (cv name, line, offset, monitors held locally).
    waits: Vec<(String, usize, usize, Vec<String>)>,
    /// Blocking call sites: (callee, line, offset, monitors held).
    blocking: Vec<(String, usize, usize, Vec<String>)>,
}

/// The computed interprocedural state, exposed for tests and tooling.
pub struct Lockset {
    /// Per-node inherited locksets (caller-held monitors, renamed into
    /// the callee's namespace).
    pub entry: Vec<BTreeSet<String>>,
    /// Witness call chain for each inherited monitor.
    pub entry_via: Vec<BTreeMap<String, Vec<SiteRef>>>,
}

/// Forward argument→parameter renaming at a call edge: the monitor the
/// caller calls `m` is the callee's `x` when `&m` is passed in `x`'s
/// position.
fn map_forward(held: &str, e: &Edge, g: &CallGraph) -> String {
    let params = g.nodes[e.callee].params();
    let skip = usize::from(params.first().map(String::as_str) == Some("self"));
    if let Some(k) = e.args.iter().position(|a| a == held) {
        if let Some(p) = params.get(k + skip) {
            if is_plain_ident(p) {
                return p.clone();
            }
        }
    }
    held.to_string()
}

/// Backward parameter→argument renaming: a monitor the callee knows as
/// its parameter `x` is, at this call site, whatever was passed there.
fn map_back(monitor: &str, e: &Edge, g: &CallGraph) -> String {
    let params = g.nodes[e.callee].params();
    let skip = usize::from(params.first().map(String::as_str) == Some("self"));
    if let Some(k) = params.iter().skip(skip).position(|p| p == monitor) {
        if let Some(a) = e.args.get(k) {
            if !a.is_empty() {
                return a.clone();
            }
        }
    }
    monitor.to_string()
}

fn is_plain_ident(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_alphanumeric() || c == '_')
}

/// Computes per-node local facts: enters, waits, and blocking calls
/// with the locally held (alias-resolved) monitor sets.
fn locals(files: &[FileScan], g: &CallGraph) -> Vec<Locals> {
    let aliases: Vec<_> = files.iter().map(alias_map).collect();
    let mut out: Vec<Locals> = (0..g.nodes.len()).map(|_| Locals::default()).collect();
    for (ni, n) in g.nodes.iter().enumerate() {
        let f = &files[n.file];
        let al = &aliases[n.file];
        for c in &f.scan.calls {
            if c.is_def || f.scan.body_of(c.off) != Some(n.block) {
                continue;
            }
            let held: Vec<String> = f
                .scan
                .guards_at(c.off)
                .iter()
                .filter(|gd| !gd.monitor.is_empty())
                .map(|gd| resolve(&gd.monitor, al).to_string())
                .collect();
            match c.callee.as_str() {
                "enter" => {
                    let args = split_args(&f.clean.text[c.args_start..c.args_end]);
                    let Some(m) = args.iter().find(|a| normalize_arg(a) != "ctx") else {
                        continue;
                    };
                    let m = resolve(&normalize_arg(m), al).to_string();
                    if !m.is_empty() {
                        out[ni].enters.push((m, c.line, held));
                    }
                }
                "wait" => {
                    let args = split_args(&f.clean.text[c.args_start..c.args_end]);
                    let cv = args.first().map(|a| last_segment(a)).unwrap_or_default();
                    out[ni].waits.push((cv, c.line, c.off, held));
                }
                callee if is_blocking(callee) => {
                    out[ni]
                        .blocking
                        .push((callee.to_string(), c.line, c.off, held));
                }
                _ => {}
            }
        }
    }
    out
}

/// Monitors held by the caller at a call edge, alias-resolved.
fn held_at(files: &[FileScan], aliases: &[BTreeMap<String, String>], e: &Edge) -> Vec<String> {
    files[e.file]
        .scan
        .guards_at(e.off)
        .iter()
        .filter(|gd| !gd.monitor.is_empty())
        .map(|gd| resolve(&gd.monitor, &aliases[e.file]).to_string())
        .collect()
}

/// Runs the entry-lockset fixpoint.
pub fn compute(files: &[FileScan], g: &CallGraph) -> Lockset {
    let aliases: Vec<_> = files.iter().map(alias_map).collect();
    let mut entry: Vec<BTreeSet<String>> = vec![BTreeSet::new(); g.nodes.len()];
    let mut entry_via: Vec<BTreeMap<String, Vec<SiteRef>>> = vec![BTreeMap::new(); g.nodes.len()];
    loop {
        let mut changed = false;
        for e in &g.edges {
            let site = SiteRef::of(files, e, g);
            let mut incoming: Vec<(String, Vec<SiteRef>)> = Vec::new();
            for h in entry[e.caller].clone() {
                let mut chain = entry_via[e.caller].get(&h).cloned().unwrap_or_default();
                if chain.len() >= 6 {
                    continue;
                }
                chain.push(site.clone());
                incoming.push((map_forward(&h, e, g), chain));
            }
            for h in held_at(files, &aliases, e) {
                incoming.push((map_forward(&h, e, g), vec![site.clone()]));
            }
            for (m, chain) in incoming {
                if entry[e.callee].insert(m.clone()) {
                    entry_via[e.callee].insert(m, chain);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    Lockset { entry, entry_via }
}

/// Runs the transitive-acquisition fixpoint: per node, every monitor it
/// or a callee may enter, keyed by the caller-namespace name.
fn acquisitions(files: &[FileScan], g: &CallGraph, loc: &[Locals]) -> Vec<BTreeMap<String, Acq>> {
    let mut acq: Vec<BTreeMap<String, Acq>> = (0..g.nodes.len())
        .map(|ni| {
            loc[ni]
                .enters
                .iter()
                .map(|(m, line, _)| {
                    (
                        m.clone(),
                        Acq {
                            via: Vec::new(),
                            enter_file: g.nodes[ni].file,
                            enter_line: *line,
                        },
                    )
                })
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for e in &g.edges {
            let callee_acq: Vec<(String, Acq)> = acq[e.callee]
                .iter()
                .map(|(m, a)| (m.clone(), a.clone()))
                .collect();
            for (m, a) in callee_acq {
                if a.via.len() >= 5 {
                    continue;
                }
                let name = map_back(&m, e, g);
                if acq[e.caller].contains_key(&name) {
                    continue;
                }
                let mut via = vec![SiteRef::of(files, e, g)];
                via.extend(a.via.clone());
                acq[e.caller].insert(
                    name,
                    Acq {
                        via,
                        enter_file: a.enter_file,
                        enter_line: a.enter_line,
                    },
                );
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    acq
}

/// One composed acquisition-order edge.
struct TransEdge {
    from: String,
    to: String,
    via: Vec<SiteRef>,
    enter_file: usize,
    enter_line: usize,
}

impl TransEdge {
    fn crosses_call(&self) -> bool {
        !self.via.is_empty()
    }
}

/// Composes held→acquired edges: locally nested enters plus, at every
/// call made while holding, everything the callee transitively enters.
fn trans_edges(
    files: &[FileScan],
    g: &CallGraph,
    loc: &[Locals],
    acq: &[BTreeMap<String, Acq>],
) -> Vec<TransEdge> {
    let aliases: Vec<_> = files.iter().map(alias_map).collect();
    let mut edges: Vec<TransEdge> = Vec::new();
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    for (ni, n) in g.nodes.iter().enumerate() {
        for (m, line, held) in &loc[ni].enters {
            for h in held {
                if seen.insert((h.clone(), m.clone())) {
                    edges.push(TransEdge {
                        from: h.clone(),
                        to: m.clone(),
                        via: Vec::new(),
                        enter_file: n.file,
                        enter_line: *line,
                    });
                }
            }
        }
    }
    for e in &g.edges {
        let held = held_at(files, &aliases, e);
        if held.is_empty() {
            continue;
        }
        for (m, a) in &acq[e.callee] {
            let to = map_back(m, e, g);
            let mut via = vec![SiteRef::of(files, e, g)];
            via.extend(a.via.clone());
            // Self-edges included: a callee re-entering the caller's
            // held monitor is the §4.4 self-deadlock, a 1-cycle.
            for h in &held {
                if !seen.insert((h.clone(), to.clone())) {
                    continue;
                }
                edges.push(TransEdge {
                    from: h.clone(),
                    to: to.clone(),
                    via: via.clone(),
                    enter_file: a.enter_file,
                    enter_line: a.enter_line,
                });
            }
        }
    }
    edges
}

/// Runs the three interprocedural lints, appending findings.
pub fn run(files: &[FileScan], findings: &mut Vec<Finding>) {
    let g = callgraph::build(files);
    let loc = locals(files, &g);
    let ls = compute(files, &g);
    let acq = acquisitions(files, &g, &loc);

    cycles(files, &g, &loc, &acq, findings);

    for (ni, n) in g.nodes.iter().enumerate() {
        let f = &files[n.file];
        let inherited = &ls.entry[ni];
        for (cv, line, off, held) in &loc[ni].waits {
            let mut total: BTreeSet<String> = held.iter().cloned().collect();
            total.extend(inherited.iter().cloned());
            if total.len() < 2 {
                continue;
            }
            let monitors: Vec<String> = total.into_iter().collect();
            findings.push(Finding {
                lint: Lint::WaitWithOuterMonitor,
                krate: f.krate.clone(),
                file: f.path.clone(),
                line: *line,
                message: format!(
                    "WAIT on `{cv}` reachable with {} monitors held ({}): WAIT releases only \
                     the innermost, so the outer monitors stay locked across the sleep (§5.3){}",
                    monitors.len(),
                    monitors.join(", "),
                    inherited_note(inherited, held, &ls.entry_via[ni]),
                ),
                allowed: f.clean.is_allowed(Lint::WaitWithOuterMonitor.name(), *line),
                monitors,
                thread: enclosing_fork_name(f, *off),
            });
        }
        for (callee, line, off, held) in &loc[ni].blocking {
            let mut total: BTreeSet<String> = held.iter().cloned().collect();
            total.extend(inherited.iter().cloned());
            if total.is_empty() {
                continue;
            }
            let monitors: Vec<String> = total.into_iter().collect();
            findings.push(Finding {
                lint: Lint::BlockingCallInMonitor,
                krate: f.krate.clone(),
                file: f.path.clone(),
                line: *line,
                message: format!(
                    "blocking call `{callee}` reached while holding {}: a lock-holder stall \
                     starves every thread queued on the monitor (§6.1){}",
                    monitors.join(", "),
                    inherited_note(inherited, held, &ls.entry_via[ni]),
                ),
                allowed: f
                    .clean
                    .is_allowed(Lint::BlockingCallInMonitor.name(), *line),
                monitors,
                thread: enclosing_fork_name(f, *off),
            });
        }
    }
}

/// Renders the witness chains for monitors held only by inheritance.
fn inherited_note(
    inherited: &BTreeSet<String>,
    local: &[String],
    via: &BTreeMap<String, Vec<SiteRef>>,
) -> String {
    let mut notes: Vec<String> = Vec::new();
    for m in inherited {
        if local.contains(m) {
            continue;
        }
        if let Some(chain) = via.get(m) {
            if !chain.is_empty() {
                notes.push(format!("`{m}` held via {}", SiteRef::render(chain)));
            }
        }
    }
    if notes.is_empty() {
        String::new()
    } else {
        format!("; {}", notes.join("; "))
    }
}

/// Cycle search over the transitive edges; only cycles with at least
/// one call-crossing edge are reported (purely local cycles are the
/// per-file `lock-order-cycle` lint's job, with its per-file node
/// identity that textual name collisions cannot pollute).
fn cycles(
    files: &[FileScan],
    g: &CallGraph,
    loc: &[Locals],
    acq: &[BTreeMap<String, Acq>],
    findings: &mut Vec<Finding>,
) {
    let edges = trans_edges(files, g, loc, acq);
    let mut adj: BTreeMap<&str, Vec<&TransEdge>> = BTreeMap::new();
    for e in &edges {
        adj.entry(e.from.as_str()).or_default().push(e);
    }
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut stack: Vec<(&str, Vec<&TransEdge>)> = vec![(start, Vec::new())];
        while let Some((node, path)) = stack.pop() {
            for &e in adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]) {
                if e.to == start {
                    let mut cycle: Vec<&TransEdge> = path.clone();
                    cycle.push(e);
                    if !cycle.iter().any(|e| e.crosses_call()) {
                        continue;
                    }
                    let mut names: Vec<String> = cycle.iter().map(|e| e.from.clone()).collect();
                    let min = names.iter().min().unwrap().clone();
                    while names[0] != min {
                        names.rotate_left(1);
                    }
                    if !seen.insert(names.clone()) {
                        continue;
                    }
                    let allowed = cycle.iter().all(|e| {
                        files[e.enter_file]
                            .clean
                            .is_allowed(Lint::LockOrderCycleTransitive.name(), e.enter_line)
                    });
                    let anchor = cycle
                        .iter()
                        .map(|e| {
                            (
                                files[e.enter_file].path.as_str(),
                                e.enter_line,
                                e.enter_file,
                            )
                        })
                        .min()
                        .unwrap();
                    let detail = cycle
                        .iter()
                        .map(|e| {
                            let site = format!("{}:{}", files[e.enter_file].path, e.enter_line);
                            if e.via.is_empty() {
                                format!("{} -> {} (enter at {site})", e.from, e.to)
                            } else {
                                format!(
                                    "{} -> {} via {} (enter at {site})",
                                    e.from,
                                    e.to,
                                    SiteRef::render(&e.via)
                                )
                            }
                        })
                        .collect::<Vec<_>>()
                        .join("; ");
                    findings.push(Finding {
                        lint: Lint::LockOrderCycleTransitive,
                        krate: files[anchor.2].krate.clone(),
                        file: anchor.0.to_string(),
                        line: anchor.1,
                        message: format!(
                            "monitor acquisition cycle across call chains: {} -> {} \
                             (ABBA deadlock threaded through helpers, §2.6/§4.4): {detail}",
                            names.join(" -> "),
                            names[0],
                        ),
                        allowed,
                        monitors: names,
                        thread: None,
                    });
                } else if path.len() < 6
                    && !path.iter().any(|p| p.to == e.to)
                    && e.to.as_str() > start
                {
                    let mut p = path.clone();
                    p.push(e);
                    stack.push((e.to.as_str(), p));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_str;
    use crate::lints::run_all;

    fn findings_for(src: &str) -> Vec<Finding> {
        run_all(&[analyze_str("test", "test.rs", src)])
    }

    fn lints_of(fs: &[Finding]) -> Vec<Lint> {
        fs.iter().map(|f| f.lint).collect()
    }

    #[test]
    fn transitive_abba_through_helpers_fires() {
        let fs = findings_for(
            "fn ab(ctx: &ThreadCtx, a: &Monitor<u32>, b: &Monitor<u32>) {\n\
             let ga = ctx.enter(a);\nhelp_b(ctx, b);\n}\n\
             fn help_b(ctx: &ThreadCtx, b: &Monitor<u32>) { let gb = ctx.enter(b); }\n\
             fn ba(ctx: &ThreadCtx, a: &Monitor<u32>, b: &Monitor<u32>) {\n\
             let gb = ctx.enter(b);\nhelp_a(ctx, a);\n}\n\
             fn help_a(ctx: &ThreadCtx, a: &Monitor<u32>) { let ga = ctx.enter(a); }",
        );
        assert!(
            lints_of(&fs).contains(&Lint::LockOrderCycleTransitive),
            "{fs:?}"
        );
        let f = fs
            .iter()
            .find(|f| f.lint == Lint::LockOrderCycleTransitive)
            .unwrap();
        assert!(f.message.contains("via"), "{}", f.message);
        assert_eq!(f.monitors, vec!["a".to_string(), "b".to_string()]);
        // No per-file cycle: neither fn nests both enters locally.
        assert!(!lints_of(&fs).contains(&Lint::LockOrderCycle), "{fs:?}");
    }

    #[test]
    fn param_renaming_links_caller_and_callee_names() {
        // Caller holds `a`, callee enters its param `x` = caller's `b`;
        // reverse order elsewhere. The cycle only exists if `x` maps
        // back to `b` at the call site.
        let fs = findings_for(
            "fn ab(ctx: &ThreadCtx, a: &Monitor<u32>, b: &Monitor<u32>) {\n\
             let ga = ctx.enter(a);\ngrab(ctx, b);\n}\n\
             fn grab(ctx: &ThreadCtx, x: &Monitor<u32>) { let gx = ctx.enter(x); }\n\
             fn ba(ctx: &ThreadCtx, a: &Monitor<u32>, b: &Monitor<u32>) {\n\
             let gb = ctx.enter(b);\ngrab(ctx, a);\n}",
        );
        assert!(
            lints_of(&fs).contains(&Lint::LockOrderCycleTransitive),
            "{fs:?}"
        );
    }

    #[test]
    fn fork_escape_closure_stays_silent() {
        // §4.4: the forked closure acquires on a new thread — no edge,
        // no cycle, nothing inherited.
        let fs = findings_for(
            "fn ab(ctx: &ThreadCtx, a: &Monitor<u32>, b: &Monitor<u32>) {\n\
             let ga = ctx.enter(a);\n\
             fork_to_avoid_deadlock(ctx, nm, move |ctx| { help_b(ctx, b); }).unwrap();\n}\n\
             fn help_b(ctx: &ThreadCtx, b: &Monitor<u32>) { let gb = ctx.enter(b); }\n\
             fn ba(ctx: &ThreadCtx, a: &Monitor<u32>, b: &Monitor<u32>) {\n\
             let gb = ctx.enter(b);\nhelp_a(ctx, a);\n}\n\
             fn help_a(ctx: &ThreadCtx, a: &Monitor<u32>) { let ga = ctx.enter(a); }",
        );
        assert!(
            !lints_of(&fs).contains(&Lint::LockOrderCycleTransitive),
            "{fs:?}"
        );
    }

    #[test]
    fn wait_with_outer_monitor_fires_through_a_call() {
        let fs = findings_for(
            "fn outer(ctx: &ThreadCtx, o: &Monitor<u32>, i: &Monitor<u32>, cv: &Condition) {\n\
             let go = ctx.enter(o);\ninner_wait(ctx, i, cv);\n}\n\
             fn inner_wait(ctx: &ThreadCtx, i: &Monitor<u32>, cv: &Condition) {\n\
             let mut gi = ctx.enter(i);\nloop { gi.wait(cv); }\n}",
        );
        let f = fs
            .iter()
            .find(|f| f.lint == Lint::WaitWithOuterMonitor)
            .expect("fires");
        assert!(f.message.contains("held via"), "{}", f.message);
        assert_eq!(f.monitors, vec!["i".to_string(), "o".to_string()]);
    }

    #[test]
    fn wait_under_single_monitor_is_clean() {
        let fs = findings_for(
            "fn one(ctx: &ThreadCtx, m: &Monitor<u32>, cv: &Condition) {\n\
             let mut g = ctx.enter(m);\nloop { g.wait(cv); }\n}",
        );
        assert!(
            !lints_of(&fs).contains(&Lint::WaitWithOuterMonitor),
            "{fs:?}"
        );
    }

    #[test]
    fn blocking_call_fires_locally_and_through_calls() {
        let fs = findings_for(
            "fn direct(ctx: &ThreadCtx, m: &Monitor<u32>) {\n\
             let g = ctx.enter(m);\nctx.sleep(millis(5));\n}\n\
             fn indirect(ctx: &ThreadCtx, m: &Monitor<u32>) {\n\
             let g = ctx.enter(m);\nslow(ctx);\n}\n\
             fn slow(ctx: &ThreadCtx) { ctx.sleep_precise(millis(20)); }",
        );
        let hits: Vec<&Finding> = fs
            .iter()
            .filter(|f| f.lint == Lint::BlockingCallInMonitor)
            .collect();
        assert_eq!(hits.len(), 2, "{fs:?}");
        assert!(hits.iter().any(|f| f.message.contains("`sleep`")));
        assert!(
            hits.iter()
                .any(|f| f.message.contains("`sleep_precise`") && f.message.contains("held via")),
            "{hits:?}"
        );
    }

    #[test]
    fn work_under_a_monitor_is_not_blocking() {
        // Bounded CPU work is what critical sections are for; only
        // sleeps and joins are §6.1 stalls.
        let fs = findings_for(
            "fn f(ctx: &ThreadCtx, m: &Monitor<u32>) {\n\
             let g = ctx.enter(m);\nctx.work(millis(3));\n}",
        );
        assert!(
            !lints_of(&fs).contains(&Lint::BlockingCallInMonitor),
            "{fs:?}"
        );
    }

    #[test]
    fn blocking_in_forked_closure_does_not_inherit_creator_lock() {
        let fs = findings_for(
            "fn f(ctx: &ThreadCtx, m: &Monitor<u32>) {\n\
             let g = ctx.enter(m);\n\
             fork_to_avoid_deadlock(ctx, nm, move |ctx| { ctx.sleep(millis(5)); }).unwrap();\n}",
        );
        // The fork call itself happens under the monitor (one finding);
        // the sleep inside the new thread's closure must not.
        let hits: Vec<&Finding> = fs
            .iter()
            .filter(|f| f.lint == Lint::BlockingCallInMonitor)
            .collect();
        assert!(
            !hits.iter().any(|f| f.message.contains("`sleep`")),
            "{hits:?}"
        );
    }

    #[test]
    fn monitor_clone_alias_unifies_transitive_nodes() {
        // `b2 = b.clone()` must not split monitor `b` into two nodes.
        let fs = findings_for(
            "fn ab(ctx: &ThreadCtx, a: &Monitor<u32>, b: &Monitor<u32>) {\n\
             let b2 = b.clone();\nlet ga = ctx.enter(a);\nlet gb = ctx.enter(&b2);\n}\n\
             fn ba(ctx: &ThreadCtx, a: &Monitor<u32>, b: &Monitor<u32>) {\n\
             let gb = ctx.enter(b);\nhelp_a(ctx, a);\n}\n\
             fn help_a(ctx: &ThreadCtx, a: &Monitor<u32>) { let ga = ctx.enter(a); }",
        );
        assert!(
            lints_of(&fs).contains(&Lint::LockOrderCycleTransitive),
            "{fs:?}"
        );
    }
}
