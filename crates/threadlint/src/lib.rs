//! # threadlint — static thread-discipline analysis, self-hosted
//!
//! The paper's Table 4 came from a *static* pass: the authors grepped
//! 2.5 MLoC of Mesa for thread-primitive uses and hand-classified ~650
//! fork sites. This crate reproduces that methodology against the
//! workspace's **own** sources:
//!
//! * a **self-census** of every thread-primitive call site (`fork*`,
//!   `spawn*`, `wait*`, `notify`/`broadcast`, monitor/CV creation,
//!   `yield*`, `enter`), keyed by crate/file/line and rendered as a
//!   Table-4-style report — cross-checked against the hand-transcribed
//!   `core::inventory` catalog;
//! * a set of **discipline lints** mirroring the paper's mistake
//!   taxonomy (§5.3, §5.4, §2.6) — see [`lints`]. Mesa's compiler
//!   inserted monitor locking; Rust + `pcr` do not, so the lint layer
//!   is this reproduction's substitute for that enforcement.
//!
//! Deliberate anti-patterns (the `paradigms::mistakes` module) carry
//! `// threadlint: allow(<lint>)` annotations: the analyzer still
//! reports them, marked `allowed`, and only *unallowed* findings fail
//! the build. Everything is hand-rolled (a lexer and a structural
//! scanner, no `syn`), matching the workspace's deps-free posture.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod lexer;
pub mod lints;
pub mod lockset;
pub mod report;
pub mod scan;

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

pub use lints::{Finding, LockEdge};
pub use report::{
    baseline_key, census_table, census_unmapped, findings_table, monitor_literals, to_json,
    to_sarif,
};

/// The discipline lints, named after the paper's mistake taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    /// §5.3: `IF`-guarded WAIT with no re-check loop.
    WaitNotInLoop,
    /// §5.3: NOTIFY not traceable to a live guard scope.
    NakedNotify,
    /// §5.4: `let _ = …fork(…)` — fork failure ignored.
    ForkResultDiscarded,
    /// §5.3: CV with a timeout but no NOTIFY on any path.
    TimeoutNoNotify,
    /// §2.6: cycle in the nested monitor-acquisition graph.
    LockOrderCycle,
    /// §2.6/§4.4: acquisition-order cycle composed through call chains.
    LockOrderCycleTransitive,
    /// §5.3: a WAIT reachable with ≥ 2 monitors in the lockset — WAIT
    /// releases only the innermost.
    WaitWithOuterMonitor,
    /// §6.1: fork/join/sleep/long-work reached while holding a monitor.
    BlockingCallInMonitor,
}

impl Lint {
    /// All lints, in taxonomy order.
    pub const ALL: [Lint; 8] = [
        Lint::WaitNotInLoop,
        Lint::NakedNotify,
        Lint::ForkResultDiscarded,
        Lint::TimeoutNoNotify,
        Lint::LockOrderCycle,
        Lint::LockOrderCycleTransitive,
        Lint::WaitWithOuterMonitor,
        Lint::BlockingCallInMonitor,
    ];

    /// The interprocedural lints (the lockset analysis' output).
    pub const INTERPROCEDURAL: [Lint; 3] = [
        Lint::LockOrderCycleTransitive,
        Lint::WaitWithOuterMonitor,
        Lint::BlockingCallInMonitor,
    ];

    /// The kebab-case name used in `// threadlint: allow(…)`.
    pub fn name(self) -> &'static str {
        match self {
            Lint::WaitNotInLoop => "wait-not-in-loop",
            Lint::NakedNotify => "naked-notify",
            Lint::ForkResultDiscarded => "fork-result-discarded",
            Lint::TimeoutNoNotify => "timeout-no-notify",
            Lint::LockOrderCycle => "lock-order-cycle",
            Lint::LockOrderCycleTransitive => "lock-order-cycle-transitive",
            Lint::WaitWithOuterMonitor => "wait-with-outer-monitor",
            Lint::BlockingCallInMonitor => "blocking-call-in-monitor",
        }
    }

    /// The paper section the lint reproduces.
    pub fn paper_section(self) -> &'static str {
        match self {
            Lint::WaitNotInLoop | Lint::NakedNotify | Lint::TimeoutNoNotify => "§5.3",
            Lint::ForkResultDiscarded => "§5.4",
            Lint::LockOrderCycle => "§2.6",
            Lint::LockOrderCycleTransitive => "§2.6/§4.4",
            Lint::WaitWithOuterMonitor => "§5.3",
            Lint::BlockingCallInMonitor => "§6.1",
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The census classification of one primitive call site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PrimKind {
    /// Thread creation: `fork*`, `spawn*`.
    Fork,
    /// Blocking waits: `wait` (the raw Mesa WAIT).
    Wait,
    /// Packaged re-check waits: `wait_until*`.
    WaitUntil,
    /// `notify`.
    Notify,
    /// `broadcast`.
    Broadcast,
    /// Monitor creation: `monitor` / `new_monitor` / `Monitor::new`.
    MonitorNew,
    /// Condition creation: `condition` / `new_condition`.
    ConditionNew,
    /// Monitor entry: `enter`.
    Enter,
    /// `yield_now` / `yield_but_not_to_me`.
    Yield,
}

impl PrimKind {
    /// All kinds, census-column order.
    pub const ALL: [PrimKind; 9] = [
        PrimKind::Fork,
        PrimKind::Wait,
        PrimKind::WaitUntil,
        PrimKind::Notify,
        PrimKind::Broadcast,
        PrimKind::MonitorNew,
        PrimKind::ConditionNew,
        PrimKind::Enter,
        PrimKind::Yield,
    ];

    /// Census column label.
    pub fn label(self) -> &'static str {
        match self {
            PrimKind::Fork => "FORK",
            PrimKind::Wait => "WAIT",
            PrimKind::WaitUntil => "WAIT-loop",
            PrimKind::Notify => "NOTIFY",
            PrimKind::Broadcast => "BROADCAST",
            PrimKind::MonitorNew => "MONITOR",
            PrimKind::ConditionNew => "CONDITION",
            PrimKind::Enter => "ENTER",
            PrimKind::Yield => "YIELD",
        }
    }

    /// Classifies a callee identifier, if it is a thread primitive.
    pub fn of_callee(callee: &str) -> Option<PrimKind> {
        Some(match callee {
            c if c.starts_with("fork") || c.starts_with("spawn") || c == "delayed_fork" => {
                PrimKind::Fork
            }
            "wait" => PrimKind::Wait,
            c if c.starts_with("wait_until") || c == "wait_timeout" => PrimKind::WaitUntil,
            "notify" | "notify_all" => PrimKind::Notify,
            "broadcast" => PrimKind::Broadcast,
            "monitor" | "new_monitor" => PrimKind::MonitorNew,
            "condition" | "new_condition" => PrimKind::ConditionNew,
            "enter" => PrimKind::Enter,
            "yield_now" | "yield_but_not_to_me" => PrimKind::Yield,
            _ => return None,
        })
    }
}

/// One thread-primitive call site in the self-census.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CensusSite {
    /// Census classification.
    pub kind: PrimKind,
    /// The callee identifier as written.
    pub callee: String,
    /// Crate the site lives in.
    pub krate: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// First string literal among the arguments (fork-site names).
    pub name_literal: Option<String>,
}

/// One analyzed file: the cleaned text plus its structural scan.
#[derive(Clone, Debug)]
pub struct FileScan {
    /// Crate the file belongs to (directory under `crates/`/`shims/`,
    /// or the root package name).
    pub krate: String,
    /// Workspace-relative path.
    pub path: String,
    /// Cleaned source.
    pub clean: lexer::CleanSource,
    /// Structural scan.
    pub scan: scan::Scan,
}

/// The full analysis of a workspace.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// Every analyzed file.
    pub files: Vec<FileScan>,
    /// The self-census: every primitive call site.
    pub sites: Vec<CensusSite>,
    /// Every lint finding (allowed ones included, marked).
    pub findings: Vec<Finding>,
}

impl Analysis {
    /// Findings not covered by an allow annotation.
    pub fn unallowed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.allowed)
    }

    /// Findings (allowed or not) within one file, by suffix match.
    pub fn findings_in(&self, path_suffix: &str) -> Vec<&Finding> {
        self.findings
            .iter()
            .filter(|f| f.file.ends_with(path_suffix))
            .collect()
    }
}

/// Analyzes one in-memory source file (for tests and tools).
pub fn analyze_str(krate: &str, path: &str, src: &str) -> FileScan {
    let clean = lexer::clean(src);
    let scan = scan::scan(&clean);
    FileScan {
        krate: krate.to_string(),
        path: path.to_string(),
        clean,
        scan,
    }
}

/// The workspace root this crate was built in, for self-hosted runs.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/threadlint has a workspace root two levels up")
        .to_path_buf()
}

/// Source directories scanned, relative to the workspace root.
const SCAN_ROOTS: &[&str] = &["crates", "shims", "src", "tests", "examples"];

/// Analyzes every `.rs` file in the workspace rooted at `root`.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let mut paths = Vec::new();
    for dir in SCAN_ROOTS {
        collect_rs(&root.join(dir), &mut paths)?;
    }
    paths.sort();
    let mut files = Vec::new();
    for p in &paths {
        let src = std::fs::read_to_string(p)?;
        let rel = p
            .strip_prefix(root)
            .unwrap_or(p)
            .to_string_lossy()
            .replace('\\', "/");
        files.push(analyze_str(&crate_of(&rel), &rel, &src));
    }
    let sites = collect_census(&files);
    let findings = lints::run_all(&files);
    Ok(Analysis {
        files,
        sites,
        findings,
    })
}

/// Crate name for a workspace-relative path: `crates/pcr/src/x.rs` →
/// `pcr`; `shims/parking_lot/…` → `parking_lot`; root files →
/// `threadstudy`.
fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") | Some("shims") => parts.next().unwrap_or("unknown").to_string(),
        _ => "threadstudy".to_string(),
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Builds the self-census from the per-file scans.
fn collect_census(files: &[FileScan]) -> Vec<CensusSite> {
    let mut sites = Vec::new();
    for f in files {
        for c in &f.scan.calls {
            if c.is_def {
                continue;
            }
            let Some(kind) = PrimKind::of_callee(&c.callee) else {
                continue;
            };
            let name_literal = f
                .clean
                .strings
                .iter()
                .find(|s| s.offset >= c.args_start && s.offset < c.args_end)
                .map(|s| s.value.clone());
            sites.push(CensusSite {
                kind,
                callee: c.callee.clone(),
                krate: f.krate.clone(),
                file: f.path.clone(),
                line: c.line,
                name_literal,
            });
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_names_round_trip() {
        for l in Lint::ALL {
            assert!(l.name().chars().all(|c| c.is_ascii_lowercase() || c == '-'));
            assert!(l.paper_section().starts_with('§'));
        }
    }

    #[test]
    fn prim_kind_classification() {
        assert_eq!(PrimKind::of_callee("fork_prio"), Some(PrimKind::Fork));
        assert_eq!(PrimKind::of_callee("spawn_slack"), Some(PrimKind::Fork));
        assert_eq!(PrimKind::of_callee("wait"), Some(PrimKind::Wait));
        assert_eq!(PrimKind::of_callee("wait_until"), Some(PrimKind::WaitUntil));
        assert_eq!(PrimKind::of_callee("notify"), Some(PrimKind::Notify));
        assert_eq!(
            PrimKind::of_callee("new_monitor"),
            Some(PrimKind::MonitorNew)
        );
        assert_eq!(PrimKind::of_callee("yield_now"), Some(PrimKind::Yield));
        assert_eq!(PrimKind::of_callee("with_mut"), None);
    }

    #[test]
    fn census_extracts_name_literals() {
        let f = analyze_str(
            "w",
            "w/src/x.rs",
            "fn f(ctx: &ThreadCtx) { let h = ctx.fork_prio(\"W.Pump\", p, body); }",
        );
        let sites = collect_census(&[f]);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].kind, PrimKind::Fork);
        assert_eq!(sites[0].name_literal.as_deref(), Some("W.Pump"));
    }

    #[test]
    fn crate_names_from_paths() {
        assert_eq!(crate_of("crates/pcr/src/lib.rs"), "pcr");
        assert_eq!(crate_of("shims/parking_lot/src/lib.rs"), "parking_lot");
        assert_eq!(crate_of("tests/properties.rs"), "threadstudy");
        assert_eq!(crate_of("src/lib.rs"), "threadstudy");
    }
}
