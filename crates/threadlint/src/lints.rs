//! The discipline lints: the paper's mistake taxonomy, checked
//! statically.
//!
//! Each lint mirrors a failure mode the paper catalogues:
//!
//! | Lint | Paper | Mistake |
//! |------|-------|---------|
//! | `wait-not-in-loop` | §5.3 | `IF NOT cond THEN WAIT` with no re-check loop |
//! | `naked-notify` | §5.3 | a NOTIFY not lexically inside the critical section that established its predicate |
//! | `fork-result-discarded` | §5.4 | `let _ = …fork(…)` — fork failure silently ignored |
//! | `timeout-no-notify` | §5.3 | a CV that has a timeout but is never notified on any path: a timeout-driven system |
//! | `lock-order-cycle` | §2.6 | nested monitor entries whose global order graph has a cycle (ABBA) |
//!
//! Mesa's compiler enforced monitor discipline; Rust plus `pcr` does
//! not, so these lints are the reproduction's substitute. They are
//! lexical heuristics tuned to be *exact on this workspace*: zero
//! findings on disciplined code, and one finding per deliberate
//! anti-pattern in `paradigms::mistakes` (which carries
//! `// threadlint: allow(…)` annotations).

use std::collections::{BTreeMap, BTreeSet};

use crate::scan::{last_segment, normalize_arg, split_args, BlockKind, Call};
use crate::{FileScan, Lint, PrimKind};

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Which lint fired.
    pub lint: Lint,
    /// Crate the file belongs to.
    pub krate: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// True when covered by a `// threadlint: allow(…)` annotation.
    pub allowed: bool,
    /// Static monitor names involved (empty for CV/fork lints) — the
    /// hook `repro lint --confirm` matches against dynamic evidence.
    pub monitors: Vec<String>,
    /// Thread-name literal of the innermost enclosing fork call, when
    /// the finding sits inside a forked closure body.
    pub thread: Option<String>,
}

/// Runs every per-file lint, the cross-file lock-order audit, and the
/// interprocedural lockset lints.
pub fn run_all(files: &[FileScan]) -> Vec<Finding> {
    let notified = notified_cv_names(files);
    let mut findings = Vec::new();
    for f in files {
        wait_not_in_loop(f, &mut findings);
        naked_notify(f, &mut findings);
        fork_result_discarded(f, &mut findings);
        timeout_no_notify(f, &notified, &mut findings);
        lock_order_cycles(f, &mut findings);
    }
    crate::lockset::run(files, &mut findings);
    findings.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    findings
}

/// The name literal of the innermost fork call whose argument span
/// (the forked closure body) contains `off` — ties a static site to
/// the runtime thread that executes it.
pub(crate) fn enclosing_fork_name(f: &FileScan, off: usize) -> Option<String> {
    f.scan
        .calls
        .iter()
        .filter(|c| {
            !c.is_def
                && matches!(PrimKind::of_callee(&c.callee), Some(PrimKind::Fork))
                && c.args_start <= off
                && off < c.args_end
        })
        .max_by_key(|c| c.args_start)
        .and_then(|c| {
            f.clean
                .strings
                .iter()
                .find(|s| s.offset >= c.args_start && s.offset < c.args_end)
                .map(|s| s.value.clone())
        })
}

fn push(
    findings: &mut Vec<Finding>,
    f: &FileScan,
    lint: Lint,
    line: usize,
    off: usize,
    message: String,
) {
    findings.push(Finding {
        lint,
        krate: f.krate.clone(),
        file: f.path.clone(),
        line,
        message,
        allowed: f.clean.is_allowed(lint.name(), line),
        monitors: Vec::new(),
        thread: enclosing_fork_name(f, off),
    });
}

/// §5.3: a WAIT lexically inside an `if` arm with no enclosing loop in
/// the same activation — the predicate is checked once and never
/// re-checked after the wait returns. `wait_until` (the WHILE-loop
/// convention packaged) is always fine.
fn wait_not_in_loop(f: &FileScan, findings: &mut Vec<Finding>) {
    for c in f
        .scan
        .calls
        .iter()
        .filter(|c| c.callee == "wait" && !c.is_def)
    {
        // Only blocks inside the same activation (innermost fn/closure
        // body) count as context: block indices follow `{` order, so
        // "inside the body" is exactly "index greater than the body's".
        let body = f.scan.body_of(c.off);
        let mut in_if = false;
        let mut in_loop = false;
        for i in f.scan.ancestors(c.off) {
            if body.is_some_and(|b| i <= b) {
                continue;
            }
            match f.scan.blocks[i].kind {
                BlockKind::If => in_if = true,
                k if k.is_loop() => in_loop = true,
                _ => {}
            }
        }
        if in_if && !in_loop {
            push(
                findings,
                f,
                Lint::WaitNotInLoop,
                c.line,
                c.off,
                format!(
                    "WAIT on `{}` is guarded by `if` with no enclosing re-check loop \
                     (IF-based WAIT, §5.3)",
                    normalize_arg(&f.clean.text[c.args_start..c.args_end])
                ),
            );
        }
    }
}

/// §5.3: a NOTIFY/BROADCAST whose receiver the analyzer cannot trace to
/// a live `MonitorGuard` binding in the same activation: either a
/// drive-by `ctx.enter(&m).notify(&cv)` temporary (the wakeup divorced
/// from the critical section that changed the predicate) or a receiver
/// of unknown provenance. Guard-typed `fn` parameters count as held.
fn naked_notify(f: &FileScan, findings: &mut Vec<Finding>) {
    for c in f
        .scan
        .calls
        .iter()
        .filter(|c| (c.callee == "notify" || c.callee == "broadcast") && !c.is_def)
    {
        let Some(recv) = &c.receiver else { continue };
        if recv.contains("enter(") {
            push(
                findings,
                f,
                Lint::NakedNotify,
                c.line,
                c.off,
                format!(
                    "NOTIFY through a transient `{recv}` guard: the wakeup is outside the \
                     critical section that established its predicate (naked NOTIFY, §5.3)"
                ),
            );
            continue;
        }
        // Delegation that passes the guard along (`self.ctx.notify(self,
        // cv)` in the guard's own impl) keeps the wakeup tied to the
        // critical section: the guard is right there in the argument list.
        let args = split_args(&f.clean.text[c.args_start..c.args_end]);
        if args.iter().any(|a| {
            let n = normalize_arg(a);
            n == "self" || f.scan.guards_at(c.off).iter().any(|g| g.var == n)
        }) {
            continue;
        }
        let base = recv
            .split(['.', ':'])
            .next()
            .unwrap_or(recv)
            .trim()
            .to_string();
        let guard_bound = f.scan.guards_at(c.off).iter().any(|g| g.var == base);
        let guard_param = guard_typed_param(f, c, &base);
        if !guard_bound && !guard_param {
            push(
                findings,
                f,
                Lint::NakedNotify,
                c.line,
                c.off,
                format!(
                    "NOTIFY via `{recv}`, which is not a MonitorGuard bound in this scope \
                     (naked NOTIFY, §5.3)"
                ),
            );
        }
    }
}

/// True when `base` is a parameter of the enclosing `fn` whose written
/// type mentions a guard (e.g. `g: &mut MonitorGuard<'_, T>`).
fn guard_typed_param(f: &FileScan, c: &Call, base: &str) -> bool {
    let Some(body) = f.scan.body_of(c.off) else {
        return false;
    };
    let block = &f.scan.blocks[body];
    let Some(sig_start) = block.sig else {
        return false;
    };
    let sig = &f.clean.text[sig_start..block.start];
    let Some(open) = sig.find('(') else {
        return false;
    };
    let Some(close) = sig.rfind(')') else {
        return false;
    };
    split_args(&sig[open + 1..close]).iter().any(|p| {
        let mut parts = p.splitn(2, ':');
        let name = parts.next().unwrap_or("").trim().trim_start_matches("mut ");
        let ty = parts.next().unwrap_or("");
        name == base && ty.contains("Guard")
    })
}

/// Fallible, joinable fork calls for the §5.4 discard lint. Detached
/// variants record intent explicitly; `fork_root` cannot fail (it is
/// the simulation bootstrap); `fork_retry` is the recovery wrapper.
const DISCARDABLE_FORKS: &[&str] = &["fork", "fork_prio", "fork_with"];

/// §5.4: `let _ = …fork(…)` — both the `Result` (did the fork even
/// happen?) and the `JoinHandle` are dropped on the floor, so fork
/// failure is indistinguishable from success.
fn fork_result_discarded(f: &FileScan, findings: &mut Vec<Finding>) {
    for l in &f.scan.lets {
        if l.pat != "_" {
            continue;
        }
        // Only the *first* call in the RHS is what `_` discards; forks
        // nested in a closure argument (e.g. inside a `fork_root` body)
        // have their own bindings and are judged at their own `let`s.
        let Some(call) = f
            .scan
            .calls
            .iter()
            .filter(|c| !c.is_def && c.off >= l.rhs.0 && c.off < l.rhs.1)
            .min_by_key(|c| c.off)
        else {
            continue;
        };
        if !DISCARDABLE_FORKS.contains(&call.callee.as_str()) {
            continue;
        }
        // `let _ = ctx.fork(…).unwrap();` handles the Result — the §5.4
        // mistake is only when nothing inspects it.
        if f.clean.text[call.args_end + 1..l.rhs.1]
            .chars()
            .any(|ch| !ch.is_whitespace())
        {
            continue;
        }
        push(
            findings,
            f,
            Lint::ForkResultDiscarded,
            l.line,
            l.off,
            format!(
                "result of `{}` discarded: a failed FORK (ForkError) goes unnoticed and the \
                 thread is never joined, retried, or detached (§5.4)",
                call.callee
            ),
        );
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_alphanumeric() || c == '_')
}

/// Per-file clone/move aliases: `let cv2 = cv.clone();` (and the tuple
/// form `let (m2, cv2) = (m.clone(), cv.clone());`) map the new name to
/// its root, so notifying a clone counts as notifying the original —
/// and, since the map is name-based, entering a *monitor* clone counts
/// as entering the original (an unaliased lock-order audit would see
/// `m` and `m2` as distinct and miss the AB-BA).
pub(crate) fn alias_map(f: &FileScan) -> BTreeMap<String, String> {
    let mut aliases = BTreeMap::new();
    for l in &f.scan.lets {
        let pat = l.pat.trim();
        let rhs = f.clean.text[l.rhs.0..l.rhs.1].trim();
        let tuple = |s: &str| {
            s.strip_prefix('(')
                .and_then(|s| s.strip_suffix(')'))
                .map(split_args)
        };
        let pairs: Vec<(String, String)> = match (tuple(pat), tuple(rhs)) {
            (Some(ps), Some(rs)) if ps.len() == rs.len() => ps.into_iter().zip(rs).collect(),
            (Some(_), _) | (_, Some(_)) => continue,
            _ => vec![(pat.to_string(), rhs.to_string())],
        };
        for (p, r) in pairs {
            let p = p.trim().trim_start_matches("mut ").trim();
            let base = normalize_arg(r.trim());
            if is_ident(p) && is_ident(&base) && base != p {
                aliases.insert(p.to_string(), base);
            }
        }
    }
    // Resolve chains (cv3 -> cv2 -> cv), bounded against odd inputs.
    let keys: Vec<String> = aliases.keys().cloned().collect();
    for k in keys {
        let mut root = aliases[&k].clone();
        for _ in 0..8 {
            match aliases.get(&root) {
                Some(next) if *next != k => root = next.clone(),
                _ => break,
            }
        }
        aliases.insert(k, root);
    }
    aliases
}

/// Resolves a CV or monitor name through a file's alias map.
pub(crate) fn resolve<'a>(name: &'a str, aliases: &'a BTreeMap<String, String>) -> &'a str {
    aliases.get(name).map(String::as_str).unwrap_or(name)
}

/// CV names (last path segment of the notify argument, clone aliases
/// resolved) that some code path notifies or broadcasts, across the
/// whole workspace.
fn notified_cv_names(files: &[FileScan]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for f in files {
        let aliases = alias_map(f);
        for c in f
            .scan
            .calls
            .iter()
            .filter(|c| (c.callee == "notify" || c.callee == "broadcast") && !c.is_def)
        {
            let args = split_args(&f.clean.text[c.args_start..c.args_end]);
            if let Some(cv) = args.first() {
                let name = last_segment(cv);
                names.insert(resolve(&name, &aliases).to_string());
                names.insert(name);
            }
        }
    }
    names
}

/// §5.3: a WAIT on a CV that (a) was created *in this file* with a
/// timeout and (b) is never notified anywhere in the workspace — the
/// system's only forward progress on that CV is its timeout. This is
/// the end state of "adding timeouts to compensate for missing
/// NOTIFYs": it apparently works, but slowly.
fn timeout_no_notify(f: &FileScan, notified: &BTreeSet<String>, findings: &mut Vec<Finding>) {
    // CVs created in this file with Some(timeout), by binding/field name.
    let mut timeout_cvs: BTreeMap<String, usize> = BTreeMap::new();
    for c in f
        .scan
        .calls
        .iter()
        .filter(|c| (c.callee == "new_condition" || c.callee == "condition") && !c.is_def)
    {
        let args = split_args(&f.clean.text[c.args_start..c.args_end]);
        let Some(last) = args.last() else { continue };
        if !last.trim_start().starts_with("Some") {
            continue;
        }
        if let Some(name) = cv_binding_name(f, c) {
            timeout_cvs.entry(name).or_insert(c.line);
        }
    }
    if timeout_cvs.is_empty() {
        return;
    }
    let aliases = alias_map(f);
    for c in f
        .scan
        .calls
        .iter()
        .filter(|c| c.callee == "wait" && !c.is_def)
    {
        let args = split_args(&f.clean.text[c.args_start..c.args_end]);
        let Some(cv) = args.first() else { continue };
        let name = resolve(&last_segment(cv), &aliases).to_string();
        if timeout_cvs.contains_key(&name) && !notified.contains(&name) {
            push(
                findings,
                f,
                Lint::TimeoutNoNotify,
                c.line,
                c.off,
                format!(
                    "WAIT on `{name}`, a CV created with a timeout but never notified on any \
                     path in the workspace: progress is timeout-driven (§5.3)"
                ),
            );
        }
    }
}

/// The name a condition-variable (or monitor) creation is bound to:
/// `let cv = …` or a struct-literal field `nonempty: ctx.new_condition(…)`.
pub(crate) fn cv_binding_name(f: &FileScan, c: &Call) -> Option<String> {
    // A `let` whose RHS contains this call.
    if let Some(l) = f
        .scan
        .lets
        .iter()
        .find(|l| c.off >= l.rhs.0 && c.off < l.rhs.1)
    {
        let var = l.pat.trim_start_matches("mut ").trim();
        if var.chars().all(|ch| ch.is_alphanumeric() || ch == '_') && var != "_" {
            return Some(var.to_string());
        }
    }
    // A struct-literal field: `name: <receiver>.new_condition(…)`.
    let recv_len = c.receiver.as_deref().map(|r| r.len() + 1).unwrap_or(0);
    let before = f.clean.text[..c.off.saturating_sub(recv_len)].trim_end();
    let before = before.strip_suffix(':')?;
    let name: String = before
        .chars()
        .rev()
        .take_while(|ch| ch.is_alphanumeric() || *ch == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    (!name.is_empty()).then_some(name)
}

/// One acquired-before edge in a file's static lock-order graph.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// Monitor held (normalized argument of the outer `enter`).
    pub from: String,
    /// Monitor acquired while holding `from`.
    pub to: String,
    /// 1-based line of the inner acquisition.
    pub line: usize,
    /// Byte offset of the inner acquisition (for fork attribution).
    pub off: usize,
}

/// Collects nested-acquisition edges for one file, with clone aliases
/// resolved on both ends (`let m2 = m.clone();` is the *same* monitor).
/// Nesting never crosses `fn`/closure boundaries: a
/// fork-to-avoid-deadlock closure acquires in a *new* thread, which is
/// exactly the paper's §4.4 escape and must not count as nested.
pub fn lock_edges(f: &FileScan) -> Vec<LockEdge> {
    let aliases = alias_map(f);
    let mut edges = Vec::new();
    for c in f
        .scan
        .calls
        .iter()
        .filter(|c| c.callee == "enter" && !c.is_def)
    {
        let args = split_args(&f.clean.text[c.args_start..c.args_end]);
        let inner = match args.iter().find(|a| normalize_arg(a) != "ctx") {
            Some(a) => resolve(&normalize_arg(a), &aliases).to_string(),
            None => continue,
        };
        if inner.is_empty() {
            continue;
        }
        for g in f.scan.guards_at(c.off) {
            // A self-edge (re-entering the held monitor) is immediate
            // self-deadlock; the cycle pass reports it as a 1-cycle.
            if !g.monitor.is_empty() {
                edges.push(LockEdge {
                    from: resolve(&g.monitor, &aliases).to_string(),
                    to: inner.clone(),
                    line: c.line,
                    off: c.off,
                });
            }
        }
    }
    edges.sort();
    edges.dedup();
    edges
}

/// §2.6: cycle detection over the per-file lock-order graph. Node
/// identity is the normalized monitor expression within one file —
/// lock-order conventions in this workspace are per-module, and
/// per-file scoping keeps textual name collisions across unrelated
/// files from manufacturing false cycles.
fn lock_order_cycles(f: &FileScan, findings: &mut Vec<Finding>) {
    let edges = lock_edges(f);
    if edges.is_empty() {
        return;
    }
    let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
    for e in &edges {
        adj.entry(e.from.as_str()).or_default().push(e);
    }
    // Find elementary cycles by DFS from each node, smallest-name order;
    // report each once, canonicalized by its smallest node.
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut stack: Vec<(&str, Vec<&LockEdge>)> = vec![(start, Vec::new())];
        while let Some((node, path)) = stack.pop() {
            for &e in adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]) {
                if e.to == start {
                    let mut cycle_edges = path.clone();
                    cycle_edges.push(e);
                    let mut names: Vec<String> =
                        cycle_edges.iter().map(|e| e.from.clone()).collect();
                    // Canonical rotation: smallest node first.
                    let min = names.iter().min().unwrap().clone();
                    while names[0] != min {
                        names.rotate_left(1);
                    }
                    if !seen.insert(names.clone()) {
                        continue;
                    }
                    let allowed = cycle_edges
                        .iter()
                        .all(|e| f.clean.is_allowed(Lint::LockOrderCycle.name(), e.line));
                    let anchor = cycle_edges.iter().map(|e| e.line).min().unwrap();
                    findings.push(Finding {
                        lint: Lint::LockOrderCycle,
                        krate: f.krate.clone(),
                        file: f.path.clone(),
                        line: anchor,
                        message: format!(
                            "monitor acquisition order has a cycle: {} -> {} (ABBA deadlock \
                             precondition, §2.6; edges at lines {})",
                            names.join(" -> "),
                            names[0],
                            cycle_edges
                                .iter()
                                .map(|e| e.line.to_string())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                        allowed,
                        monitors: names,
                        // Attribute the cycle to the forked thread whose
                        // body holds the anchor acquisition, when there
                        // is one — the dynamic confirm join matches it
                        // against stranded-party names.
                        thread: cycle_edges
                            .iter()
                            .find_map(|e| enclosing_fork_name(f, e.off)),
                    });
                } else if path.len() < 8
                    && !path.iter().any(|p| p.to == e.to)
                    && e.to.as_str() > start
                {
                    // Only walk nodes > start so each cycle is found from
                    // its smallest node exactly once.
                    let mut p = path.clone();
                    p.push(e);
                    stack.push((e.to.as_str(), p));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_str;

    fn findings_for(src: &str) -> Vec<Finding> {
        run_all(&[analyze_str("test", "test.rs", src)])
    }

    fn lints_of(fs: &[Finding]) -> Vec<Lint> {
        fs.iter().map(|f| f.lint).collect()
    }

    #[test]
    fn if_wait_without_loop_fires() {
        let fs = findings_for(
            "fn f(g: &mut MonitorGuard<u32>, cv: &Condition) {\n\
             if !g.with(|q| q.ready) {\n    let _ = g.wait(cv);\n}\n}",
        );
        assert_eq!(lints_of(&fs), vec![Lint::WaitNotInLoop]);
        assert!(!fs[0].allowed);
    }

    #[test]
    fn wait_in_loop_is_clean() {
        let fs = findings_for(
            "fn f(g: &mut MonitorGuard<u32>, cv: &Condition) {\n\
             loop { if g.with(|q| q.ready) { return; } g.wait(cv); } }",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn wait_in_if_inside_loop_is_clean() {
        let fs = findings_for(
            "fn f(g: &mut MonitorGuard<u32>, cv: &Condition) {\n\
             while go() { if quiet() { g.wait(cv); } } }",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn allow_annotation_marks_finding() {
        let fs = findings_for(
            "fn f(g: &mut MonitorGuard<u32>, cv: &Condition) {\n\
             if !g.with(|q| q.ready) {\n\
             // threadlint: allow(wait-not-in-loop)\n    let _ = g.wait(cv);\n}\n}",
        );
        assert_eq!(fs.len(), 1);
        assert!(fs[0].allowed);
    }

    #[test]
    fn drive_by_enter_notify_is_naked() {
        let fs = findings_for(
            "fn f(ctx: &ThreadCtx, m: &Monitor<u32>, cv: &Condition) {\n\
             ctx.enter(m).notify(cv);\n}",
        );
        assert_eq!(lints_of(&fs), vec![Lint::NakedNotify]);
    }

    #[test]
    fn guarded_notify_is_clean() {
        let fs = findings_for(
            "fn f(ctx: &ThreadCtx, m: &Monitor<u32>, cv: &Condition) {\n\
             let mut g = ctx.enter(m);\ng.with_mut(|v| *v += 1);\ng.notify(cv);\n}",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn guard_param_notify_is_clean() {
        let fs = findings_for(
            "fn poke(g: &mut MonitorGuard<'_, u32>, cv: &Condition) { g.notify(cv); }",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn notify_after_drop_is_naked() {
        let fs = findings_for(
            "fn f(ctx: &ThreadCtx, m: &Monitor<u32>, cv: &Condition) {\n\
             let g = ctx.enter(m);\ndrop(g);\ng.notify(cv);\n}",
        );
        assert_eq!(lints_of(&fs), vec![Lint::NakedNotify]);
    }

    #[test]
    fn discarded_fork_fires_but_detached_and_root_do_not() {
        let fs = findings_for(
            "fn f(ctx: &ThreadCtx, sim: &mut Sim) {\n\
             let _ = ctx.fork_prio(n, p, body);\n\
             let _ = ctx.fork_detached(n, body);\n\
             let _ = sim.fork_root(n, p, body);\n}",
        );
        assert_eq!(lints_of(&fs), vec![Lint::ForkResultDiscarded]);
        assert_eq!(fs[0].line, 2);
    }

    #[test]
    fn bound_fork_handle_is_clean() {
        let fs = findings_for(
            "fn f(ctx: &ThreadCtx) { let h = ctx.fork(n, body).unwrap(); ctx.join(h).unwrap(); }",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn timeout_cv_without_notify_fires() {
        let fs = findings_for(
            "fn f(ctx: &ThreadCtx, m: &Monitor<bool>) {\n\
             let tick = ctx.new_condition(m, nm, Some(millis(50)));\n\
             let mut g = ctx.enter(m);\n\
             loop { g.wait(&tick); }\n}",
        );
        assert_eq!(lints_of(&fs), vec![Lint::TimeoutNoNotify]);
    }

    #[test]
    fn timeout_cv_with_a_notify_somewhere_is_clean() {
        let producer = analyze_str(
            "test",
            "producer.rs",
            "fn put(g: &mut MonitorGuard<'_, u32>, tick: &Condition) { g.notify(tick); }",
        );
        let consumer = analyze_str(
            "test",
            "consumer.rs",
            "fn f(ctx: &ThreadCtx, m: &Monitor<bool>) {\n\
             let tick = ctx.new_condition(m, nm, Some(millis(50)));\n\
             let mut g = ctx.enter(m);\n\
             loop { g.wait(&tick); }\n}",
        );
        let fs = run_all(&[producer, consumer]);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn abba_cycle_detected_and_consistent_order_clean() {
        let fs = findings_for(
            "fn ab(ctx: &ThreadCtx, a: &Monitor<u32>, b: &Monitor<u32>) {\n\
             let ga = ctx.enter(a);\nlet gb = ctx.enter(b);\n}\n\
             fn ba(ctx: &ThreadCtx, a: &Monitor<u32>, b: &Monitor<u32>) {\n\
             let gb = ctx.enter(b);\nlet ga = ctx.enter(a);\n}",
        );
        assert_eq!(lints_of(&fs), vec![Lint::LockOrderCycle]);
        let clean = findings_for(
            "fn ab(ctx: &ThreadCtx, a: &Monitor<u32>, b: &Monitor<u32>) {\n\
             let ga = ctx.enter(a);\nlet gb = ctx.enter(b);\n}\n\
             fn ab2(ctx: &ThreadCtx, a: &Monitor<u32>, b: &Monitor<u32>) {\n\
             let ga = ctx.enter(a);\nlet gb = ctx.enter(b);\n}",
        );
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn self_reentry_is_a_cycle() {
        let fs = findings_for(
            "fn f(ctx: &ThreadCtx, m: &Monitor<u32>) {\n\
             let g = ctx.enter(m);\nlet g2 = ctx.enter(m);\n}",
        );
        assert_eq!(lints_of(&fs), vec![Lint::LockOrderCycle]);
    }

    #[test]
    fn forked_closure_acquisition_is_not_nested() {
        let fs = findings_for(
            "fn ab(ctx: &ThreadCtx, a: &Monitor<u32>, b: &Monitor<u32>) {\n\
             let ga = ctx.enter(a);\n\
             fork_to_avoid_deadlock(ctx, nm, move |ctx| { let gb = ctx.enter(b); }).unwrap();\n}\n\
             fn ba(ctx: &ThreadCtx, a: &Monitor<u32>, b: &Monitor<u32>) {\n\
             let gb = ctx.enter(b);\nlet ga = ctx.enter(a);\n}",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn wait_in_raw_string_or_comment_is_not_a_finding() {
        // Lexer regression: primitive names inside raw strings and
        // nested block comments must be invisible to every lint.
        let fs = findings_for(
            "fn f() {\n\
             let doc = r#\"if empty { g.wait(cv); }\"#;\n\
             /* dead /* g.wait(cv); */ ctx.enter(m); */\n\
             let delim = '\\'';\n}",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }
}
