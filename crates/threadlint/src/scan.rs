//! Structural scan over a cleaned source file.
//!
//! A single forward pass over [`crate::lexer::CleanSource`] text
//! recovers just enough structure for the lints: the brace-block tree
//! (classified by controlling keyword — `if`, `loop`, closures, `fn`
//! bodies, …), every call site with its argument text and receiver,
//! every `let` statement, and the static extent of every
//! `MonitorGuard` binding (a `let g = …enter(…)` until its block ends
//! or `drop(g)`). No `syn`, no full parser: the workspace's own style
//! (rustfmt-formatted, `#![forbid(unsafe_code)]`, no macros defining
//! control flow) is regular enough for a lexical pass to be exact.

use crate::lexer::CleanSource;

/// What introduced a brace block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockKind {
    /// A `fn` body.
    Fn,
    /// A closure body (`|x| { … }`).
    Closure,
    /// An `if` or `else` arm.
    If,
    /// `loop { … }`.
    Loop,
    /// `while … { … }`.
    While,
    /// `for … { … }`.
    For,
    /// The body of a `match`.
    Match,
    /// Anything else: struct literals, bare blocks, `impl`/`mod` items.
    Other,
}

impl BlockKind {
    /// True for blocks that re-run their body — the re-check loops the
    /// WAIT discipline requires.
    pub fn is_loop(self) -> bool {
        matches!(self, BlockKind::Loop | BlockKind::While | BlockKind::For)
    }

    /// True for blocks that start a new runtime activation: guard
    /// scopes and loop context never propagate across these.
    pub fn is_body(self) -> bool {
        matches!(self, BlockKind::Fn | BlockKind::Closure)
    }
}

/// One brace block.
#[derive(Clone, Debug)]
pub struct Block {
    /// Byte offset of the `{`.
    pub start: usize,
    /// Byte offset of the matching `}` (or text end if unterminated).
    pub end: usize,
    /// Classification.
    pub kind: BlockKind,
    /// For `Fn` blocks: the `fn` keyword offset, so the signature text
    /// is `text[sig..start]`.
    pub sig: Option<usize>,
}

/// One call site: `callee(args)` with optional `receiver.` before it.
#[derive(Clone, Debug)]
pub struct Call {
    /// The called identifier (method or function name).
    pub callee: String,
    /// Byte offset of the callee identifier.
    pub off: usize,
    /// 1-based line.
    pub line: usize,
    /// Offset just after the opening `(`.
    pub args_start: usize,
    /// Offset of the closing `)`.
    pub args_end: usize,
    /// Receiver expression text (`g`, `ctx.enter(&m)`, `Monitor`), if
    /// the call had a `.` or `::` receiver.
    pub receiver: Option<String>,
    /// True when this is a `fn` definition header, not a call.
    pub is_def: bool,
}

/// One `let` statement (excluding `if let` / `while let` patterns).
#[derive(Clone, Debug)]
pub struct LetStmt {
    /// Offset of the `let` keyword.
    pub off: usize,
    /// 1-based line.
    pub line: usize,
    /// Pattern text between `let` and `=` (e.g. `mut g`, `_`, `(a, b)`).
    pub pat: String,
    /// Offsets of the right-hand side: after `=` up to the `;`.
    pub rhs: (usize, usize),
}

/// The static extent of one monitor-guard binding.
#[derive(Clone, Debug)]
pub struct GuardScope {
    /// The bound variable (`g` in `let mut g = ctx.enter(&m);`).
    pub var: String,
    /// Normalized text of the monitor argument to `enter(…)`.
    pub monitor: String,
    /// Line of the binding.
    pub line: usize,
    /// Extent: from the end of the binding statement to the end of the
    /// enclosing block (or an explicit `drop(var)`).
    pub start: usize,
    /// End of the extent.
    pub end: usize,
    /// Index of the innermost `Fn`/`Closure` block containing the
    /// binding, if any — guard scopes never cross these.
    pub body: Option<usize>,
}

/// Scan result for one file.
#[derive(Clone, Debug, Default)]
pub struct Scan {
    /// All brace blocks, in order of their `{`.
    pub blocks: Vec<Block>,
    /// All call sites, in source order.
    pub calls: Vec<Call>,
    /// All `let` statements.
    pub lets: Vec<LetStmt>,
    /// All monitor-guard extents.
    pub guards: Vec<GuardScope>,
}

impl Scan {
    /// Indices of blocks containing `off`, outermost first.
    pub fn ancestors(&self, off: usize) -> Vec<usize> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.start < off && off < b.end)
            .map(|(i, _)| i)
            .collect()
    }

    /// Innermost `Fn`/`Closure` block containing `off`.
    pub fn body_of(&self, off: usize) -> Option<usize> {
        self.ancestors(off)
            .into_iter()
            .rev()
            .find(|&i| self.blocks[i].kind.is_body())
    }

    /// Guard scopes live at `off` within the same activation body.
    pub fn guards_at(&self, off: usize) -> Vec<&GuardScope> {
        let body = self.body_of(off);
        self.guards
            .iter()
            .filter(|g| g.start < off && off < g.end && g.body == body)
            .collect()
    }
}

/// Normalizes a monitor/CV argument expression to a comparable name:
/// strips borrows, `mut`, a leading `self.`, trailing `.clone()` and
/// whitespace. `&self.monitor` → `monitor`, `&m` → `m`.
pub fn normalize_arg(arg: &str) -> String {
    let mut s = arg.trim();
    while let Some(rest) = s.strip_prefix('&') {
        s = rest.trim_start();
    }
    if let Some(rest) = s.strip_prefix("mut ") {
        s = rest.trim_start();
    }
    if let Some(rest) = s.strip_prefix("self.") {
        s = rest;
    }
    let mut out = s.to_string();
    while let Some(stripped) = out.strip_suffix(".clone()") {
        out = stripped.to_string();
    }
    out.trim().to_string()
}

/// Last path segment of a normalized argument: `bus.slots` → `slots`.
pub fn last_segment(arg: &str) -> String {
    let n = normalize_arg(arg);
    n.rsplit(['.', ':']).next().unwrap_or(&n).trim().to_string()
}

/// Splits argument text at top-level commas (tracking `()[]{}` depth).
pub fn split_args(args: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in args.chars() {
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth -= 1,
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
                continue;
            }
            _ => {}
        }
        cur.push(c);
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

const KEYWORDS: &[&str] = &[
    "if", "else", "loop", "while", "for", "match", "fn", "impl", "trait", "struct", "enum",
    "union", "mod",
];

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Runs the structural scan over a cleaned file.
pub fn scan(clean: &CleanSource) -> Scan {
    let text = clean.text.as_bytes();
    let mut out = Scan::default();
    let mut stack: Vec<usize> = Vec::new(); // indices into out.blocks
    let mut pending: Option<(&'static str, usize)> = None; // (keyword, offset)

    let mut i = 0usize;
    while i < text.len() {
        let c = text[i];
        if is_ident_byte(c) && (i == 0 || !is_ident_byte(text[i - 1])) {
            let start = i;
            while i < text.len() && is_ident_byte(text[i]) {
                i += 1;
            }
            let word = &clean.text[start..i];
            if let Some(&kw) = KEYWORDS.iter().find(|&&k| k == word) {
                // `impl … for … {` / `trait … for` keep their item kind.
                let keep = matches!(pending, Some(("impl" | "trait", _))) && kw == "for";
                if !keep {
                    pending = Some((kw, start));
                }
            } else {
                // A call site: identifier directly followed by `(`.
                let mut j = i;
                while j < text.len() && (text[j] == b' ' || text[j] == b'\n') {
                    j += 1;
                }
                if j < text.len() && text[j] == b'(' {
                    let (args_start, args_end) = balanced(text, j);
                    let receiver = receiver_before(&clean.text, start);
                    let is_def = def_before(&clean.text, start, receiver.is_some());
                    out.calls.push(Call {
                        callee: word.to_string(),
                        off: start,
                        line: clean.line_of(start),
                        args_start,
                        args_end,
                        receiver,
                        is_def,
                    });
                }
                // A `let` statement: parse pattern and rhs extent.
                if word == "let" && !preceded_by_if_or_while(&clean.text, start) {
                    if let Some(stmt) = parse_let(&clean.text, start, clean) {
                        out.lets.push(stmt);
                    }
                }
            }
            continue;
        }
        match c {
            b'{' => {
                let kind = classify_block(&clean.text, i, &pending);
                let sig = match (&pending, kind) {
                    (Some(("fn", off)), BlockKind::Fn) => Some(*off),
                    _ => None,
                };
                out.blocks.push(Block {
                    start: i,
                    end: clean.text.len(),
                    kind,
                    sig,
                });
                stack.push(out.blocks.len() - 1);
                pending = None;
            }
            b'}' => {
                if let Some(idx) = stack.pop() {
                    out.blocks[idx].end = i;
                }
                pending = None;
            }
            b';' => pending = None,
            _ => {}
        }
        i += 1;
    }

    collect_guards(clean, &mut out);
    out
}

/// Finds the balanced argument span for a `(` at `open`; returns
/// (just after `(`, offset of matching `)`).
fn balanced(text: &[u8], open: usize) -> (usize, usize) {
    let mut depth = 0i32;
    for (k, &b) in text.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return (open + 1, k);
                }
            }
            _ => {}
        }
    }
    (open + 1, text.len())
}

/// Classifies the block opened by `{` at `off`.
fn classify_block(text: &str, off: usize, pending: &Option<(&'static str, usize)>) -> BlockKind {
    // Closure body: `|…| {` or `move |…| {` — the last non-space char
    // before the brace is the closing pipe of a parameter list.
    let before = text[..off].trim_end();
    if before.ends_with('|') {
        return BlockKind::Closure;
    }
    match pending {
        Some(("fn", _)) => BlockKind::Fn,
        Some(("if" | "else", _)) => BlockKind::If,
        Some(("loop", _)) => BlockKind::Loop,
        Some(("while", _)) => BlockKind::While,
        Some(("for", _)) => BlockKind::For,
        Some(("match", _)) => BlockKind::Match,
        _ => BlockKind::Other,
    }
}

/// Extracts the receiver expression ending just before `ident_start`
/// (which must follow a `.` or `::`). Walks back over path segments and
/// balanced call/index groups: `ctx.enter(&m)` for `….notify(`.
fn receiver_before(text: &str, ident_start: usize) -> Option<String> {
    let b = text.as_bytes();
    let mut i = ident_start;
    // Must be preceded by `.` or `::`.
    let sep = if i >= 1 && b[i - 1] == b'.' {
        1
    } else if i >= 2 && b[i - 1] == b':' && b[i - 2] == b':' {
        2
    } else {
        return None;
    };
    i -= sep;
    let end = i;
    loop {
        if i == 0 {
            break;
        }
        let c = b[i - 1];
        if is_ident_byte(c) {
            i -= 1;
        } else if c == b')' || c == b']' {
            // Skip a balanced group backwards.
            let (open, close) = if c == b')' {
                (b'(', b')')
            } else {
                (b'[', b']')
            };
            let mut depth = 0i32;
            let mut j = i;
            while j > 0 {
                let d = b[j - 1];
                if d == close {
                    depth += 1;
                } else if d == open {
                    depth -= 1;
                    if depth == 0 {
                        j -= 1;
                        break;
                    }
                }
                j -= 1;
            }
            // Include a `&` borrows inside; keep walking from before the
            // group.
            i = j;
        } else if c == b'.' {
            i -= 1;
        } else if c == b':' && i >= 2 && b[i - 2] == b':' {
            i -= 2;
        } else {
            break;
        }
    }
    let recv = text[i..end].trim();
    (!recv.is_empty()).then(|| recv.to_string())
}

/// True when `ident_start` names a `fn` being *defined* rather than
/// called: the previous token is `fn`.
fn def_before(text: &str, ident_start: usize, has_receiver: bool) -> bool {
    if has_receiver {
        return false;
    }
    let before = text[..ident_start].trim_end();
    before.ends_with("fn")
        && before[..before.len() - 2]
            .chars()
            .next_back()
            .map(|c| !c.is_alphanumeric() && c != '_')
            .unwrap_or(true)
}

/// True when the `let` at `off` belongs to `if let` / `while let` /
/// `else if let` — those have no `;`-terminated statement shape.
fn preceded_by_if_or_while(text: &str, off: usize) -> bool {
    let before = text[..off].trim_end();
    before.ends_with("if") || before.ends_with("while")
}

/// Parses `let [mut] PAT = RHS ;` starting at the `let` keyword.
fn parse_let(text: &str, off: usize, clean: &CleanSource) -> Option<LetStmt> {
    let b = text.as_bytes();
    let mut i = off + 3;
    // Pattern: up to a top-level `=` (but not `==` / `=>`).
    let pat_start = i;
    let mut depth = 0i32;
    let eq = loop {
        if i >= b.len() {
            return None;
        }
        match b[i] {
            b'(' | b'[' | b'<' => depth += 1,
            b')' | b']' | b'>' => depth -= 1,
            b'=' if depth <= 0 => {
                if i + 1 < b.len() && (b[i + 1] == b'=' || b[i + 1] == b'>') {
                    i += 2;
                    continue;
                }
                break i;
            }
            b';' | b'{' => return None, // `let … else`, or no initializer
            _ => {}
        }
        i += 1;
    };
    let pat = text[pat_start..eq].trim().to_string();
    // RHS: to the `;` at this statement's depth.
    let mut i = eq + 1;
    let rhs_start = i;
    let mut depth = 0i32;
    while i < b.len() {
        match b[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                depth -= 1;
                if depth < 0 {
                    return None; // block ended before `;`
                }
            }
            b';' if depth == 0 => {
                return Some(LetStmt {
                    off,
                    line: clean.line_of(off),
                    pat,
                    rhs: (rhs_start, i),
                });
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Derives monitor-guard extents from the lets + calls.
fn collect_guards(clean: &CleanSource, out: &mut Scan) {
    let mut guards = Vec::new();
    for l in &out.lets {
        let rhs = &clean.text[l.rhs.0..l.rhs.1];
        // Direct acquisitions only: a block or closure in the RHS means
        // the guard (if any) lives and dies inside the RHS.
        if rhs.contains('{') || rhs.contains('|') {
            continue;
        }
        let Some(enter) = out
            .calls
            .iter()
            .find(|c| c.callee == "enter" && !c.is_def && c.off >= l.rhs.0 && c.off < l.rhs.1)
        else {
            continue;
        };
        let var = l.pat.trim_start_matches("mut ").trim().to_string();
        if !var.chars().all(|c| c.is_alphanumeric() || c == '_') {
            continue; // destructuring — not a guard binding
        }
        let args = split_args(&clean.text[enter.args_start..enter.args_end]);
        let monitor = args
            .iter()
            .find(|a| normalize_arg(a) != "ctx")
            .map(|a| normalize_arg(a))
            .unwrap_or_default();
        // Extent: end of the binding statement to end of innermost block.
        let anc = out.ancestors(l.off);
        let block_end = anc
            .last()
            .map(|&i| out.blocks[i].end)
            .unwrap_or(clean.text.len());
        guards.push(GuardScope {
            var,
            monitor,
            line: l.line,
            start: l.rhs.1,
            end: block_end,
            body: out.body_of(l.off),
        });
    }
    // Truncate at explicit `drop(var)`.
    for g in &mut guards {
        if let Some(d) = out.calls.iter().find(|c| {
            c.callee == "drop"
                && !c.is_def
                && c.off > g.start
                && c.off < g.end
                && clean.text[c.args_start..c.args_end].trim() == g.var
        }) {
            g.end = d.off;
        }
    }
    out.guards = guards;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::clean;

    fn scan_src(src: &str) -> (CleanSource, Scan) {
        let c = clean(src);
        let s = scan(&c);
        (c, s)
    }

    #[test]
    fn classifies_blocks() {
        let (_, s) = scan_src(
            "fn f() { if a { loop { } } else { } while b { } for x in y { } match z { A => {} } \
             let c = move |ctx| { }; }",
        );
        let kinds: Vec<BlockKind> = s.blocks.iter().map(|b| b.kind).collect();
        assert!(kinds.contains(&BlockKind::Fn));
        assert!(kinds.contains(&BlockKind::If));
        assert!(kinds.contains(&BlockKind::Loop));
        assert!(kinds.contains(&BlockKind::While));
        assert!(kinds.contains(&BlockKind::For));
        assert!(kinds.contains(&BlockKind::Match));
        assert!(kinds.contains(&BlockKind::Closure));
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let (_, s) = scan_src("impl Drop for Guard { fn drop(&mut self) { } }");
        assert_eq!(s.blocks[0].kind, BlockKind::Other);
        assert!(s.blocks.iter().any(|b| b.kind == BlockKind::Fn));
    }

    #[test]
    fn finds_calls_with_receivers() {
        let (c, s) = scan_src("fn f() { g.notify(&cv); ctx.enter(&m).notify(&cv); }");
        let notifies: Vec<&Call> = s.calls.iter().filter(|c| c.callee == "notify").collect();
        assert_eq!(notifies.len(), 2);
        assert_eq!(notifies[0].receiver.as_deref(), Some("g"));
        assert_eq!(notifies[1].receiver.as_deref(), Some("ctx.enter(&m)"));
        assert_eq!(&c.text[notifies[0].args_start..notifies[0].args_end], "&cv");
    }

    #[test]
    fn fn_definitions_are_flagged() {
        let (_, s) = scan_src("pub fn wait(&mut self) { other.wait(x); }");
        let waits: Vec<&Call> = s.calls.iter().filter(|c| c.callee == "wait").collect();
        assert_eq!(waits.len(), 2);
        assert!(waits[0].is_def);
        assert!(!waits[1].is_def);
    }

    #[test]
    fn guard_scope_extends_to_block_end_or_drop() {
        let src = "fn f() { let mut g = ctx.enter(&m); g.notify(&cv); drop(g); late(); }";
        let (_, s) = scan_src(src);
        assert_eq!(s.guards.len(), 1);
        let g = &s.guards[0];
        assert_eq!(g.var, "g");
        assert_eq!(g.monitor, "m");
        let notify = s.calls.iter().find(|c| c.callee == "notify").unwrap();
        let late = s.calls.iter().find(|c| c.callee == "late").unwrap();
        assert!(g.start < notify.off && notify.off < g.end);
        assert!(late.off > g.end, "guard should end at drop()");
    }

    #[test]
    fn block_rhs_is_not_a_direct_guard() {
        // `let n = { let g = ctx.enter(&m); … };` binds n, not a guard.
        let src = "fn f() { let n = { let g = ctx.enter(&counter); g.with(|c| *c) }; \
                   let mut h = ctx.enter(&q); }";
        let (_, s) = scan_src(src);
        let vars: Vec<&str> = s.guards.iter().map(|g| g.var.as_str()).collect();
        assert!(vars.contains(&"g"));
        assert!(vars.contains(&"h"));
        assert!(!vars.contains(&"n"));
        // And g's scope ends with the inner block, before h's binding.
        let g = s.guards.iter().find(|g| g.var == "g").unwrap();
        let h = s.guards.iter().find(|g| g.var == "h").unwrap();
        assert!(g.end < h.start);
    }

    #[test]
    fn guards_do_not_cross_closure_bodies() {
        let src = "fn f() { let g = ctx.enter(&a); fork(ctx, move |ctx| { \
                   let h = ctx.enter(&b); }); }";
        let (_, s) = scan_src(src);
        let h = s.guards.iter().find(|g| g.var == "h").unwrap();
        let inner = s
            .calls
            .iter()
            .find(|c| c.callee == "enter" && c.off > h.start - 40);
        let _ = inner;
        // At h's binding site, the live same-body guards exclude g.
        let live = s.guards_at(h.start + 1);
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].var, "h");
    }

    #[test]
    fn split_and_normalize_args() {
        // Real inputs are cleaned text: string literals already blanked.
        assert_eq!(
            split_args("a, Some(millis(5)), [x, y]"),
            vec!["a", "Some(millis(5))", "[x, y]"]
        );
        assert_eq!(normalize_arg("&self.monitor"), "monitor");
        assert_eq!(normalize_arg("&mut q"), "q");
        assert_eq!(normalize_arg("m.clone()"), "m");
        assert_eq!(last_segment("&self.bus.slots"), "slots");
    }

    #[test]
    fn if_let_is_not_a_let_statement() {
        let (_, s) = scan_src("fn f() { if let Some(x) = y.take() { use_it(x); } }");
        assert!(s.lets.is_empty());
    }
}
