//! A lightweight Rust lexer: comment and literal stripping.
//!
//! The analyzer works on a *cleaned* copy of each source file in which
//! comments, string/char literals, and raw strings are blanked out with
//! spaces. Blanking (rather than deleting) keeps every byte offset and
//! line number identical to the original file, so later passes can scan
//! with naive substring searches and still report exact locations.
//!
//! Two things are preserved on the side: the string literals themselves
//! (the census needs fork-site name literals) and `threadlint:
//! allow(...)` annotations found in comments (the allowlist mechanism).

/// One string literal from the original source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StrLit {
    /// Byte offset of the opening quote.
    pub offset: usize,
    /// 1-based line of the opening quote.
    pub line: usize,
    /// The literal's content (escapes left as written).
    pub value: String,
}

/// One `// threadlint: allow(lint-a, lint-b)` annotation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the annotation appears on. An annotation covers
    /// findings on its own line and on the following line, so it can
    /// trail the offending statement or sit on the line above it.
    pub line: usize,
    /// The allowed lint names, as written.
    pub lints: Vec<String>,
}

/// A source file after comment/literal stripping.
#[derive(Clone, Debug, Default)]
pub struct CleanSource {
    /// The cleaned text: same length as the input, with comments and
    /// literal bodies replaced by spaces (newlines kept).
    pub text: String,
    /// Every string literal, in order of appearance.
    pub strings: Vec<StrLit>,
    /// Every allowlist annotation.
    pub allows: Vec<Allow>,
}

impl CleanSource {
    /// 1-based line number of a byte offset in the cleaned text.
    pub fn line_of(&self, offset: usize) -> usize {
        1 + self.text.as_bytes()[..offset.min(self.text.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
    }

    /// True if `lint` is allowed on `line` (annotation on the same line
    /// or the line above).
    pub fn is_allowed(&self, lint: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|a| (a.line == line || a.line + 1 == line) && a.lints.iter().any(|l| l == lint))
    }
}

/// Parses lint names out of a comment body if it carries an annotation.
fn parse_allow(comment: &str) -> Option<Vec<String>> {
    let idx = comment.find("threadlint:")?;
    let rest = comment[idx + "threadlint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    Some(
        rest[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect(),
    )
}

/// Strips comments and literals from Rust source.
///
/// Handles line comments, (nested) block comments, string literals with
/// escapes, raw strings `r#"…"#`, byte strings, and char literals
/// (disambiguated from lifetimes). This is a lexer, not a parser: it
/// only needs to be right about where code stops and text begins.
pub fn clean(src: &str) -> CleanSource {
    let b = src.as_bytes();
    let mut out = vec![b' '; b.len()];
    let mut strings = Vec::new();
    let mut allows = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Keep newlines everywhere so offsets/lines survive blanking.
    macro_rules! blank_advance {
        ($n:expr) => {{
            for k in i..(i + $n).min(b.len()) {
                if b[k] == b'\n' {
                    out[k] = b'\n';
                    line += 1;
                }
            }
            i += $n;
        }};
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let end = src[i..].find('\n').map(|k| i + k).unwrap_or(b.len());
                if let Some(lints) = parse_allow(&src[i..end]) {
                    allows.push(Allow { line, lints });
                }
                blank_advance!(end - i);
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Nested block comments, per Rust.
                let start = i;
                let mut depth = 0usize;
                let mut j = i;
                while j < b.len() {
                    if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        j += 1;
                    }
                }
                if let Some(lints) = parse_allow(&src[start..j.min(b.len())]) {
                    allows.push(Allow { line, lints });
                }
                blank_advance!(j - i);
            }
            b'"' => {
                let (value, len) = scan_string(&src[i..]);
                strings.push(StrLit {
                    offset: i,
                    line,
                    value,
                });
                blank_advance!(len);
            }
            b'r' | b'b' if is_raw_or_byte_string(b, i) => {
                let (skip, value, len) = scan_raw_or_byte(&src[i..]);
                // Keep the prefix (`r`, `b`, hashes) blanked too.
                strings.push(StrLit {
                    offset: i + skip,
                    line,
                    value,
                });
                blank_advance!(len);
            }
            b'\'' => {
                let len = scan_char_or_lifetime(b, i);
                if len > 1 {
                    blank_advance!(len);
                } else {
                    // A lifetime tick: copy it through.
                    out[i] = c;
                    i += 1;
                }
            }
            _ => {
                if c == b'\n' {
                    line += 1;
                }
                // Skip the rest of a multi-byte UTF-8 scalar in one go so
                // we never split a char (out already holds spaces there).
                let width = utf8_width(c);
                out[i] = if width == 1 { c } else { b' ' };
                i += width.max(1);
            }
        }
    }
    CleanSource {
        text: String::from_utf8(out).expect("blanked source is ASCII-compatible"),
        strings,
        allows,
    }
}

fn utf8_width(b0: u8) -> usize {
    match b0 {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Is `r"`, `r#"`, `b"`, `br"`, … at `i` the start of a literal (and not
/// just an identifier ending in r/b)?
fn is_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    // Must not be preceded by an identifier char.
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
        while j < b.len() && b[j] == b'#' {
            j += 1;
        }
    }
    j < b.len() && b[j] == b'"' && j > i
}

/// Scans a plain string literal starting at a `"`. Returns (content,
/// total length including quotes).
fn scan_string(s: &str) -> (String, usize) {
    let b = s.as_bytes();
    let mut j = 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return (s[1..j].to_string(), j + 1),
            _ => j += utf8_width(b[j]),
        }
    }
    (s[1..].to_string(), b.len())
}

/// Scans `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`. Returns (offset of the
/// opening quote, content, total length).
fn scan_raw_or_byte(s: &str) -> (usize, String, usize) {
    let b = s.as_bytes();
    let mut j = 0;
    let mut raw = false;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        raw = true;
        j += 1;
    }
    let mut hashes = 0;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    debug_assert!(b[j] == b'"');
    let quote = j;
    j += 1;
    if raw {
        let closer: String = std::iter::once('"')
            .chain("#".repeat(hashes).chars())
            .collect();
        if let Some(k) = s[j..].find(&closer) {
            return (quote, s[j..j + k].to_string(), j + k + closer.len());
        }
        (quote, s[j..].to_string(), b.len())
    } else {
        let (v, len) = scan_string(&s[quote..]);
        (quote, v, quote + len)
    }
}

/// Length of a char literal at `'`, or 1 if this is a lifetime tick.
fn scan_char_or_lifetime(b: &[u8], i: usize) -> usize {
    if i + 1 >= b.len() {
        return 1;
    }
    if b[i + 1] == b'\\' {
        // Escape: the char after the backslash is consumed even when it
        // is a quote (`'\''`), then scan to the closing quote.
        let mut j = i + 3;
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        return j + 1 - i;
    }
    let w = utf8_width(b[i + 1]);
    if i + 1 + w < b.len() && b[i + 1 + w] == b'\'' {
        return w + 2; // 'x'
    }
    1 // lifetime
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_comments_and_strings_preserving_offsets() {
        let src = "let a = \"fork(\"; // fork(\nwait();";
        let c = clean(src);
        assert_eq!(c.text.len(), src.len());
        assert!(!c.text.contains("fork"), "{:?}", c.text);
        assert!(c.text.contains("wait();"));
        assert_eq!(c.strings.len(), 1);
        assert_eq!(c.strings[0].value, "fork(");
        assert_eq!(c.strings[0].line, 1);
    }

    #[test]
    fn parses_allow_annotations() {
        let src = "x(); // threadlint: allow(naked-notify, wait-not-in-loop)\ny();";
        let c = clean(src);
        assert_eq!(c.allows.len(), 1);
        assert_eq!(c.allows[0].line, 1);
        assert_eq!(c.allows[0].lints, vec!["naked-notify", "wait-not-in-loop"]);
        assert!(c.is_allowed("naked-notify", 1));
        assert!(c.is_allowed("naked-notify", 2)); // next line covered
        assert!(!c.is_allowed("naked-notify", 3));
        assert!(!c.is_allowed("fork-result-discarded", 1));
    }

    #[test]
    fn nested_block_comments_and_raw_strings() {
        let src = "/* a /* b */ c */ code(r#\"lit \" inside\"#) 'x' 'a";
        let c = clean(src);
        assert!(c.text.contains("code("));
        assert!(!c.text.contains("inside"));
        assert_eq!(c.strings[0].value, "lit \" inside");
        // Lifetime tick survives; char literal is blanked.
        assert!(c.text.contains('\''));
        assert!(!c.text.contains("'x'"));
    }

    #[test]
    fn char_escape_and_byte_strings() {
        let src = "m('\\n'); b\"bytes\" r\"raw\"";
        let c = clean(src);
        assert!(!c.text.contains("\\n"));
        assert_eq!(c.strings.len(), 2);
        assert_eq!(c.strings[0].value, "bytes");
        assert_eq!(c.strings[1].value, "raw");
    }

    #[test]
    fn escaped_quote_char_literal_is_fully_consumed() {
        // `'\''` once scanned 3 bytes instead of 4, leaving a stray
        // quote in the cleaned text.
        let src = "let q = '\\''; g.wait(cv);";
        let c = clean(src);
        assert!(c.text.contains("wait("));
        assert!(!c.text.contains('\''), "{:?}", c.text);
    }

    #[test]
    fn wait_inside_raw_strings_is_blanked() {
        let src = "let a = r\"g.wait(cv);\"; let b = r#\"ctx.enter(m)\"#; let c = br##\"fork(\"##;";
        let c = clean(src);
        assert!(!c.text.contains("wait"), "{:?}", c.text);
        assert!(!c.text.contains("enter"), "{:?}", c.text);
        assert!(!c.text.contains("fork"), "{:?}", c.text);
        assert_eq!(c.strings.len(), 3);
        assert_eq!(c.strings[2].value, "fork(");
    }

    #[test]
    fn multiline_raw_string_keeps_line_numbers() {
        let src = "let a = r#\"one\ntwo\ng.wait(cv);\n\"#;\nctx.notify(cv);";
        let c = clean(src);
        assert!(!c.text.contains("wait("), "{:?}", c.text);
        let at = c.text.find("notify").expect("notify survives");
        assert_eq!(c.line_of(at), 5);
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let src = "let r#type = 1; g.wait(cv);";
        let c = clean(src);
        assert!(c.text.contains("wait("), "{:?}", c.text);
    }

    #[test]
    fn nested_block_comment_hides_calls_at_any_depth() {
        let src = "/* outer /* inner g.wait(cv); */ g.enter(m); */ ctx.notify(cv);";
        let c = clean(src);
        assert!(
            !c.text.contains("wait") && !c.text.contains("enter"),
            "{:?}",
            c.text
        );
        assert!(c.text.contains("notify"));
    }

    #[test]
    fn line_of_counts_newlines() {
        let c = clean("a\nb\nc");
        assert_eq!(c.line_of(0), 1);
        assert_eq!(c.line_of(2), 2);
        assert_eq!(c.line_of(4), 3);
    }

    #[test]
    fn multibyte_chars_do_not_desync_offsets() {
        let src = "let § = \"π\"; wait()";
        let c = clean(src);
        assert_eq!(c.text.len(), src.len());
        assert!(c.text.contains("wait()"));
        assert_eq!(c.strings[0].value, "π");
    }
}
