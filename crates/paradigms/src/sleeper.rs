//! Sleepers (§4.3): threads that repeatedly wait for a trigger, run
//! briefly, and wait again.
//!
//! Examples from the paper: "call this procedure in K seconds; blink the
//! cursor in M milliseconds; check for network connection timeout every
//! T seconds", cache managers that throw away aged values, and service
//! callbacks (garbage-collector finalization, filesystem change
//! notification) moved off time-critical paths onto a work queue
//! serviced by a sleeper.
//!
//! Using FORK per sleeper "has fallen into disfavor ... 100 kilobytes
//! for each of hundreds of sleepers' stacks is just too expensive"; the
//! `PeriodicalProcess` encapsulation keeps the little bit of state in a
//! closure instead. [`Periodical`] is that encapsulation; it is counted
//! under *encapsulated forks* in Table 4 while its dynamic behaviour is a
//! sleeper.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pcr::{Priority, SimDuration, ThreadCtx, ThreadId};

use crate::pump::BoundedQueue;

/// Cancellation handle for a periodic sleeper.
#[derive(Clone)]
pub struct SleeperHandle {
    cancelled: Arc<AtomicBool>,
    tid: ThreadId,
}

impl SleeperHandle {
    /// Asks the sleeper to exit at its next wakeup.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// True once cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// The sleeper thread's id.
    pub fn tid(&self) -> ThreadId {
        self.tid
    }
}

/// The `PeriodicalFork`/`PeriodicalProcess` encapsulation: runs `tick`
/// every `period` until cancelled. State lives in the closure.
///
/// The period is subject to the runtime's timer granularity, exactly as
/// PCR timeouts were.
pub struct Periodical;

impl Periodical {
    /// Spawns the periodic sleeper.
    pub fn spawn<F>(
        ctx: &ThreadCtx,
        name: &str,
        priority: Priority,
        period: SimDuration,
        mut tick: F,
    ) -> SleeperHandle
    where
        F: FnMut(&ThreadCtx) + Send + 'static,
    {
        let cancelled = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&cancelled);
        let tid = ctx
            .fork_detached_prio(name, priority, move |ctx| {
                while !flag.load(Ordering::Relaxed) {
                    ctx.sleep(period);
                    if flag.load(Ordering::Relaxed) {
                        break;
                    }
                    tick(ctx);
                }
            })
            .expect("fork periodical");
        SleeperHandle { cancelled, tid }
    }
}

/// A queue-serviced sleeper (§4.3's callback pattern): client code
/// enqueues work items; the sleeper thread services them, keeping the
/// producers (garbage collector, filesystem) off the critical path.
///
/// Returns the handle and the work queue to enqueue into.
pub fn spawn_service_sleeper<T, F>(
    ctx: &ThreadCtx,
    name: &str,
    priority: Priority,
    queue_capacity: usize,
    cost_per_item: SimDuration,
    mut service: F,
) -> (SleeperHandle, BoundedQueue<T>)
where
    T: Send + 'static,
    F: FnMut(&ThreadCtx, T) + Send + 'static,
{
    let queue = BoundedQueue::new(ctx, &format!("{name}.work"), queue_capacity, None);
    let q = queue.clone();
    let cancelled = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&cancelled);
    let tid = ctx
        .fork_detached_prio(name, priority, move |ctx| {
            while let Some(item) = q.take(ctx) {
                if flag.load(Ordering::Relaxed) {
                    break;
                }
                ctx.work(cost_per_item);
                service(ctx, item);
            }
        })
        .expect("fork service sleeper");
    (SleeperHandle { cancelled, tid }, queue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::{millis, secs, Monitor, RunLimit, Sim, SimConfig};

    #[test]
    fn periodical_ticks_at_period() {
        let mut sim = Sim::new(SimConfig::default());
        let count: Monitor<u32> = sim.monitor("count", 0);
        let c = count.clone();
        let h = sim.fork_root("driver", Priority::DEFAULT, move |ctx| {
            let c2 = c.clone();
            let handle =
                Periodical::spawn(ctx, "blinker", Priority::of(5), millis(100), move |ctx| {
                    let mut g = ctx.enter(&c2);
                    g.with_mut(|n| *n += 1);
                });
            ctx.sleep_precise(secs(1));
            handle.cancel();
            let g = ctx.enter(&c);
            g.with(|n| *n)
        });
        sim.run(RunLimit::For(secs(3)));
        let ticks = h.into_result().unwrap().unwrap();
        // A 100ms+epsilon sleep quantizes up to the next 50ms tick, so the
        // effective period is 150ms: ~6 ticks over the first second.
        assert!((5..=7).contains(&ticks), "ticks = {ticks}");
    }

    #[test]
    fn periodical_respects_timer_granularity() {
        // A 10ms period under the default 50ms granularity ticks at 50ms.
        let mut sim = Sim::new(SimConfig::default());
        let count: Monitor<u32> = sim.monitor("count", 0);
        let c = count.clone();
        let h = sim.fork_root("driver", Priority::DEFAULT, move |ctx| {
            let c2 = c.clone();
            let _h = Periodical::spawn(ctx, "fast?", Priority::of(5), millis(10), move |ctx| {
                let mut g = ctx.enter(&c2);
                g.with_mut(|n| *n += 1);
            });
            ctx.sleep_precise(secs(1));
            let g = ctx.enter(&c);
            g.with(|n| *n)
        });
        sim.run(RunLimit::For(secs(2)));
        let ticks = h.into_result().unwrap().unwrap();
        assert!(
            (18..=21).contains(&ticks),
            "expected ~20 ticks at 50ms granularity, got {ticks}"
        );
    }

    #[test]
    fn cancel_stops_future_ticks() {
        let mut sim = Sim::new(SimConfig::default());
        let count: Monitor<u32> = sim.monitor("count", 0);
        let c = count.clone();
        let h = sim.fork_root("driver", Priority::DEFAULT, move |ctx| {
            let c2 = c.clone();
            let handle = Periodical::spawn(ctx, "p", Priority::of(5), millis(50), move |ctx| {
                let mut g = ctx.enter(&c2);
                g.with_mut(|n| *n += 1);
            });
            ctx.sleep_precise(millis(220));
            handle.cancel();
            assert!(handle.is_cancelled());
            let at_cancel = {
                let g = ctx.enter(&c);
                g.with(|n| *n)
            };
            ctx.sleep_precise(millis(500));
            let after = {
                let g = ctx.enter(&c);
                g.with(|n| *n)
            };
            (at_cancel, after)
        });
        sim.run(RunLimit::For(secs(2)));
        let (at_cancel, after) = h.into_result().unwrap().unwrap();
        // 50ms+epsilon quantizes to 100ms ticks: 2 ticks by t=220ms.
        assert!(at_cancel >= 2, "at_cancel = {at_cancel}");
        // At most one more tick could have been in flight at cancel time.
        assert!(after <= at_cancel + 1, "{after} > {at_cancel}+1");
    }

    #[test]
    fn service_sleeper_processes_queue() {
        let mut sim = Sim::new(SimConfig::default());
        let seen: Monitor<Vec<u32>> = sim.monitor("seen", Vec::new());
        let s = seen.clone();
        let h = sim.fork_root("gc", Priority::of(6), move |ctx| {
            let s2 = s.clone();
            let (_handle, queue) = spawn_service_sleeper(
                ctx,
                "finalizer",
                Priority::of(3),
                16,
                millis(1),
                move |ctx, item: u32| {
                    let mut g = ctx.enter(&s2);
                    g.with_mut(|v| v.push(item));
                },
            );
            for i in 0..5 {
                queue.put(ctx, i); // Cheap enqueue on the critical path.
            }
            ctx.sleep_precise(millis(100));
            let g = ctx.enter(&s);
            g.with(|v| v.clone())
        });
        sim.run(RunLimit::For(secs(2)));
        assert_eq!(h.into_result().unwrap().unwrap(), vec![0, 1, 2, 3, 4]);
    }
}
