//! `DeferredValue` — defer work whose *result* is wanted later (§4.1).
//!
//! Most Cedar work deferrers were fire-and-forget, but some deferred
//! work whose value the caller eventually needs (the FORK/JOIN shape).
//! `DeferredValue` packages that: the fork happens now, the caller keeps
//! a handle, and the first demand for the value blocks (on a monitor
//! condition, not JOIN, so the handle is cloneable and the value can be
//! read by several threads).

use pcr::{Condition, ForkError, Monitor, Priority, ThreadCtx};

/// State of a deferred computation.
enum Slot<T> {
    Pending,
    Ready(T),
    Failed(String),
}

/// A cloneable handle to a value being computed by a deferred thread.
pub struct DeferredValue<T: Clone + Send + 'static> {
    slot: Monitor<Slot<T>>,
    ready: Condition,
}

impl<T: Clone + Send + 'static> Clone for DeferredValue<T> {
    fn clone(&self) -> Self {
        DeferredValue {
            slot: self.slot.clone(),
            ready: self.ready.clone(),
        }
    }
}

impl<T: Clone + Send + 'static> DeferredValue<T> {
    /// Forks `f` as deferred work; the returned handle yields its value.
    pub fn spawn<F>(
        ctx: &ThreadCtx,
        name: &str,
        priority: Priority,
        f: F,
    ) -> Result<Self, ForkError>
    where
        F: FnOnce(&ThreadCtx) -> T + Send + 'static,
    {
        let slot: Monitor<Slot<T>> = ctx.new_monitor(&format!("{name}.slot"), Slot::Pending);
        let ready = ctx.new_condition(&slot, &format!("{name}.ready"), Some(pcr::millis(50)));
        let (s2, r2) = (slot.clone(), ready.clone());
        // The worker is forked (not joined): failures are captured into
        // the slot by a supervising wrapper thread.
        let name2 = name.to_string();
        ctx.fork_detached_prio(&format!("{name}.supervisor"), priority, move |ctx| {
            let h = ctx.fork(&name2, f).expect("fork deferred worker");
            let result = ctx.join(h);
            let mut g = ctx.enter(&s2);
            g.with_mut(|s| {
                *s = match result {
                    Ok(v) => Slot::Ready(v),
                    Err(e) => Slot::Failed(e.to_string()),
                }
            });
            g.broadcast(&r2);
        })?;
        Ok(DeferredValue { slot, ready })
    }

    /// True once the value (or failure) is available.
    pub fn is_ready(&self, ctx: &ThreadCtx) -> bool {
        let g = ctx.enter(&self.slot);
        g.with(|s| !matches!(s, Slot::Pending))
    }

    /// Blocks until the deferred work finishes; returns its value, or
    /// the panic message if it panicked.
    pub fn get(&self, ctx: &ThreadCtx) -> Result<T, String> {
        let mut g = ctx.enter(&self.slot);
        g.wait_until(&self.ready, |s| !matches!(s, Slot::Pending));
        g.with(|s| match s {
            Slot::Ready(v) => Ok(v.clone()),
            Slot::Failed(e) => Err(e.clone()),
            Slot::Pending => unreachable!("wait_until guaranteed progress"),
        })
    }

    /// Non-blocking read.
    pub fn try_get(&self, ctx: &ThreadCtx) -> Option<Result<T, String>> {
        let g = ctx.enter(&self.slot);
        g.with(|s| match s {
            Slot::Pending => None,
            Slot::Ready(v) => Some(Ok(v.clone())),
            Slot::Failed(e) => Some(Err(e.clone())),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::{millis, secs, RunLimit, Sim, SimConfig};

    #[test]
    fn get_blocks_until_ready() {
        let mut sim = Sim::new(SimConfig::default());
        let h = sim.fork_root("caller", Priority::of(5), move |ctx| {
            let d = DeferredValue::spawn(ctx, "render", Priority::of(3), |ctx| {
                ctx.work(millis(30));
                42u32
            })
            .unwrap();
            assert!(!d.is_ready(ctx));
            let t0 = ctx.now();
            let v = d.get(ctx).unwrap();
            (v, ctx.now().since(t0))
        });
        sim.run(RunLimit::For(secs(5)));
        let (v, waited) = h.into_result().unwrap().unwrap();
        assert_eq!(v, 42);
        assert!(waited >= millis(30), "waited {waited}");
    }

    #[test]
    fn several_readers_share_one_computation() {
        let mut sim = Sim::new(SimConfig::default());
        let h = sim.fork_root("caller", Priority::of(5), move |ctx| {
            let d = DeferredValue::spawn(ctx, "shared", Priority::of(3), |ctx| {
                ctx.work(millis(10));
                7u32
            })
            .unwrap();
            let readers: Vec<_> = (0..3)
                .map(|i| {
                    let d = d.clone();
                    ctx.fork(&format!("r{i}"), move |ctx| d.get(ctx).unwrap())
                        .unwrap()
                })
                .collect();
            readers
                .into_iter()
                .map(|r| ctx.join(r).unwrap())
                .sum::<u32>()
        });
        sim.run(RunLimit::For(secs(5)));
        assert_eq!(h.into_result().unwrap().unwrap(), 21);
    }

    #[test]
    fn failure_is_reported_not_propagated() {
        let mut sim = Sim::new(SimConfig::default());
        let h = sim.fork_root("caller", Priority::of(5), move |ctx| {
            let d: DeferredValue<u32> =
                DeferredValue::spawn(ctx, "doomed", Priority::of(3), |_ctx| {
                    panic!("render failed")
                })
                .unwrap();
            d.get(ctx)
        });
        sim.run(RunLimit::For(secs(5)));
        let err = h.into_result().unwrap().unwrap().unwrap_err();
        assert!(err.contains("render failed"), "{err}");
    }

    #[test]
    fn try_get_is_nonblocking() {
        let mut sim = Sim::new(SimConfig::default());
        let h = sim.fork_root("caller", Priority::of(5), move |ctx| {
            let d = DeferredValue::spawn(ctx, "slow", Priority::of(3), |ctx| {
                ctx.work(millis(50));
                1u32
            })
            .unwrap();
            let early = d.try_get(ctx);
            ctx.sleep_precise(millis(100));
            let late = d.try_get(ctx);
            (early.is_none(), late == Some(Ok(1)))
        });
        sim.run(RunLimit::For(secs(5)));
        let (early_none, late_ready) = h.into_result().unwrap().unwrap();
        assert!(early_none);
        assert!(late_ready);
    }
}
