//! One-shots (§4.3): sleepers that sleep, run once, and go away.
//!
//! The paper's running example is the *guarded button* ("must be pressed
//! twice, in close, but not too close succession ... They usually look
//! like ~Button~ on the screen"): after the first press a one-shot
//! sleeps through an *arming period* during which a second click is
//! rejected; then the button arms; if the timeout expires without a
//! second click, the one-shot repaints the guard.
//!
//! [`delayed_fork`] is the `DelayedFork` encapsulation ("only used in our window
//! systems", counted under encapsulated forks in Table 4).

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;

use pcr::{Priority, SimDuration, ThreadCtx, ThreadId};

/// Handle to a scheduled one-shot.
#[derive(Clone)]
pub struct OneShot {
    cancelled: Arc<AtomicBool>,
    fired: Arc<AtomicBool>,
    tid: ThreadId,
}

impl OneShot {
    /// Cancels the one-shot if it has not fired yet. Returns `true` if
    /// the cancellation happened in time.
    pub fn cancel(&self) -> bool {
        if self.fired.load(Ordering::Relaxed) {
            return false;
        }
        self.cancelled.store(true, Ordering::Relaxed);
        !self.fired.load(Ordering::Relaxed)
    }

    /// True once the action has run.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }

    /// The one-shot thread's id.
    pub fn tid(&self) -> ThreadId {
        self.tid
    }
}

/// The `DelayedFork` encapsulation: "calls a procedure at some time in
/// the future". The delay is subject to the runtime's timer granularity.
pub fn delayed_fork<F>(
    ctx: &ThreadCtx,
    name: &str,
    priority: Priority,
    delay: SimDuration,
    f: F,
) -> OneShot
where
    F: FnOnce(&ThreadCtx) + Send + 'static,
{
    let cancelled = Arc::new(AtomicBool::new(false));
    let fired = Arc::new(AtomicBool::new(false));
    let (c, fl) = (Arc::clone(&cancelled), Arc::clone(&fired));
    let tid = ctx
        .fork_detached_prio(name, priority, move |ctx| {
            ctx.sleep(delay);
            if c.load(Ordering::Relaxed) {
                return;
            }
            fl.store(true, Ordering::Relaxed);
            f(ctx);
        })
        .expect("fork one-shot");
    OneShot {
        cancelled,
        fired,
        tid,
    }
}

/// Guarded-button states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GuardState {
    /// Showing the guard ("~Button~"); a press starts the arming period.
    Guarded,
    /// First press seen; second presses are rejected (too soon).
    Arming,
    /// Armed ("Button"); a press fires the action.
    Armed,
}

const GUARDED: u8 = 0;
const ARMING: u8 = 1;
const ARMED: u8 = 2;

/// A guarded button driven by two chained one-shots, as in Cedar.
///
/// Presses go through [`GuardedButton::press`]; the button fires only on
/// a press that lands in the armed window (after `arm_after`, before the
/// `disarm_after` timeout repaints the guard).
#[derive(Clone)]
pub struct GuardedButton {
    state: Arc<AtomicU8>,
    arm_after: SimDuration,
    disarm_after: SimDuration,
    priority: Priority,
}

impl GuardedButton {
    /// Creates a guarded button. `arm_after` is the "not too close"
    /// arming period; `disarm_after` is the armed window before the
    /// one-shot repaints the guard.
    pub fn new(arm_after: SimDuration, disarm_after: SimDuration) -> Self {
        GuardedButton {
            state: Arc::new(AtomicU8::new(GUARDED)),
            arm_after,
            disarm_after,
            priority: Priority::of(5),
        }
    }

    /// Current state.
    pub fn state(&self) -> GuardState {
        match self.state.load(Ordering::Relaxed) {
            GUARDED => GuardState::Guarded,
            ARMING => GuardState::Arming,
            _ => GuardState::Armed,
        }
    }

    /// Registers a press. Returns `true` if the press fired the button's
    /// action (i.e. it landed in the armed window).
    pub fn press(&self, ctx: &ThreadCtx) -> bool {
        match self.state.load(Ordering::Relaxed) {
            GUARDED => {
                self.state.store(ARMING, Ordering::Relaxed);
                let st = Arc::clone(&self.state);
                let disarm = self.disarm_after;
                let prio = self.priority;
                // One-shot #1: end of arming period -> show "Button".
                let _ = delayed_fork(ctx, "guard-arm", prio, self.arm_after, move |ctx| {
                    st.store(ARMED, Ordering::Relaxed);
                    let st2 = Arc::clone(&st);
                    // One-shot #2: armed window expires -> repaint guard.
                    let _ = delayed_fork(ctx, "guard-disarm", prio, disarm, move |_ctx| {
                        // Only disarm if nobody fired meanwhile.
                        let _ = st2.compare_exchange(
                            ARMED,
                            GUARDED,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        );
                    });
                });
                false
            }
            ARMING => false, // Too soon: rejected.
            _ => {
                // Armed: fire and re-guard.
                self.state.store(GUARDED, Ordering::Relaxed);
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::{millis, secs, Monitor, RunLimit, Sim, SimConfig};

    #[test]
    fn delayed_fork_fires_after_delay() {
        let mut sim = Sim::new(SimConfig::default());
        let fired_at: Monitor<Option<pcr::SimTime>> = sim.monitor("fired", None);
        let f = fired_at.clone();
        let h = sim.fork_root("driver", Priority::DEFAULT, move |ctx| {
            let f2 = f.clone();
            let shot = delayed_fork(ctx, "shot", Priority::of(5), millis(100), move |ctx| {
                let mut g = ctx.enter(&f2);
                let now = ctx.now();
                g.with_mut(|v| *v = Some(now));
            });
            ctx.sleep_precise(millis(300));
            assert!(shot.fired());
            let g = ctx.enter(&f);
            g.with(|v| *v)
        });
        sim.run(RunLimit::For(secs(2)));
        let t = h.into_result().unwrap().unwrap().expect("fired");
        // The sleep is issued shortly after t=0 and quantized up to the
        // 50ms timer tick: 100ms + epsilon rounds to the 150ms tick.
        assert!((100_000..=150_100).contains(&t.as_micros()), "fired at {t}");
    }

    #[test]
    fn cancelled_one_shot_never_fires() {
        let mut sim = Sim::new(SimConfig::default());
        let h = sim.fork_root("driver", Priority::DEFAULT, move |ctx| {
            let shot = delayed_fork(ctx, "shot", Priority::of(5), millis(100), |_ctx| {
                panic!("must not fire");
            });
            ctx.work(millis(1));
            assert!(shot.cancel());
            ctx.sleep_precise(millis(300));
            shot.fired()
        });
        let r = sim.run(RunLimit::For(secs(2)));
        assert!(!r.deadlocked());
        assert!(!h.into_result().unwrap().unwrap());
        assert_eq!(sim.stats().panics, 0);
    }

    #[test]
    fn cancel_after_fire_reports_failure() {
        let mut sim = Sim::new(SimConfig::default());
        let h = sim.fork_root("driver", Priority::DEFAULT, move |ctx| {
            let shot = delayed_fork(ctx, "shot", Priority::of(5), millis(50), |_ctx| {});
            ctx.sleep_precise(millis(200));
            shot.cancel()
        });
        sim.run(RunLimit::For(secs(2)));
        assert!(!h.into_result().unwrap().unwrap());
    }

    #[test]
    fn guarded_button_requires_two_well_spaced_presses() {
        let mut sim = Sim::new(SimConfig::default());
        let h = sim.fork_root("ui", Priority::of(5), move |ctx| {
            let b = GuardedButton::new(millis(100), millis(500));
            let mut outcomes = Vec::new();
            outcomes.push(b.press(ctx)); // First press: starts arming.
            ctx.sleep_precise(millis(20));
            outcomes.push(b.press(ctx)); // Too soon: rejected.
            ctx.sleep_precise(millis(200)); // Arming period passed.
            assert_eq!(b.state(), GuardState::Armed);
            outcomes.push(b.press(ctx)); // Fires.
            assert_eq!(b.state(), GuardState::Guarded);
            outcomes
        });
        sim.run(RunLimit::For(secs(3)));
        assert_eq!(h.into_result().unwrap().unwrap(), vec![false, false, true]);
    }

    #[test]
    fn guarded_button_disarms_after_timeout() {
        let mut sim = Sim::new(SimConfig::default());
        let h = sim.fork_root("ui", Priority::of(5), move |ctx| {
            let b = GuardedButton::new(millis(100), millis(200));
            let _ = b.press(ctx);
            ctx.sleep_precise(millis(150));
            assert_eq!(b.state(), GuardState::Armed);
            // Let the armed window expire.
            ctx.sleep_precise(millis(400));
            assert_eq!(b.state(), GuardState::Guarded);
            // A press now restarts the guard sequence instead of firing.
            b.press(ctx)
        });
        sim.run(RunLimit::For(secs(3)));
        assert!(!h.into_result().unwrap().unwrap());
    }
}
