//! Defer work (§4.1): the single most common use of forking.
//!
//! "A procedure can often reduce the latency seen by its clients by
//! forking a thread to do work not required for the procedure's return
//! value." Cedar practice was to introduce work deferrers freely —
//! forking to print a document, send mail, create or update a window —
//! and some threads (like the Notifier) are so critical to
//! responsiveness that they fork almost *any* work beyond noticing what
//! work needs to be done, playing the role of interrupt handlers.

use pcr::{ForkError, Priority, SimDuration, ThreadCtx, ThreadId};

/// Forks `f` as deferred work and returns immediately.
///
/// The deferred thread is detached (fire-and-forget), matching the
/// common Cedar shape where results are reported through a separate
/// window rather than back to the caller.
pub fn defer<F>(ctx: &ThreadCtx, name: &str, f: F) -> Result<ThreadId, ForkError>
where
    F: FnOnce(&ThreadCtx) + Send + 'static,
{
    ctx.fork_detached(name, f)
}

/// Forks deferred work at an explicit (typically lower) priority —
/// "forking the real work allows it to be done in a lower priority
/// thread and frees the critical thread to respond to the next event".
pub fn defer_at<F>(
    ctx: &ThreadCtx,
    name: &str,
    priority: Priority,
    f: F,
) -> Result<ThreadId, ForkError>
where
    F: FnOnce(&ThreadCtx) + Send + 'static,
{
    ctx.fork_detached_prio(name, priority, f)
}

/// A critical-thread helper modelling the Notifier pattern: handle an
/// event by doing only `notice_cost` of work inline, deferring `rest` to
/// a lower-priority thread.
///
/// Returns the deferred thread's id.
pub fn notice_then_defer<F>(
    ctx: &ThreadCtx,
    name: &str,
    notice_cost: SimDuration,
    defer_priority: Priority,
    rest: F,
) -> Result<ThreadId, ForkError>
where
    F: FnOnce(&ThreadCtx) + Send + 'static,
{
    ctx.work(notice_cost);
    defer_at(ctx, name, defer_priority, rest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::{millis, secs, Monitor, RunLimit, Sim, SimConfig, StopReason};

    #[test]
    fn defer_returns_before_work_completes() {
        let mut sim = Sim::new(SimConfig::default());
        let log: Monitor<Vec<&'static str>> = sim.monitor("log", Vec::new());
        let l = log.clone();
        let caller_done_at = sim.fork_root("caller", Priority::DEFAULT, move |ctx| {
            let l2 = l.clone();
            defer(ctx, "print-document", move |ctx| {
                ctx.work(millis(200)); // Long print job.
                let mut g = ctx.enter(&l2);
                g.with_mut(|v| v.push("printed"));
            })
            .unwrap();
            let mut g = ctx.enter(&l);
            g.with_mut(|v| v.push("returned"));
            ctx.now()
        });
        let r = sim.run(RunLimit::For(secs(5)));
        assert_eq!(r.reason, StopReason::AllExited);
        // The caller returned in well under the 200ms the job took.
        let t = caller_done_at.into_result().unwrap().unwrap();
        assert!(t.as_micros() < 10_000, "caller finished at {t}");
    }

    #[test]
    fn defer_at_lower_priority_does_not_preempt_critical_thread() {
        let mut sim = Sim::new(SimConfig::default());
        // The critical thread handles 10 events; each defers 20ms of work
        // to priority 2. Total critical-path latency stays tiny.
        let h = sim.fork_root("notifier", Priority::of(6), move |ctx| {
            let start = ctx.now();
            for i in 0..10 {
                notice_then_defer(
                    ctx,
                    &format!("event-work-{i}"),
                    pcr::micros(100),
                    Priority::of(2),
                    |ctx| ctx.work(millis(20)),
                )
                .unwrap();
            }
            ctx.now().since(start)
        });
        sim.run(RunLimit::For(secs(5)));
        let critical_path = h.into_result().unwrap().unwrap();
        // 10 events × (100µs notice + fork cost) ≪ 10 × 20ms of real work.
        assert!(
            critical_path < millis(5),
            "critical path took {critical_path}"
        );
    }

    #[test]
    fn deferred_threads_are_children_of_the_forker() {
        let mut sim = Sim::new(SimConfig::default());
        let _ = sim.fork_root("caller", Priority::DEFAULT, |ctx| {
            defer(ctx, "bg", |ctx| ctx.work(millis(1))).unwrap();
        });
        sim.run(RunLimit::ToCompletion);
        let caller = sim.threads_iter().find(|t| t.name == "caller").unwrap();
        let bg = sim.threads_iter().find(|t| t.name == "bg").unwrap();
        assert_eq!(bg.parent, Some(caller.tid));
        assert_eq!(bg.generation, 1);
    }
}
