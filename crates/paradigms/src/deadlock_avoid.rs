//! Deadlock avoiders (§4.4): FORK to escape lock-order constraints.
//!
//! "After adjusting the boundary between two windows the contents of the
//! windows must be repainted. The boundary-moving thread forks new
//! threads to do the repainting because it already holds some, but not
//! all of the locks needed for the repainting. ... It is far simpler to
//! fork the painting threads, unwind the adjuster completely and let the
//! painters acquire the locks that they need in separate threads."
//!
//! The second shape is forking callbacks from a service to a client, so
//! the service thread can proceed and release locks the client will
//! need — and so the service is insulated from client failures.
//!
//! This module also provides a [`LockOrderRegistry`] that records
//! acquisition orders and detects violations of a global lock order —
//! the "very, very complicated" overall locking schemes the paper
//! alludes to become checkable.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::Mutex as PlMutex;
use pcr::{ForkError, Monitor, MonitorGuard, MonitorId, ThreadCtx, ThreadId};

/// Forks `f` so it can acquire locks in a legal order that the caller —
/// already inside one or more monitors — cannot. Semantically a
/// detached fork; the name records intent at the call site.
pub fn fork_to_avoid_deadlock<F>(ctx: &ThreadCtx, name: &str, f: F) -> Result<ThreadId, ForkError>
where
    F: FnOnce(&ThreadCtx) + Send + 'static,
{
    ctx.fork_detached(name, f)
}

/// A violation of the acquired-before order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrderViolation {
    /// The thread that acquired out of order.
    pub tid: ThreadId,
    /// The monitor it acquired.
    pub acquired: MonitorId,
    /// The held monitor that should have come later.
    pub while_holding: MonitorId,
}

#[derive(Default)]
struct RegistryState {
    /// Edges a -> b meaning "a was acquired before b while a was held".
    edges: HashMap<u32, HashSet<u32>>,
    /// Monitors currently held per thread, in acquisition order.
    held: HashMap<ThreadId, Vec<MonitorId>>,
    violations: Vec<OrderViolation>,
}

/// Records monitor acquisition orders across threads and flags pairs
/// acquired in both orders — the precondition for ABBA deadlock.
///
/// Wrap entries with [`LockOrderRegistry::enter`]; drop the returned
/// guard normally.
#[derive(Clone, Default)]
pub struct LockOrderRegistry {
    state: Arc<PlMutex<RegistryState>>,
}

impl LockOrderRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enters `m` through the registry, recording the acquisition edge
    /// and checking it against the observed global order.
    pub fn enter<'a, T: Send + 'static>(
        &self,
        ctx: &'a ThreadCtx,
        m: &'a Monitor<T>,
    ) -> TrackedGuard<'a, T> {
        let guard = ctx.enter(m);
        let mut st = self.state.lock();
        let held = st.held.entry(ctx.tid()).or_default().clone();
        for &h in &held {
            // h acquired-before m.id while h held: edge h -> m.
            st.edges
                .entry(h.as_u32())
                .or_default()
                .insert(m.id().as_u32());
            // Violation if the reverse edge already exists.
            if st
                .edges
                .get(&m.id().as_u32())
                .is_some_and(|s| s.contains(&h.as_u32()))
            {
                st.violations.push(OrderViolation {
                    tid: ctx.tid(),
                    acquired: m.id(),
                    while_holding: h,
                });
            }
        }
        st.held.entry(ctx.tid()).or_default().push(m.id());
        TrackedGuard {
            guard: Some(guard),
            registry: self.clone(),
            tid: ctx.tid(),
            mid: m.id(),
        }
    }

    /// Violations observed so far.
    pub fn violations(&self) -> Vec<OrderViolation> {
        self.state.lock().violations.clone()
    }

    fn note_exit(&self, tid: ThreadId, mid: MonitorId) {
        let mut st = self.state.lock();
        if let Some(held) = st.held.get_mut(&tid) {
            if let Some(pos) = held.iter().rposition(|&m| m == mid) {
                held.remove(pos);
            }
        }
    }
}

/// A monitor guard that unregisters from the [`LockOrderRegistry`] on
/// drop. Derefs to the underlying [`MonitorGuard`].
pub struct TrackedGuard<'a, T: Send + 'static> {
    guard: Option<MonitorGuard<'a, T>>,
    registry: LockOrderRegistry,
    tid: ThreadId,
    mid: MonitorId,
}

impl<'a, T: Send + 'static> TrackedGuard<'a, T> {
    /// Access the underlying guard.
    pub fn guard(&mut self) -> &mut MonitorGuard<'a, T> {
        self.guard.as_mut().expect("guard present until drop")
    }

    /// Reads the protected data.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        self.guard.as_ref().expect("guard present").with(f)
    }

    /// Mutates the protected data.
    pub fn with_mut<R>(&mut self, f: impl FnOnce(&mut T) -> R) -> R {
        self.guard.as_mut().expect("guard present").with_mut(f)
    }
}

impl<'a, T: Send + 'static> Drop for TrackedGuard<'a, T> {
    fn drop(&mut self) {
        drop(self.guard.take());
        self.registry.note_exit(self.tid, self.mid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::{millis, secs, Priority, RunLimit, Sim, SimConfig, StopReason};

    #[test]
    fn fork_escapes_a_real_deadlock() {
        // The window-adjuster shape. Thread A holds `layout` and needs
        // `content`; a painter holds `content` and needs `layout`.
        // Without forking this ABBA-deadlocks (checked in the companion
        // test below); with fork-to-avoid, A forks the repaint instead of
        // taking `content` itself.
        let mut sim = Sim::new(SimConfig::default());
        let layout = sim.monitor("layout", 0u32);
        let content = sim.monitor("content", 0u32);
        let (l1, c1) = (layout.clone(), content.clone());
        let _ = sim.fork_root("adjuster", Priority::DEFAULT, move |ctx| {
            let mut g = ctx.enter(&l1);
            g.with_mut(|v| *v += 1);
            ctx.sleep_precise(millis(5)); // threadlint: allow(blocking-call-in-monitor) -- the painter interleaves here.
                                          // Needs the content lock for repainting, but takes it in a
                                          // forked thread after unwinding instead.
            let c2 = c1.clone();
            fork_to_avoid_deadlock(ctx, "repaint", move |ctx| {
                let mut g = ctx.enter(&c2);
                g.with_mut(|v| *v += 1);
            })
            .unwrap();
            drop(g); // Unwind the adjuster completely.
        });
        let (l2, c3) = (layout, content);
        let _ = sim.fork_root("painter", Priority::DEFAULT, move |ctx| {
            let mut g = ctx.enter(&c3);
            g.with_mut(|v| *v += 1);
            ctx.sleep_precise(millis(5)); // threadlint: allow(blocking-call-in-monitor)
            let mut g2 = ctx.enter(&l2);
            g2.with_mut(|v| *v += 1);
        });
        let r = sim.run(RunLimit::For(secs(5)));
        assert_eq!(r.reason, StopReason::AllExited);
    }

    #[test]
    fn without_fork_the_same_shape_deadlocks() {
        let mut sim = Sim::new(SimConfig::default());
        let layout = sim.monitor("layout", 0u32);
        let content = sim.monitor("content", 0u32);
        let (l1, c1) = (layout.clone(), content.clone());
        let _ = sim.fork_root("adjuster", Priority::DEFAULT, move |ctx| {
            let _g = ctx.enter(&l1);
            ctx.sleep_precise(millis(5)); // threadlint: allow(blocking-call-in-monitor) -- both threads hold their first
            let _g2 = ctx.enter(&c1); // threadlint: allow(lock-order-cycle) -- lock before either takes its second.
        });
        let _ = sim.fork_root("painter", Priority::DEFAULT, move |ctx| {
            let _g = ctx.enter(&content);
            ctx.sleep_precise(millis(5)); // threadlint: allow(blocking-call-in-monitor)
            let _g2 = ctx.enter(&layout); // threadlint: allow(lock-order-cycle)
        });
        let r = sim.run(RunLimit::For(secs(5)));
        match r.reason {
            StopReason::Deadlock(report) => {
                assert_eq!(report.blocked.len(), 2);
                let text = report.to_string();
                assert!(text.contains("monitor"), "report: {text}");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn registry_flags_abba_order() {
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.monitor("a", ());
        let b = sim.monitor("b", ());
        let reg = LockOrderRegistry::new();
        let (a1, b1, r1) = (a.clone(), b.clone(), reg.clone());
        let _ = sim.fork_root("t1", Priority::DEFAULT, move |ctx| {
            let _ga = r1.enter(ctx, &a1);
            let _gb = r1.enter(ctx, &b1);
        });
        let r2 = reg.clone();
        let _ = sim.fork_root("t2", Priority::DEFAULT, move |ctx| {
            ctx.sleep_precise(millis(10)); // After t1 released everything.
            let _gb = r2.enter(ctx, &b);
            let _ga = r2.enter(ctx, &a); // threadlint: allow(lock-order-cycle)
        });
        let r = sim.run(RunLimit::For(secs(2)));
        assert_eq!(r.reason, StopReason::AllExited);
        let v = reg.violations();
        assert_eq!(v.len(), 1, "violations: {v:?}");
    }

    #[test]
    fn registry_accepts_consistent_order() {
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.monitor("a", ());
        let b = sim.monitor("b", ());
        let reg = LockOrderRegistry::new();
        for i in 0..3 {
            let (a1, b1, r1) = (a.clone(), b.clone(), reg.clone());
            let _ = sim.fork_root(&format!("t{i}"), Priority::DEFAULT, move |ctx| {
                let mut g = r1.enter(ctx, &a1);
                g.with_mut(|_| {});
                let _gb = r1.enter(ctx, &b1); // threadlint: allow(lock-order-cycle)
            });
        }
        sim.run(RunLimit::ToCompletion);
        assert!(reg.violations().is_empty());
    }
}
