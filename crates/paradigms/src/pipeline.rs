//! A multi-stage pipeline builder over [`crate::pump`] (§4.2).
//!
//! "Though Birrell suggests creating pipelines to exploit parallelism on
//! a multiprocessor, we find them most commonly used in our systems as a
//! programming convenience ... the pipeline is conceptually simpler:
//! tokens just appear in a queue. The programmer needs to understand
//! less about the pieces being connected."
//!
//! The builder connects pump stages through bounded buffers with
//! back-pressure, optionally ending in a slack stage; feeding and
//! closing the source propagates shutdown stage by stage.

use pcr::{Priority, SimDuration, ThreadCtx};

use crate::pump::{spawn_pump, BoundedQueue};

/// A pipeline under construction: `In` is the source item type, `T` the
/// current tail type.
pub struct PipelineBuilder<'a, In: Send + 'static, T: Send + 'static> {
    ctx: &'a ThreadCtx,
    name: String,
    stage: usize,
    capacity: usize,
    priority: Priority,
    source: BoundedQueue<In>,
    tail: BoundedQueue<T>,
}

/// Starts a pipeline: returns a builder whose source queue accepts `T`.
pub fn pipeline<'a, T: Send + 'static>(
    ctx: &'a ThreadCtx,
    name: &str,
    capacity: usize,
    priority: Priority,
) -> PipelineBuilder<'a, T, T> {
    let source = BoundedQueue::new(ctx, &format!("{name}.q0"), capacity, None);
    PipelineBuilder {
        ctx,
        name: name.to_string(),
        stage: 0,
        capacity,
        priority,
        tail: source.clone(),
        source,
    }
}

impl<'a, In: Send + 'static, T: Send + 'static> PipelineBuilder<'a, In, T> {
    /// Appends a pump stage transforming `T -> U` (returning `None`
    /// filters the item out), costing `cost` of CPU per item.
    pub fn stage<U, F>(self, cost: SimDuration, f: F) -> PipelineBuilder<'a, In, U>
    where
        U: Send + 'static,
        F: FnMut(T) -> Option<U> + Send + 'static,
    {
        let stage = self.stage + 1;
        let out: BoundedQueue<U> = BoundedQueue::new(
            self.ctx,
            &format!("{}.q{stage}", self.name),
            self.capacity,
            None,
        );
        spawn_pump(
            self.ctx,
            &format!("{}.stage{stage}", self.name),
            self.priority,
            self.tail,
            out.clone(),
            cost,
            f,
        );
        PipelineBuilder {
            ctx: self.ctx,
            name: self.name,
            stage,
            capacity: self.capacity,
            priority: self.priority,
            source: self.source,
            tail: out,
        }
    }

    /// Finishes the pipeline: put into `source`, take from `sink`;
    /// closing the source drains and closes every stage in turn.
    pub fn build(self) -> Pipeline<In, T> {
        Pipeline {
            source: self.source,
            sink: self.tail,
        }
    }
}

/// Handle pair for a fully built pipeline.
pub struct Pipeline<In: Send + 'static, Out: Send + 'static> {
    /// Feed items here.
    pub source: BoundedQueue<In>,
    /// Collect results here; yields `None` after the source closes and
    /// the stages drain.
    pub sink: BoundedQueue<Out>,
}

/// Builds a two-stage pipeline in one call (the common case).
#[allow(clippy::too_many_arguments)] // stage cost/fn pairs read best flat
pub fn two_stage<In, Mid, Out, F1, F2>(
    ctx: &ThreadCtx,
    name: &str,
    capacity: usize,
    priority: Priority,
    cost1: SimDuration,
    f1: F1,
    cost2: SimDuration,
    f2: F2,
) -> Pipeline<In, Out>
where
    In: Send + 'static,
    Mid: Send + 'static,
    Out: Send + 'static,
    F1: FnMut(In) -> Option<Mid> + Send + 'static,
    F2: FnMut(Mid) -> Option<Out> + Send + 'static,
{
    pipeline::<In>(ctx, name, capacity, priority)
        .stage(cost1, f1)
        .stage(cost2, f2)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::{millis, secs, RunLimit, Sim, SimConfig, StopReason};

    #[test]
    fn three_stage_pipeline_transforms_and_filters() {
        let mut sim = Sim::new(SimConfig::default());
        let h = sim.fork_root("driver", Priority::of(5), move |ctx| {
            let p = pipeline::<u32>(ctx, "p", 8, Priority::of(4))
                .stage(millis(1), |x: u32| x.is_multiple_of(2).then_some(x)) // Filter odds.
                .stage(millis(1), |x: u32| Some(x * 10))
                .stage(millis(1), |x: u32| Some(format!("v{x}")))
                .build();
            for i in 0..10 {
                p.source.put(ctx, i);
            }
            p.source.close(ctx);
            let mut got = Vec::new();
            while let Some(s) = p.sink.take(ctx) {
                got.push(s);
            }
            got
        });
        let r = sim.run(RunLimit::For(secs(10)));
        assert_eq!(r.reason, StopReason::AllExited);
        assert_eq!(
            h.into_result().unwrap().unwrap(),
            vec!["v0", "v20", "v40", "v60", "v80"]
        );
    }

    #[test]
    fn two_stage_helper() {
        let mut sim = Sim::new(SimConfig::default());
        let h = sim.fork_root("driver", Priority::of(5), move |ctx| {
            let p = two_stage(
                ctx,
                "p2",
                4,
                Priority::of(4),
                millis(1),
                |x: u32| Some(x + 1),
                millis(1),
                |x: u32| Some(x * 2),
            );
            for i in 0..5 {
                p.source.put(ctx, i);
            }
            p.source.close(ctx);
            let mut got = Vec::new();
            while let Some(v) = p.sink.take(ctx) {
                got.push(v);
            }
            got
        });
        sim.run(RunLimit::For(secs(10)));
        assert_eq!(h.into_result().unwrap().unwrap(), vec![2, 4, 6, 8, 10]);
    }

    #[test]
    fn backpressure_propagates_to_the_source() {
        // A slow stage with tiny buffers must slow the producer: with
        // capacity 1 the pipeline holds at most ~3 items in flight, so
        // feeding 6 items takes at least three 20ms stage cycles.
        let mut sim = Sim::new(SimConfig::default());
        let h = sim.fork_root("driver", Priority::of(5), move |ctx| {
            let p = pipeline::<u32>(ctx, "bp", 1, Priority::of(4))
                .stage(millis(20), Some)
                .build();
            let source = p.source.clone();
            let feeder = ctx
                .fork("feeder", move |ctx| {
                    let t0 = ctx.now();
                    for i in 0..6 {
                        source.put(ctx, i); // Blocks once buffers fill.
                    }
                    ctx.now().since(t0)
                })
                .unwrap();
            let mut got = 0;
            while got < 6 {
                if p.sink.take(ctx).is_some() {
                    got += 1;
                }
            }
            let fed_at = ctx.join(feeder).unwrap();
            p.source.close(ctx);
            while p.sink.take(ctx).is_some() {}
            fed_at
        });
        sim.run(RunLimit::For(secs(10)));
        let fed_at = h.into_result().unwrap().unwrap();
        assert!(
            fed_at >= millis(40),
            "producer should have been back-pressured, fed in {fed_at}"
        );
    }
}
