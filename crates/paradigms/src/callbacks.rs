//! Fork-boolean callbacks (§4.8, Miscellaneous).
//!
//! "Many modules that do callbacks offer a fork boolean parameter in
//! their interface ... The default is almost always TRUE, meaning the
//! callback will be forked. Unforked callbacks are usually intended for
//! experts, because they make future execution of the calling thread
//! within the module dependent on successful completion of the client
//! callback."

use std::sync::Arc;

use parking_lot::Mutex as PlMutex;
use pcr::{Priority, SimDuration, ThreadCtx};

/// How a registered callback is invoked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallbackMode {
    /// Invoke in a freshly forked thread (the safe default).
    Forked,
    /// Invoke inline in the service thread — fast, but the service is
    /// exposed to the client's failures and lock usage.
    Unforked,
}

type Callback<E> = Arc<dyn Fn(&ThreadCtx, &E) + Send + Sync + 'static>;

struct Registered<E> {
    callback: Callback<E>,
    mode: CallbackMode,
    cost: SimDuration,
}

/// A registry of client callbacks with per-registration fork control.
pub struct CallbackRegistry<E: Clone + Send + Sync + 'static> {
    entries: Arc<PlMutex<Vec<Registered<E>>>>,
    fork_priority: Priority,
}

impl<E: Clone + Send + Sync + 'static> Clone for CallbackRegistry<E> {
    fn clone(&self) -> Self {
        CallbackRegistry {
            entries: Arc::clone(&self.entries),
            fork_priority: self.fork_priority,
        }
    }
}

impl<E: Clone + Send + Sync + 'static> CallbackRegistry<E> {
    /// Creates a registry; forked callbacks run at `fork_priority`.
    pub fn new(fork_priority: Priority) -> Self {
        CallbackRegistry {
            entries: Arc::new(PlMutex::new(Vec::new())),
            fork_priority,
        }
    }

    /// Registers a callback with the default mode (forked — §4.8: "the
    /// default is almost always TRUE").
    pub fn register<F>(&self, cost: SimDuration, f: F)
    where
        F: Fn(&ThreadCtx, &E) + Send + Sync + 'static,
    {
        self.register_with(CallbackMode::Forked, cost, f);
    }

    /// Registers a callback with an explicit mode.
    pub fn register_with<F>(&self, mode: CallbackMode, cost: SimDuration, f: F)
    where
        F: Fn(&ThreadCtx, &E) + Send + Sync + 'static,
    {
        self.entries.lock().push(Registered {
            callback: Arc::new(f),
            mode,
            cost,
        });
    }

    /// Number of registered callbacks.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True if no callbacks are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Delivers `event` to every callback. Forked callbacks cost the
    /// service only the fork; unforked ones charge their full cost (and
    /// their panics!) to the calling thread.
    pub fn invoke(&self, ctx: &ThreadCtx, event: E) {
        let snapshot: Vec<(Callback<E>, CallbackMode, SimDuration)> = self
            .entries
            .lock()
            .iter()
            .map(|r| (Arc::clone(&r.callback), r.mode, r.cost))
            .collect();
        for (i, (cb, mode, cost)) in snapshot.into_iter().enumerate() {
            match mode {
                CallbackMode::Forked => {
                    let ev = event.clone();
                    let _ = ctx.fork_detached_prio(
                        &format!("callback-{i}"),
                        self.fork_priority,
                        move |ctx| {
                            ctx.work(cost);
                            cb(ctx, &ev);
                        },
                    );
                }
                CallbackMode::Unforked => {
                    ctx.work(cost);
                    cb(ctx, &event);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::{millis, secs, Monitor, RunLimit, Sim, SimConfig};

    #[test]
    fn forked_callbacks_do_not_delay_the_service() {
        let mut sim = Sim::new(SimConfig::default());
        let h = sim.fork_root("service", Priority::of(5), move |ctx| {
            let reg: CallbackRegistry<u32> = CallbackRegistry::new(Priority::of(3));
            for _ in 0..4 {
                reg.register(millis(50), |_ctx, _ev| {});
            }
            let start = ctx.now();
            reg.invoke(ctx, 1);
            ctx.now().since(start)
        });
        sim.run(RunLimit::For(secs(2)));
        let service_time = h.into_result().unwrap().unwrap();
        // 4 × 50ms of client work charged elsewhere; service pays ~4 forks.
        assert!(service_time < millis(5), "service took {service_time}");
    }

    #[test]
    fn unforked_callbacks_charge_the_service() {
        let mut sim = Sim::new(SimConfig::default());
        let h = sim.fork_root("service", Priority::of(5), move |ctx| {
            let reg: CallbackRegistry<u32> = CallbackRegistry::new(Priority::of(3));
            reg.register_with(CallbackMode::Unforked, millis(50), |_ctx, _ev| {});
            let start = ctx.now();
            reg.invoke(ctx, 1);
            ctx.now().since(start)
        });
        sim.run(RunLimit::For(secs(2)));
        let service_time = h.into_result().unwrap().unwrap();
        assert!(service_time >= millis(50));
    }

    #[test]
    fn forked_callback_panic_spares_the_service() {
        let mut sim = Sim::new(SimConfig::default());
        let delivered: Monitor<u32> = sim.monitor("delivered", 0);
        let d = delivered.clone();
        let h = sim.fork_root("service", Priority::of(5), move |ctx| {
            let reg: CallbackRegistry<u32> = CallbackRegistry::new(Priority::of(3));
            reg.register(millis(1), |_ctx, _ev| panic!("bad client"));
            let d2 = d.clone();
            reg.register(millis(1), move |ctx, _ev| {
                let mut g = ctx.enter(&d2);
                g.with_mut(|n| *n += 1);
            });
            reg.invoke(ctx, 7);
            ctx.sleep_precise(millis(100));
            let g = ctx.enter(&d);
            g.with(|n| *n)
        });
        sim.run(RunLimit::For(secs(2)));
        assert_eq!(h.into_result().unwrap().unwrap(), 1);
        assert_eq!(sim.stats().panics, 1); // The client thread, not ours.
        let service = sim.threads_iter().find(|t| t.name == "service").unwrap();
        assert!(!service.panicked);
    }

    #[test]
    fn unforked_callback_panic_kills_the_service() {
        let mut sim = Sim::new(SimConfig::default());
        let _ = sim.fork_root("service", Priority::of(5), move |ctx| {
            let reg: CallbackRegistry<u32> = CallbackRegistry::new(Priority::of(3));
            reg.register_with(CallbackMode::Unforked, millis(1), |_ctx, _ev| {
                panic!("bad client")
            });
            reg.invoke(ctx, 7);
        });
        sim.run(RunLimit::For(secs(2)));
        let service = sim.threads_iter().find(|t| t.name == "service").unwrap();
        assert!(service.panicked, "unforked callbacks expose the service");
    }

    #[test]
    fn registry_len() {
        let reg: CallbackRegistry<()> = CallbackRegistry::new(Priority::DEFAULT);
        assert!(reg.is_empty());
        reg.register(SimDuration::ZERO, |_, _| {});
        assert_eq!(reg.len(), 1);
    }
}
