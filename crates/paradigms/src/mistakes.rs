//! The common mistakes of §5.3, reproduced on purpose.
//!
//! Two questionable practices stood out in the paper's code archaeology:
//!
//! 1. **IF-based WAIT** — `IF NOT condition THEN WAIT cv` instead of the
//!    `WHILE` loop. Works "with sufficient constraints on the number and
//!    behavior of the threads using the monitor", then breaks as programs
//!    are modified — [`wait_if`] lets experiments demonstrate exactly
//!    that.
//! 2. **Timeout-masked missing NOTIFYs** — timeouts added "to compensate
//!    for missing NOTIFYs (bugs), instead of fixing the underlying
//!    problem. ... the system can become timeout driven — it apparently
//!    works correctly but slowly." [`LossyNotifyQueue`] is a queue whose
//!    producer drops a configurable fraction of its NOTIFYs;
//!    [`PolledFlag`] is the end state, a CV nobody notifies at all.
//!
//! The module also hosts the rest of the deliberate-mistake menagerie
//! that `threadlint` (the static analyzer) must catch: a naked NOTIFY
//! ([`drive_by_notify`], §5.3), a discarded FORK result
//! ([`fire_and_forget_fork`], §5.4), an ABBA lock-order cycle
//! ([`transfer_ab`]/[`transfer_ba`], §2.6), and the interprocedural
//! trio only the workspace call graph can see: an ABBA threaded
//! through helpers ([`deep_transfer_ab`]/[`deep_transfer_ba`]), a WAIT
//! reached with an outer monitor still pinned ([`nested_wait_outer`],
//! §5.3), and a lock-holder stall hidden one call deep
//! ([`checkpoint_under_lock`], §6.1). Every site carries a
//! `// threadlint: allow(…)` annotation: the analyzer still reports
//! them (its self-test demands one finding per lint here) but they do
//! not fail the build.

use pcr::{Condition, Monitor, MonitorGuard, ThreadCtx, WaitOutcome};

/// The `IF NOT (condition) THEN WAIT cv` anti-pattern: checks the
/// predicate once, waits at most once, and returns *without rechecking*.
///
/// Returns `true` if the predicate held when the function returned
/// control — which, unlike [`pcr::MonitorGuard::wait_until`], is not
/// guaranteed: Mesa monitors promise nothing about the condition after a
/// WAIT completes.
pub fn wait_if<T: Send + 'static>(
    guard: &mut MonitorGuard<'_, T>,
    cv: &Condition,
    pred: impl Fn(&T) -> bool,
) -> bool {
    if !guard.with(&pred) {
        // threadlint: allow(wait-not-in-loop)
        let _ = guard.wait(cv);
    }
    guard.with(&pred)
}

/// The §5.3 "naked NOTIFY": the wakeup is issued through a transient
/// guard, outside the critical section that established the predicate.
/// A waiter scheduled between the state change and this NOTIFY (or the
/// reverse) can miss its wakeup entirely — the runtime's
/// [`pcr::HazardMonitor`] flags the dynamic form; `threadlint` flags
/// this static form.
pub fn drive_by_notify<T: Send + 'static>(ctx: &ThreadCtx, m: &Monitor<T>, cv: &Condition) {
    // threadlint: allow(naked-notify)
    ctx.enter(m).notify(cv);
}

/// The §5.4 mistake: FORK's result dropped on the floor. If the fork
/// fails (address-space exhaustion in the paper; injected
/// [`pcr::ChaosConfig::fail_forks`] here) nothing notices, and on
/// success nobody ever joins the child.
pub fn fire_and_forget_fork(ctx: &ThreadCtx, name: &str, work: pcr::SimDuration) {
    // threadlint: allow(fork-result-discarded)
    let _ = ctx.fork(name, move |ctx| ctx.work(work));
}

/// The end state of §5.3's timeout abuse: a flag whose watcher has a
/// timeout but whose setter never NOTIFYs, so the watcher makes
/// progress only when the timeout fires. "The system can become timeout
/// driven — it apparently works correctly but slowly."
#[derive(Clone)]
pub struct PolledFlag {
    monitor: Monitor<bool>,
    tick_never_notified: Condition,
}

impl PolledFlag {
    /// Creates the flag; `period` is the watcher's polling timeout.
    pub fn new(ctx: &ThreadCtx, name: &str, period: pcr::SimDuration) -> Self {
        let monitor = ctx.new_monitor(name, false);
        let tick_never_notified =
            ctx.new_condition(&monitor, &format!("{name}.tick"), Some(period));
        PolledFlag {
            monitor,
            tick_never_notified,
        }
    }

    /// Sets the flag — and "forgets" the NOTIFY. That is the bug.
    pub fn set(&self, ctx: &ThreadCtx) {
        let mut g = ctx.enter(&self.monitor);
        g.with_mut(|v| *v = true);
    }

    /// Waits until the flag is set; returns how many timeout laps the
    /// wait needed (always ≥ 1 once the setter runs after us).
    pub fn await_set(&self, ctx: &ThreadCtx) -> u64 {
        let mut laps = 0;
        let mut g = ctx.enter(&self.monitor);
        loop {
            if g.with(|v| *v) {
                return laps;
            }
            // threadlint: allow(timeout-no-notify)
            let _ = g.wait(&self.tick_never_notified);
            laps += 1;
        }
    }
}

/// One half of §2.6's ABBA deadlock: acquires `a`, then `b`.
/// Run concurrently with [`transfer_ba`] and the system can deadlock;
/// the static acquisition-order graph has the cycle either way.
pub fn transfer_ab(ctx: &ThreadCtx, a: &Monitor<u64>, b: &Monitor<u64>, amount: u64) {
    let mut ga = ctx.enter(a);
    // threadlint: allow(lock-order-cycle)
    let mut gb = ctx.enter(b);
    ga.with_mut(|v| *v -= amount);
    gb.with_mut(|v| *v += amount);
}

/// The other half of §2.6's ABBA deadlock: acquires `b`, then `a`.
pub fn transfer_ba(ctx: &ThreadCtx, a: &Monitor<u64>, b: &Monitor<u64>, amount: u64) {
    let mut gb = ctx.enter(b);
    // threadlint: allow(lock-order-cycle)
    let mut ga = ctx.enter(a);
    gb.with_mut(|v| *v -= amount);
    ga.with_mut(|v| *v += amount);
}

/// One half of the *interprocedural* ABBA of §2.6/§4.4: locally this
/// takes a single lock and makes one innocent-looking call — the
/// second acquisition hides inside `log_to_audit`. Only the
/// workspace call graph sees the `ledger -> audit` edge; run
/// concurrently with [`deep_transfer_ba`] the composed order cycles.
pub fn deep_transfer_ab(ctx: &ThreadCtx, ledger: &Monitor<u64>, audit: &Monitor<u64>, amount: u64) {
    let mut g = ctx.enter(ledger);
    g.with_mut(|v| *v -= amount);
    log_to_audit(ctx, audit, amount);
}

/// The hidden second half of [`deep_transfer_ab`]'s acquisition chain.
fn log_to_audit(ctx: &ThreadCtx, audit: &Monitor<u64>, amount: u64) {
    // threadlint: allow(lock-order-cycle-transitive)
    let mut g = ctx.enter(audit);
    g.with_mut(|v| *v += amount);
}

/// The other half: `audit` first, then `ledger` via `post_to_ledger`.
/// Neither function nests two ENTERs in its own body, so the per-file
/// cycle lint stays silent; the transitive one must not.
pub fn deep_transfer_ba(ctx: &ThreadCtx, ledger: &Monitor<u64>, audit: &Monitor<u64>, amount: u64) {
    let mut g = ctx.enter(audit);
    g.with_mut(|v| *v -= amount);
    post_to_ledger(ctx, ledger, amount);
}

/// The hidden second half of [`deep_transfer_ba`]'s acquisition chain.
fn post_to_ledger(ctx: &ThreadCtx, ledger: &Monitor<u64>, amount: u64) {
    // threadlint: allow(lock-order-cycle-transitive)
    let mut g = ctx.enter(ledger);
    g.with_mut(|v| *v += amount);
}

/// The §5.3 layered-WAIT mistake: the caller pins an outer monitor and
/// then calls into a helper that WAITs. WAIT releases only the helper's
/// own monitor — `registry` stays locked for the whole sleep, starving
/// every thread that needs it. Locally the helper is impeccable
/// (WHILE-loop wait, single monitor); only the inherited lockset
/// reveals the hazard.
pub fn nested_wait_outer(
    ctx: &ThreadCtx,
    registry: &Monitor<u64>,
    inbox: &Monitor<Vec<u32>>,
    arrived: &Condition,
) {
    let _g = ctx.enter(registry);
    nested_wait_inner(ctx, inbox, arrived);
}

/// The helper that WAITs while its caller still holds `registry`.
fn nested_wait_inner(ctx: &ThreadCtx, inbox: &Monitor<Vec<u32>>, arrived: &Condition) {
    let mut g = ctx.enter(inbox);
    loop {
        if g.with(|q| !q.is_empty()) {
            return;
        }
        // threadlint: allow(wait-with-outer-monitor)
        g.wait(arrived);
    }
}

/// The §6.1 lock-holder stall, one call deep: the caller holds
/// `journal` across a helper whose body sleeps. The paper's X server
/// priority-inversion postmortem starts exactly here — a monitor held
/// across a slow operation nobody can see at the call site.
pub fn checkpoint_under_lock(ctx: &ThreadCtx, journal: &Monitor<u64>) {
    let mut g = ctx.enter(journal);
    g.with_mut(|v| *v += 1);
    flush_slowly(ctx);
}

/// The hidden stall: a sleep standing in for slow IO.
fn flush_slowly(ctx: &ThreadCtx) {
    // threadlint: allow(blocking-call-in-monitor)
    ctx.sleep_precise(pcr::millis(3));
}

/// A bounded queue whose producer "forgets" its NOTIFY every
/// `1/notify_drop_rate` puts, so consumers make progress only through
/// their CV timeout — the timeout-driven system of §5.3.
pub struct LossyNotifyQueue<T: Send + 'static> {
    monitor: Monitor<Vec<T>>,
    nonempty: Condition,
    drop_every: u64,
    counter: Monitor<u64>,
}

impl<T: Send + 'static> Clone for LossyNotifyQueue<T> {
    fn clone(&self) -> Self {
        LossyNotifyQueue {
            monitor: self.monitor.clone(),
            nonempty: self.nonempty.clone(),
            drop_every: self.drop_every,
            counter: self.counter.clone(),
        }
    }
}

impl<T: Send + 'static> LossyNotifyQueue<T> {
    /// Creates the queue. `drop_every = 0` drops no notifies;
    /// `drop_every = 1` drops all of them; `n` drops every n-th.
    /// `cv_timeout` is the consumer-side timeout that masks the bug.
    pub fn new(
        ctx: &ThreadCtx,
        name: &str,
        drop_every: u64,
        cv_timeout: Option<pcr::SimDuration>,
    ) -> Self {
        let monitor = ctx.new_monitor(name, Vec::new());
        let nonempty = ctx.new_condition(&monitor, &format!("{name}.nonempty"), cv_timeout);
        let counter = ctx.new_monitor(&format!("{name}.counter"), 0u64);
        LossyNotifyQueue {
            monitor,
            nonempty,
            drop_every,
            counter,
        }
    }

    /// Puts an item; possibly "forgets" the NOTIFY.
    pub fn put(&self, ctx: &ThreadCtx, item: T) {
        let n = {
            let mut g = ctx.enter(&self.counter);
            g.with_mut(|c| {
                *c += 1;
                *c
            })
        };
        let mut g = ctx.enter(&self.monitor);
        g.with_mut(|q| q.push(item));
        let drop_this = self.drop_every != 0 && n % self.drop_every == 0;
        if !drop_this {
            g.notify(&self.nonempty);
        }
    }

    /// Takes an item, waiting (correctly, in a loop) until one appears.
    /// Returns the item and how many of the waits timed out — the
    /// signature of a timeout-driven system.
    pub fn take(&self, ctx: &ThreadCtx) -> (T, u64) {
        let mut timeouts = 0;
        let mut g = ctx.enter(&self.monitor);
        loop {
            if let Some(item) = g.with_mut(|q| (!q.is_empty()).then(|| q.remove(0))) {
                return (item, timeouts);
            }
            if g.wait(&self.nonempty) == WaitOutcome::TimedOut {
                timeouts += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::{millis, secs, Priority, RunLimit, Sim, SimConfig, StopReason};

    /// Two consumers + one item + BROADCAST: the IF-wait consumer that
    /// loses the race proceeds on a false predicate.
    #[test]
    fn if_wait_breaks_with_two_consumers() {
        let mut sim = Sim::new(SimConfig::default());
        let m: Monitor<Vec<u32>> = sim.monitor("q", Vec::new());
        let cv = sim.condition(&m, "nonempty", None);
        let mut consumers = Vec::new();
        for i in 0..2 {
            let m = m.clone();
            let cv = cv.clone();
            consumers.push(
                sim.fork_root(&format!("c{i}"), Priority::of(5), move |ctx| {
                    let mut g = ctx.enter(&m);
                    // The §5.3 anti-pattern.
                    let ok = wait_if(&mut g, &cv, |q| !q.is_empty());
                    if ok {
                        g.with_mut(|q| q.pop());
                    }
                    ok
                }),
            );
        }
        let _ = sim.fork_root("producer", Priority::of(4), move |ctx| {
            ctx.work(millis(5));
            let mut g = ctx.enter(&m);
            g.with_mut(|q| q.push(1));
            g.broadcast(&cv);
        });
        let r = sim.run(RunLimit::For(secs(2)));
        assert_eq!(r.reason, StopReason::AllExited);
        let outcomes: Vec<bool> = consumers
            .into_iter()
            .map(|h| h.into_result().unwrap().unwrap())
            .collect();
        // Exactly one consumer saw a true predicate; the other returned
        // from WAIT with the condition false — the latent bug.
        assert_eq!(outcomes.iter().filter(|&&b| b).count(), 1, "{outcomes:?}");
        assert_eq!(outcomes.iter().filter(|&&b| !b).count(), 1, "{outcomes:?}");
    }

    /// The WHILE-loop convention handles the identical schedule safely.
    #[test]
    fn while_wait_survives_two_consumers() {
        let mut sim = Sim::new(SimConfig::default());
        let m: Monitor<Vec<u32>> = sim.monitor("q", Vec::new());
        // Timeout so the loser of the race eventually re-checks and exits
        // empty-handed instead of hanging this test.
        let cv = sim.condition(&m, "nonempty", Some(millis(50)));
        let mut consumers = Vec::new();
        for i in 0..2 {
            let m = m.clone();
            let cv = cv.clone();
            consumers.push(
                sim.fork_root(&format!("c{i}"), Priority::of(5), move |ctx| {
                    let deadline = ctx.now() + millis(300);
                    let mut g = ctx.enter(&m);
                    loop {
                        if let Some(v) = g.with_mut(|q| q.pop()) {
                            return Some(v);
                        }
                        if ctx.now() >= deadline {
                            return None;
                        }
                        g.wait(&cv);
                    }
                }),
            );
        }
        let _ = sim.fork_root("producer", Priority::of(4), move |ctx| {
            ctx.work(millis(5));
            let mut g = ctx.enter(&m);
            g.with_mut(|q| q.push(1));
            g.broadcast(&cv);
        });
        let r = sim.run(RunLimit::For(secs(2)));
        assert_eq!(r.reason, StopReason::AllExited);
        let got: Vec<Option<u32>> = consumers
            .into_iter()
            .map(|h| h.into_result().unwrap().unwrap())
            .collect();
        // One consumer got the item; the other correctly concluded there
        // was nothing for it. Nobody proceeded on a false predicate.
        assert_eq!(got.iter().filter(|g| g.is_some()).count(), 1);
    }

    /// All NOTIFYs dropped: the system still "works", clocked entirely by
    /// the CV timeout — correct but slow (per-item latency jumps from
    /// microseconds to tens of milliseconds).
    /// Drives a [`LossyNotifyQueue`] through ten puts at a 60 ms cadence
    /// with a 50 ms consumer timeout; returns (mean put-to-take latency,
    /// total timed-out waits).
    fn run_lossy(drop_every: u64) -> (pcr::SimDuration, u64) {
        let mut sim = Sim::new(SimConfig::default());
        let h = sim.fork_root("driver", Priority::of(4), move |ctx| {
            // Items carry their put time so the consumer can measure
            // put-to-take latency.
            let q: LossyNotifyQueue<pcr::SimTime> =
                LossyNotifyQueue::new(ctx, "lossy", drop_every, Some(millis(50)));
            let qc = q.clone();
            let consumer = ctx
                .fork_prio("consumer", Priority::of(5), move |ctx| {
                    let mut timeouts = 0;
                    let mut latency = pcr::SimDuration::ZERO;
                    for _ in 0..10 {
                        let (put_at, t) = qc.take(ctx);
                        latency += ctx.now().saturating_since(put_at);
                        timeouts += t;
                    }
                    (latency / 10, timeouts)
                })
                .unwrap();
            for _ in 0..10 {
                ctx.sleep_precise(millis(60));
                q.put(ctx, ctx.now());
            }
            ctx.join(consumer).unwrap()
        });
        sim.run(RunLimit::For(secs(10)));
        h.into_result().unwrap().unwrap()
    }

    #[test]
    fn timeout_masked_queue_works_slowly() {
        let (healthy_latency, _healthy_timeouts) = run_lossy(0);
        let (buggy_latency, buggy_timeouts) = run_lossy(1);
        // Note timeouts also occur in the healthy system — waits simply
        // outlasting a quiet queue (the paper measures 48-82% of waits
        // timing out in normal operation). The discriminator is latency.
        assert!(buggy_timeouts >= 5, "timeout-driven: {buggy_timeouts}");
        // Healthy latency is essentially the notify path; the buggy
        // system limps along at the timeout's pace.
        assert!(
            healthy_latency < millis(1),
            "healthy latency {healthy_latency}"
        );
        assert!(
            buggy_latency >= millis(10),
            "buggy latency {buggy_latency} should be timeout-scale"
        );
    }

    /// At `drop_every = 2` half the NOTIFYs vanish: progress for those
    /// items is timeout-driven, and the degradation sits strictly
    /// between the healthy and fully-lossy systems.
    #[test]
    fn half_lossy_queue_degrades_proportionally() {
        let (healthy_latency, _) = run_lossy(0);
        let (half_latency, half_timeouts) = run_lossy(2);
        let (dead_latency, dead_timeouts) = run_lossy(1);
        // Every second put arrives notify-less, so the consumer rides
        // its timeout for those items.
        assert!(half_timeouts >= 3, "timeouts: {half_timeouts}");
        assert!(
            half_timeouts <= dead_timeouts,
            "half ({half_timeouts}) cannot out-timeout fully lossy ({dead_timeouts})"
        );
        assert!(
            half_latency > healthy_latency && half_latency >= millis(5),
            "half-lossy latency {half_latency} should exceed healthy {healthy_latency}"
        );
        assert!(
            half_latency <= dead_latency,
            "half-lossy {half_latency} cannot be slower than fully lossy {dead_latency}"
        );
    }

    /// Under injected spurious wakeups (`pcr::chaos`), [`wait_if`]
    /// returns with a false predicate even with *no* other thread
    /// touching the monitor — the precise failure mode that makes the
    /// `WHILE` convention mandatory on Mesa semantics.
    #[test]
    fn spurious_wakeup_exposes_if_wait() {
        let cfg = SimConfig::default().with_chaos(pcr::ChaosConfig::none().spurious_wakeups(1.0));
        let mut sim = Sim::new(cfg);
        let m: Monitor<Vec<u32>> = sim.monitor("q", Vec::new());
        let cv = sim.condition(&m, "nonempty", None);
        let h = sim.fork_root("victim", Priority::of(5), move |ctx| {
            let mut g = ctx.enter(&m);
            wait_if(&mut g, &cv, |q| !q.is_empty())
        });
        let r = sim.run(RunLimit::For(secs(2)));
        assert_eq!(r.reason, StopReason::AllExited);
        // No producer exists: the only wakeup was chaos-injected, and
        // the IF-based wait proceeded on a false predicate.
        assert!(
            !h.into_result().unwrap().unwrap(),
            "wait_if must report the predicate false after a spurious wakeup"
        );
        assert!(sim.stats().chaos_spurious_wakeups >= 1);
    }

    /// The deep-transfer halves are deadlock *preconditions*, not
    /// guaranteed deadlocks: run sequentially they complete fine (and
    /// conserve the transferred amount). The hazard is the composed
    /// acquisition order, which only the static analysis sees.
    #[test]
    fn deep_transfer_halves_run_clean_sequentially() {
        let mut sim = Sim::new(SimConfig::default());
        let ledger = sim.monitor("ledger", 100u64);
        let audit = sim.monitor("audit", 0u64);
        let (l, a) = (ledger.clone(), audit.clone());
        let _ = sim.fork_root("mover", Priority::DEFAULT, move |ctx| {
            deep_transfer_ab(ctx, &l, &a, 30);
            deep_transfer_ba(ctx, &l, &a, 10);
        });
        let r = sim.run(RunLimit::For(secs(1)));
        assert_eq!(r.reason, StopReason::AllExited);
        let h = sim.fork_root("check", Priority::DEFAULT, move |ctx| {
            let lv = ctx.enter(&ledger).with(|v| *v);
            let av = ctx.enter(&audit).with(|v| *v);
            (lv, av)
        });
        sim.run(RunLimit::For(secs(1)));
        let (lv, av) = h.into_result().unwrap().unwrap();
        assert_eq!((lv, av), (80, 20));
    }

    /// [`PolledFlag`]: the watcher only advances when its timeout
    /// fires, so observing the flag takes at least one full period.
    #[test]
    fn polled_flag_progress_is_timeout_paced() {
        let mut sim = Sim::new(SimConfig::default());
        let h = sim.fork_root("driver", Priority::of(4), move |ctx| {
            let flag = PolledFlag::new(ctx, "polled", millis(40));
            let fc = flag.clone();
            let watcher = ctx
                .fork_prio("watcher", Priority::of(5), move |ctx| {
                    let start = ctx.now();
                    let laps = fc.await_set(ctx);
                    (laps, ctx.now().saturating_since(start))
                })
                .unwrap();
            ctx.sleep_precise(millis(5));
            flag.set(ctx); // No NOTIFY happens here — that is the bug.
            ctx.join(watcher).unwrap()
        });
        sim.run(RunLimit::For(secs(2)));
        let (laps, waited) = h.into_result().unwrap().unwrap();
        assert!(laps >= 1, "watcher should have ridden the timeout");
        // The flag was set 5 ms in, but the watcher only noticed at the
        // next 40 ms timeout lap.
        assert!(
            waited >= millis(40),
            "timeout-paced detection, waited {waited}"
        );
    }
}
