//! The common mistakes of §5.3, reproduced on purpose.
//!
//! Two questionable practices stood out in the paper's code archaeology:
//!
//! 1. **IF-based WAIT** — `IF NOT condition THEN WAIT cv` instead of the
//!    `WHILE` loop. Works "with sufficient constraints on the number and
//!    behavior of the threads using the monitor", then breaks as programs
//!    are modified — [`wait_if`] lets experiments demonstrate exactly
//!    that.
//! 2. **Timeout-masked missing NOTIFYs** — timeouts added "to compensate
//!    for missing NOTIFYs (bugs), instead of fixing the underlying
//!    problem. ... the system can become timeout driven — it apparently
//!    works correctly but slowly." [`LossyNotifyQueue`] is a queue whose
//!    producer drops a configurable fraction of its NOTIFYs.

use pcr::{Condition, Monitor, MonitorGuard, ThreadCtx, WaitOutcome};

/// The `IF NOT (condition) THEN WAIT cv` anti-pattern: checks the
/// predicate once, waits at most once, and returns *without rechecking*.
///
/// Returns `true` if the predicate held when the function returned
/// control — which, unlike [`pcr::MonitorGuard::wait_until`], is not
/// guaranteed: Mesa monitors promise nothing about the condition after a
/// WAIT completes.
pub fn wait_if<T: Send + 'static>(
    guard: &mut MonitorGuard<'_, T>,
    cv: &Condition,
    pred: impl Fn(&T) -> bool,
) -> bool {
    if !guard.with(&pred) {
        let _ = guard.wait(cv);
    }
    guard.with(&pred)
}

/// A bounded queue whose producer "forgets" its NOTIFY every
/// `1/notify_drop_rate` puts, so consumers make progress only through
/// their CV timeout — the timeout-driven system of §5.3.
pub struct LossyNotifyQueue<T: Send + 'static> {
    monitor: Monitor<Vec<T>>,
    nonempty: Condition,
    drop_every: u64,
    counter: Monitor<u64>,
}

impl<T: Send + 'static> Clone for LossyNotifyQueue<T> {
    fn clone(&self) -> Self {
        LossyNotifyQueue {
            monitor: self.monitor.clone(),
            nonempty: self.nonempty.clone(),
            drop_every: self.drop_every,
            counter: self.counter.clone(),
        }
    }
}

impl<T: Send + 'static> LossyNotifyQueue<T> {
    /// Creates the queue. `drop_every = 0` drops no notifies;
    /// `drop_every = 1` drops all of them; `n` drops every n-th.
    /// `cv_timeout` is the consumer-side timeout that masks the bug.
    pub fn new(
        ctx: &ThreadCtx,
        name: &str,
        drop_every: u64,
        cv_timeout: Option<pcr::SimDuration>,
    ) -> Self {
        let monitor = ctx.new_monitor(name, Vec::new());
        let nonempty = ctx.new_condition(&monitor, &format!("{name}.nonempty"), cv_timeout);
        let counter = ctx.new_monitor(&format!("{name}.counter"), 0u64);
        LossyNotifyQueue {
            monitor,
            nonempty,
            drop_every,
            counter,
        }
    }

    /// Puts an item; possibly "forgets" the NOTIFY.
    pub fn put(&self, ctx: &ThreadCtx, item: T) {
        let n = {
            let mut g = ctx.enter(&self.counter);
            g.with_mut(|c| {
                *c += 1;
                *c
            })
        };
        let mut g = ctx.enter(&self.monitor);
        g.with_mut(|q| q.push(item));
        let drop_this = self.drop_every != 0 && n % self.drop_every == 0;
        if !drop_this {
            g.notify(&self.nonempty);
        }
    }

    /// Takes an item, waiting (correctly, in a loop) until one appears.
    /// Returns the item and how many of the waits timed out — the
    /// signature of a timeout-driven system.
    pub fn take(&self, ctx: &ThreadCtx) -> (T, u64) {
        let mut timeouts = 0;
        let mut g = ctx.enter(&self.monitor);
        loop {
            if let Some(item) = g.with_mut(|q| (!q.is_empty()).then(|| q.remove(0))) {
                return (item, timeouts);
            }
            if g.wait(&self.nonempty) == WaitOutcome::TimedOut {
                timeouts += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::{millis, secs, Priority, RunLimit, Sim, SimConfig, StopReason};

    /// Two consumers + one item + BROADCAST: the IF-wait consumer that
    /// loses the race proceeds on a false predicate.
    #[test]
    fn if_wait_breaks_with_two_consumers() {
        let mut sim = Sim::new(SimConfig::default());
        let m: Monitor<Vec<u32>> = sim.monitor("q", Vec::new());
        let cv = sim.condition(&m, "nonempty", None);
        let mut consumers = Vec::new();
        for i in 0..2 {
            let m = m.clone();
            let cv = cv.clone();
            consumers.push(
                sim.fork_root(&format!("c{i}"), Priority::of(5), move |ctx| {
                    let mut g = ctx.enter(&m);
                    // The §5.3 anti-pattern.
                    let ok = wait_if(&mut g, &cv, |q| !q.is_empty());
                    if ok {
                        g.with_mut(|q| q.pop());
                    }
                    ok
                }),
            );
        }
        let _ = sim.fork_root("producer", Priority::of(4), move |ctx| {
            ctx.work(millis(5));
            let mut g = ctx.enter(&m);
            g.with_mut(|q| q.push(1));
            g.broadcast(&cv);
        });
        let r = sim.run(RunLimit::For(secs(2)));
        assert_eq!(r.reason, StopReason::AllExited);
        let outcomes: Vec<bool> = consumers
            .into_iter()
            .map(|h| h.into_result().unwrap().unwrap())
            .collect();
        // Exactly one consumer saw a true predicate; the other returned
        // from WAIT with the condition false — the latent bug.
        assert_eq!(outcomes.iter().filter(|&&b| b).count(), 1, "{outcomes:?}");
        assert_eq!(outcomes.iter().filter(|&&b| !b).count(), 1, "{outcomes:?}");
    }

    /// The WHILE-loop convention handles the identical schedule safely.
    #[test]
    fn while_wait_survives_two_consumers() {
        let mut sim = Sim::new(SimConfig::default());
        let m: Monitor<Vec<u32>> = sim.monitor("q", Vec::new());
        // Timeout so the loser of the race eventually re-checks and exits
        // empty-handed instead of hanging this test.
        let cv = sim.condition(&m, "nonempty", Some(millis(50)));
        let mut consumers = Vec::new();
        for i in 0..2 {
            let m = m.clone();
            let cv = cv.clone();
            consumers.push(
                sim.fork_root(&format!("c{i}"), Priority::of(5), move |ctx| {
                    let deadline = ctx.now() + millis(300);
                    let mut g = ctx.enter(&m);
                    loop {
                        if let Some(v) = g.with_mut(|q| q.pop()) {
                            return Some(v);
                        }
                        if ctx.now() >= deadline {
                            return None;
                        }
                        g.wait(&cv);
                    }
                }),
            );
        }
        let _ = sim.fork_root("producer", Priority::of(4), move |ctx| {
            ctx.work(millis(5));
            let mut g = ctx.enter(&m);
            g.with_mut(|q| q.push(1));
            g.broadcast(&cv);
        });
        let r = sim.run(RunLimit::For(secs(2)));
        assert_eq!(r.reason, StopReason::AllExited);
        let got: Vec<Option<u32>> = consumers
            .into_iter()
            .map(|h| h.into_result().unwrap().unwrap())
            .collect();
        // One consumer got the item; the other correctly concluded there
        // was nothing for it. Nobody proceeded on a false predicate.
        assert_eq!(got.iter().filter(|g| g.is_some()).count(), 1);
    }

    /// All NOTIFYs dropped: the system still "works", clocked entirely by
    /// the CV timeout — correct but slow (per-item latency jumps from
    /// microseconds to tens of milliseconds).
    #[test]
    fn timeout_masked_queue_works_slowly() {
        let run = |drop_every: u64| -> (pcr::SimDuration, u64) {
            let mut sim = Sim::new(SimConfig::default());
            let h = sim.fork_root("driver", Priority::of(4), move |ctx| {
                // Items carry their put time so the consumer can measure
                // put-to-take latency.
                let q: LossyNotifyQueue<pcr::SimTime> =
                    LossyNotifyQueue::new(ctx, "lossy", drop_every, Some(millis(50)));
                let qc = q.clone();
                let consumer = ctx
                    .fork_prio("consumer", Priority::of(5), move |ctx| {
                        let mut timeouts = 0;
                        let mut latency = pcr::SimDuration::ZERO;
                        for _ in 0..10 {
                            let (put_at, t) = qc.take(ctx);
                            latency += ctx.now().saturating_since(put_at);
                            timeouts += t;
                        }
                        (latency / 10, timeouts)
                    })
                    .unwrap();
                for _ in 0..10 {
                    ctx.sleep_precise(millis(60));
                    q.put(ctx, ctx.now());
                }
                ctx.join(consumer).unwrap()
            });
            sim.run(RunLimit::For(secs(10)));
            h.into_result().unwrap().unwrap()
        };
        let (healthy_latency, _healthy_timeouts) = run(0);
        let (buggy_latency, buggy_timeouts) = run(1);
        // Note timeouts also occur in the healthy system — waits simply
        // outlasting a quiet queue (the paper measures 48-82% of waits
        // timing out in normal operation). The discriminator is latency.
        assert!(buggy_timeouts >= 5, "timeout-driven: {buggy_timeouts}");
        // Healthy latency is essentially the notify path; the buggy
        // system limps along at the timeout's pace.
        assert!(
            healthy_latency < millis(1),
            "healthy latency {healthy_latency}"
        );
        assert!(
            buggy_latency >= millis(10),
            "buggy latency {buggy_latency} should be timeout-scale"
        );
    }
}
