//! # paradigms — the ten thread-usage paradigms on the simulator
//!
//! The paper's §4 classifies every thread-creation site in Cedar and GVX
//! into ten paradigms. This crate implements each as a reusable
//! component on the [`pcr`] runtime, in the paper's order:
//!
//! | § | Paradigm | Here |
//! |---|----------|------|
//! | 4.1 | Defer work | [`defer`], [`deferred`] |
//! | 4.2 | General pumps | [`pump`] ([`pump::BoundedQueue`], [`pump::spawn_pump`]), [`pipeline`] |
//! | 4.2 | Slack processes | [`slack`] ([`slack::spawn_slack`], [`slack::SlackPolicy`]) |
//! | 4.3 | Sleepers | [`sleeper`] ([`sleeper::Periodical`]) |
//! | 4.3 | One-shots | [`oneshot`] ([`oneshot::delayed_fork`], [`oneshot::GuardedButton`]) |
//! | 4.4 | Deadlock avoiders | [`deadlock_avoid`] |
//! | 4.5 | Task rejuvenation | [`rejuvenate`] |
//! | 4.6 | Serializers | [`serializer`] ([`serializer::MbQueue`]) |
//! | 4.7 | Concurrency exploiters | [`exploit`] |
//! | 4.8 | Encapsulated forks | the packaged constructors throughout ([`oneshot::delayed_fork`] = `DelayedFork`, [`sleeper::Periodical`] = `PeriodicalFork`, [`serializer::MbQueue`] = `MBQueue`) |
//!
//! [`mistakes`] reproduces §5.3's anti-patterns (IF-based WAIT,
//! timeout-masked missing NOTIFYs) for the experiments that measure their
//! cost. The same paradigms on real `std::thread`s are in the `mesa`
//! crate.
//!
//! # Example: a pipeline fed by a sleeper, drained by a serializer
//!
//! ```
//! use paradigms::pipeline::pipeline;
//! use paradigms::serializer::MbQueue;
//! use pcr::{millis, Priority, RunLimit, Sim, SimConfig};
//!
//! let mut sim = Sim::new(SimConfig::default());
//! let h = sim.fork_root("main", Priority::of(5), |ctx| {
//!     let p = pipeline::<u32>(ctx, "p", 8, Priority::of(4))
//!         .stage(millis(1), |x| Some(x * 2))
//!         .build();
//!     let mb = MbQueue::new(ctx, "apply", Priority::of(4), 8);
//!     for i in 0..4 {
//!         p.source.put(ctx, i);
//!     }
//!     p.source.close(ctx);
//!     let mut sum = 0;
//!     while let Some(v) = p.sink.take(ctx) {
//!         sum += v;
//!     }
//!     mb.stop(ctx);
//!     sum
//! });
//! sim.run(RunLimit::For(pcr::secs(10)));
//! assert_eq!(h.into_result().unwrap().unwrap(), 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callbacks;
pub mod deadlock_avoid;
pub mod defer;
pub mod deferred;
pub mod exploit;
pub mod mistakes;
pub mod oneshot;
pub mod pipeline;
pub mod pump;
pub mod rejuvenate;
pub mod serializer;
pub mod slack;
pub mod sleeper;

pub use threadstudy_core::Paradigm;
