//! Slack processes (§4.2, §5.2): pumps that add latency to merge work.
//!
//! A slack process "explicitly adds latency to a pipeline in the hope of
//! reducing the total amount of work done, either by merging input or
//! replacing earlier data with later data before placing it on its
//! output. Slack processes are useful when the downstream consumer of
//! the data incurs high per-transaction costs."
//!
//! The paper's prime example is the buffer thread batching paint
//! requests to the X server (§5.2). Making the slack actually appear is
//! the hard part: the buffer thread must cede the processor so producers
//! can generate more input to merge — and with a high-priority buffer
//! thread, a plain YIELD hands the processor straight back to it. The
//! [`SlackPolicy`] variants reproduce the paper's alternatives: plain
//! YIELD (broken), `YieldButNotToMe` (the fix), and a timeout sleep
//! (works only if the timer granularity is small enough, §6.3).

use pcr::{millis, Condition, Monitor, Priority, SimDuration, ThreadCtx, ThreadId};

use crate::pump::BoundedQueue;

/// How the slack thread cedes the processor to gather more input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlackPolicy {
    /// Act on whatever is queued immediately — no slack at all.
    Immediate,
    /// Plain YIELD before acting. With a buffer thread of higher priority
    /// than its producers the scheduler picks the buffer thread right
    /// back, so no merging happens (§5.2's broken configuration).
    PlainYield,
    /// `YieldButNotToMe` before acting: the producer gets the processor
    /// and the buffer wakes with a full queue to merge (§5.2's fix).
    YieldButNotToMe,
    /// Sleep for the given interval before acting. Subject to the timer
    /// granularity: with PCR's 50 ms tick, a small sleep still wakes only
    /// at the next tick (§6.3).
    SleepTimeout(SimDuration),
    /// Keep absorbing input (yielding with `YieldButNotToMe` between
    /// polls) until the pending batch reaches this many entries, then
    /// emit — a size-triggered flush bounding worst-case batch latency
    /// by production rate rather than by the clock.
    CountThreshold(usize),
}

/// Counters describing what a slack process accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlackStats {
    /// Items taken from the input queue.
    pub items_in: u64,
    /// Batches emitted downstream.
    pub batches_out: u64,
    /// Items eliminated by merging (items_in - items actually emitted).
    pub merged_away: u64,
}

impl SlackStats {
    /// Mean items per emitted batch.
    pub fn merge_ratio(&self) -> f64 {
        if self.batches_out == 0 {
            0.0
        } else {
            self.items_in as f64 / self.batches_out as f64
        }
    }
}

struct SlackShared {
    stats: SlackStats,
    finished: bool,
}

/// A running slack process's shared stats handle.
pub struct SlackHandle {
    shared: Monitor<SlackShared>,
    done: Condition,
    tid: ThreadId,
}

impl SlackHandle {
    /// Snapshot of the counters.
    pub fn stats(&self, ctx: &ThreadCtx) -> SlackStats {
        let g = ctx.enter(&self.shared);
        g.with(|s| s.stats)
    }

    /// The slack thread's id.
    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    /// Waits until the slack thread has exited (input closed and drained),
    /// re-checking the flag in a loop per the WAIT convention (§5.3).
    pub fn wait_done(&self, ctx: &ThreadCtx) {
        let mut g = ctx.enter(&self.shared);
        g.wait_until(&self.done, |s| s.finished);
    }
}

/// Spawns a slack process.
///
/// It repeatedly takes everything queued on `input`, merges it with
/// `merge` (which folds a new item into the pending batch, returning
/// `true` if the item was absorbed into an existing entry), cedes the
/// processor according to `policy` to let more input accumulate, then
/// hands the batch to `emit` (charged `cost_per_batch`). Exits when the
/// input closes.
#[allow(clippy::too_many_arguments)] // the paper's knobs, spelled out
pub fn spawn_slack<T, M, E>(
    ctx: &ThreadCtx,
    name: &str,
    priority: Priority,
    input: BoundedQueue<T>,
    policy: SlackPolicy,
    cost_per_batch: SimDuration,
    mut merge: M,
    mut emit: E,
) -> SlackHandle
where
    T: Send + 'static,
    M: FnMut(&mut Vec<T>, T) -> bool + Send + 'static,
    E: FnMut(&ThreadCtx, Vec<T>) + Send + 'static,
{
    let shared = ctx.new_monitor(
        &format!("{name}.stats"),
        SlackShared {
            stats: SlackStats::default(),
            finished: false,
        },
    );
    let done = ctx.new_condition(&shared, &format!("{name}.done"), Some(millis(50)));
    let shared2 = shared.clone();
    let done2 = done.clone();
    let tid = ctx
        .fork_detached_prio(name, priority, move |ctx| {
            loop {
                // Block for the first item of the next batch.
                let Some(first) = input.take(ctx) else { break };
                let mut batch: Vec<T> = Vec::new();
                let mut taken: u64 = 1;
                let mut absorbed: u64 = 0;
                if merge(&mut batch, first) {
                    absorbed += 1;
                }
                // Cede the processor so producers can queue more input.
                match policy {
                    SlackPolicy::Immediate => {}
                    SlackPolicy::PlainYield => ctx.yield_now(),
                    SlackPolicy::YieldButNotToMe => ctx.yield_but_not_to_me(),
                    SlackPolicy::SleepTimeout(d) => ctx.sleep(d),
                    SlackPolicy::CountThreshold(_) => {}
                }
                // Merge whatever accumulated.
                while let Some(item) = input.try_take(ctx) {
                    taken += 1;
                    if merge(&mut batch, item) {
                        absorbed += 1;
                    }
                }
                // Size-triggered flushing keeps polling until the batch
                // fills (or the input dries up and closes).
                if let SlackPolicy::CountThreshold(limit) = policy {
                    while batch.len() < limit {
                        match input.try_take(ctx) {
                            Some(item) => {
                                taken += 1;
                                if merge(&mut batch, item) {
                                    absorbed += 1;
                                }
                            }
                            None => {
                                if input.is_closed(ctx) {
                                    break;
                                }
                                ctx.yield_but_not_to_me();
                                if input.is_empty(ctx) && input.is_closed(ctx) {
                                    break;
                                }
                            }
                        }
                    }
                }
                ctx.work(cost_per_batch);
                emit(ctx, batch);
                let mut g = ctx.enter(&shared2);
                g.with_mut(|s| {
                    s.stats.items_in += taken;
                    s.stats.batches_out += 1;
                    s.stats.merged_away += absorbed;
                });
            }
            let mut g = ctx.enter(&shared2);
            g.with_mut(|s| s.finished = true);
            g.broadcast(&done2);
        })
        .expect("fork slack process");
    SlackHandle { shared, done, tid }
}

/// A convenience merge function that coalesces items equal under `key`:
/// later data replaces earlier data with the same key (the X-server
/// "merge overlapping paint requests" behaviour).
pub fn merge_by_key<T, K: PartialEq, F: Fn(&T) -> K>(key: F) -> impl FnMut(&mut Vec<T>, T) -> bool {
    move |batch: &mut Vec<T>, item: T| {
        let k = key(&item);
        if let Some(slot) = batch.iter_mut().find(|b| key(b) == k) {
            *slot = item;
            true
        } else {
            batch.push(item);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::{secs, RunLimit, Sim, SimConfig};

    /// Producer at low priority, slack at high priority: the §5.2 shape.
    fn run_policy(policy: SlackPolicy) -> (SlackStats, u64) {
        let mut sim = Sim::new(SimConfig::default());
        let input: BoundedQueue<(u32, u32)> = BoundedQueue::new_in_sim(&mut sim, "paint", 64, None);
        let produced: Monitor<u64> = sim.monitor("produced", 0);
        let ip = input.clone();
        let pp = produced.clone();
        let _ = sim.fork_root("imaging", Priority::of(3), move |ctx| {
            // 200 paint requests over 20 windows: plenty to merge.
            for i in 0..200u32 {
                ctx.work(pcr::micros(300));
                ip.put(ctx, (i % 20, i));
                let mut g = ctx.enter(&pp);
                g.with_mut(|n| *n += 1);
            }
            ip.close(ctx);
        });
        let h = sim.fork_root("driver", Priority::of(6), move |ctx| {
            let handle = spawn_slack(
                ctx,
                "buffer",
                Priority::of(6),
                input,
                policy,
                pcr::micros(500),
                merge_by_key(|r: &(u32, u32)| r.0),
                |_ctx, _batch| {},
            );
            handle.wait_done(ctx);
            handle.stats(ctx)
        });
        sim.run(RunLimit::For(secs(30)));
        let stats = h.into_result().unwrap().unwrap();
        (stats, 200)
    }

    #[test]
    fn yield_but_not_to_me_merges_far_better_than_plain_yield() {
        let (plain, n) = run_policy(SlackPolicy::PlainYield);
        let (ybntm, _) = run_policy(SlackPolicy::YieldButNotToMe);
        assert_eq!(plain.items_in, n);
        assert_eq!(ybntm.items_in, n);
        // The broken configuration sends roughly one batch per item; the
        // fixed one merges aggressively (paper: ~3x improvement).
        assert!(
            ybntm.batches_out * 3 <= plain.batches_out,
            "plain={} ybntm={}",
            plain.batches_out,
            ybntm.batches_out
        );
        assert!(ybntm.merge_ratio() >= 3.0, "ratio={}", ybntm.merge_ratio());
    }

    #[test]
    fn immediate_policy_still_drains_everything() {
        let (s, n) = run_policy(SlackPolicy::Immediate);
        assert_eq!(s.items_in, n);
        assert!(s.batches_out > 0);
    }

    #[test]
    fn sleep_policy_merges_in_big_bursts() {
        // Sleeping rounds to the 50ms tick: batches are few and large.
        let (s, n) = run_policy(SlackPolicy::SleepTimeout(millis(5)));
        assert_eq!(s.items_in, n);
        assert!(
            s.merge_ratio() >= 10.0,
            "sleep policy should batch heavily, ratio={}",
            s.merge_ratio()
        );
    }

    #[test]
    fn count_threshold_bounds_batch_sizes() {
        let (s, n) = run_policy(SlackPolicy::CountThreshold(5));
        assert_eq!(s.items_in, n);
        // Every batch carries (up to) 5 distinct regions; with 20 regions
        // and 200 requests the threshold forces ≥ n/.. batches but far
        // fewer than one per item.
        // Merging absorbs same-region items, so each 5-region batch
        // carries many requests: a handful of batches, far fewer than
        // one per item, and more than a single all-in-one flush.
        assert!(
            s.batches_out >= 2 && s.batches_out <= 100,
            "batches = {}",
            s.batches_out
        );
        assert!(s.merge_ratio() >= 2.0, "ratio = {}", s.merge_ratio());
    }

    #[test]
    fn merge_by_key_replaces_same_key() {
        let mut merge = merge_by_key(|r: &(u32, u32)| r.0);
        let mut batch = Vec::new();
        assert!(!merge(&mut batch, (1, 10)));
        assert!(!merge(&mut batch, (2, 20)));
        assert!(merge(&mut batch, (1, 30))); // Replaces (1, 10).
        assert_eq!(batch, vec![(1, 30), (2, 20)]);
    }
}
