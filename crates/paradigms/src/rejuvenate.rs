//! Task rejuvenation (§4.5): "This thread is in trouble. Ok let's make
//! two of them!"
//!
//! When a thread reaches a state it cannot recover from in place
//! (uncaught exception, stack overflow), a *new* copy of the service is
//! forked. The paper calls the paradigm counter-intuitive but credits it
//! with "add\[ing\] significantly to the robustness of our systems", while
//! warning that "its ability to mask underlying design problems suggests
//! that it be used with caution."

use pcr::{ForkError, JoinError, JoinHandle, Priority, SimDuration, ThreadCtx};

/// Fork attempts [`fork_retry`] makes on behalf of the supervisors here
/// before giving up (initial try + 3 backed-off retries).
const FORK_RETRY_ATTEMPTS: u32 = 4;

/// Why a supervised service finally stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceEnd {
    /// The service body returned normally.
    Completed,
    /// The restart budget was exhausted; the last panic message is kept.
    GaveUp(String),
}

/// Outcome of a supervised run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RejuvenationReport {
    /// Times the service was (re)started, including the first start.
    pub starts: u32,
    /// How it ended.
    pub end: ServiceEnd,
}

/// FORKs with a retry budget — the simulated-thread counterpart of the
/// recovery the paper implies for §5.4's fork errors: when FORK fails
/// (thread table exhausted under [`pcr::ForkPolicy::Error`], a
/// resource-exhaustion window, or an injected chaos failure), the
/// caller backs off and tries again rather than dying.
///
/// The factory receives the attempt number (0-based) so the body can be
/// rebuilt per try. Sleeps `backoff` between tries, doubling each time
/// (no sleep when `backoff` is zero); after `attempts` consecutive
/// failures the last error is returned.
///
/// # Panics
///
/// Panics if `attempts` is zero.
pub fn fork_retry<F, B, T>(
    ctx: &ThreadCtx,
    name: &str,
    priority: Priority,
    attempts: u32,
    backoff: SimDuration,
    factory: F,
) -> Result<JoinHandle<T>, ForkError>
where
    F: Fn(u32) -> B,
    B: FnOnce(&ThreadCtx) -> T + Send + 'static,
    T: Send + 'static,
{
    assert!(attempts > 0, "fork_retry needs at least one attempt");
    let mut delay = backoff;
    let mut last = ForkError::ResourcesExhausted;
    for attempt in 0..attempts {
        match ctx.fork_prio(name, priority, factory(attempt)) {
            Ok(handle) => return Ok(handle),
            Err(e) => {
                last = e;
                if attempt + 1 < attempts && !delay.is_zero() {
                    ctx.sleep(delay);
                    delay = delay + delay;
                }
            }
        }
    }
    Err(last)
}

/// Runs `service` under a rejuvenating supervisor: on panic, a fresh
/// copy is forked (after `backoff` of sleep), up to `max_restarts`
/// restarts. Blocks until the service completes or the budget runs out.
///
/// The factory receives the attempt number (0-based) so the service can
/// know it is a rejuvenated copy.
pub fn supervise<F, B>(
    ctx: &ThreadCtx,
    name: &str,
    priority: Priority,
    max_restarts: u32,
    backoff: SimDuration,
    factory: F,
) -> RejuvenationReport
where
    F: Fn(u32) -> B,
    B: FnOnce(&ThreadCtx) + Send + 'static,
{
    let mut starts = 0;
    loop {
        let attempt = starts;
        starts += 1;
        let handle = match fork_retry(
            ctx,
            &format!("{name}#{attempt}"),
            priority,
            FORK_RETRY_ATTEMPTS,
            backoff,
            |_| factory(attempt),
        ) {
            Ok(handle) => handle,
            // Even with retries the runtime cannot host the service:
            // report that as the end instead of killing the supervisor.
            Err(e) => {
                return RejuvenationReport {
                    starts,
                    end: ServiceEnd::GaveUp(e.to_string()),
                }
            }
        };
        match ctx.join(handle) {
            Ok(()) => {
                return RejuvenationReport {
                    starts,
                    end: ServiceEnd::Completed,
                }
            }
            Err(JoinError::Panicked(msg)) => {
                if starts > max_restarts {
                    return RejuvenationReport {
                        starts,
                        end: ServiceEnd::GaveUp(msg),
                    };
                }
                if !backoff.is_zero() {
                    ctx.sleep(backoff);
                }
            }
        }
    }
}

/// The dispatcher shape from §4.5: a long-lived loop making *unforked*
/// callbacks (they are short and on the critical path), protected by
/// task rejuvenation — if a callback panics, a new copy of the
/// dispatcher keeps running from the next event.
///
/// `next_event` produces events (`None` ends the dispatch loop);
/// `dispatch` may panic. Returns (events dispatched, rejuvenations);
/// the event count is a lower bound, because a dying incarnation's tally
/// is lost with it (only the poison event itself is re-counted).
pub fn rejuvenating_dispatcher<E, N, D>(
    ctx: &ThreadCtx,
    name: &str,
    priority: Priority,
    max_restarts: u32,
    next_event: N,
    dispatch: D,
) -> (u64, u32)
where
    E: Send + 'static,
    N: Fn(&ThreadCtx) -> Option<E> + Send + Sync + Clone + 'static,
    D: Fn(&ThreadCtx, E) + Send + Sync + Clone + 'static,
{
    let mut restarts = 0;
    let mut total: u64 = 0;
    loop {
        let ne = next_event.clone();
        let dp = dispatch.clone();
        let handle = match fork_retry(
            ctx,
            &format!("{name}#{restarts}"),
            priority,
            FORK_RETRY_ATTEMPTS,
            pcr::millis(1),
            move |_| {
                let ne = ne.clone();
                let dp = dp.clone();
                move |ctx: &ThreadCtx| {
                    let mut n: u64 = 0;
                    while let Some(ev) = ne(ctx) {
                        dp(ctx, ev); // Unforked callback: fast but vulnerable.
                        n += 1;
                    }
                    n
                }
            },
        ) {
            Ok(handle) => handle,
            // The dispatcher cannot be re-hosted: surface what was
            // delivered so far rather than killing the caller.
            Err(_) => return (total, restarts),
        };
        match ctx.join(handle) {
            Ok(n) => return (total + n, restarts),
            Err(JoinError::Panicked(_)) => {
                // The count from the dead dispatcher is lost with it; the
                // rejuvenated copy resumes from the next event.
                restarts += 1;
                total += 1; // The event whose callback panicked was consumed.
                if restarts > max_restarts {
                    return (total, restarts);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::{millis, secs, Monitor, RunLimit, Sim, SimConfig};
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn service_that_succeeds_first_try() {
        let mut sim = Sim::new(SimConfig::default());
        let h = sim.fork_root("sup", Priority::DEFAULT, move |ctx| {
            supervise(ctx, "svc", Priority::DEFAULT, 3, millis(10), |_attempt| {
                |ctx: &ThreadCtx| ctx.work(millis(1))
            })
        });
        sim.run(RunLimit::For(secs(2)));
        let report = h.into_result().unwrap().unwrap();
        assert_eq!(report.starts, 1);
        assert_eq!(report.end, ServiceEnd::Completed);
    }

    #[test]
    fn service_rejuvenates_until_success() {
        let mut sim = Sim::new(SimConfig::default());
        let h = sim.fork_root("sup", Priority::DEFAULT, move |ctx| {
            supervise(ctx, "flaky", Priority::DEFAULT, 5, millis(10), |attempt| {
                move |ctx: &ThreadCtx| {
                    ctx.work(millis(1));
                    if attempt < 3 {
                        panic!("crash on attempt {attempt}");
                    }
                }
            })
        });
        sim.run(RunLimit::For(secs(5)));
        let report = h.into_result().unwrap().unwrap();
        assert_eq!(report.starts, 4); // Attempts 0, 1, 2 crash; 3 succeeds.
        assert_eq!(report.end, ServiceEnd::Completed);
    }

    #[test]
    fn service_gives_up_after_budget() {
        let mut sim = Sim::new(SimConfig::default());
        let h = sim.fork_root("sup", Priority::DEFAULT, move |ctx| {
            supervise(ctx, "doomed", Priority::DEFAULT, 2, millis(1), |_| {
                |_ctx: &ThreadCtx| panic!("always broken")
            })
        });
        sim.run(RunLimit::For(secs(5)));
        let report = h.into_result().unwrap().unwrap();
        assert_eq!(report.starts, 3); // Initial + 2 restarts.
        assert_eq!(report.end, ServiceEnd::GaveUp("always broken".to_string()));
    }

    #[test]
    fn fork_retry_rides_out_fork_outage() {
        // §5.4 resource exhaustion, injected: every FORK before t=20ms
        // fails. With backoff the retry loop lands past the window.
        let chaos = pcr::ChaosConfig::none().fork_outage(
            pcr::SimTime::from_micros(0),
            pcr::SimTime::from_micros(20_000),
        );
        let mut sim = Sim::new(SimConfig::default().with_chaos(chaos));
        let h = sim.fork_root("forker", Priority::DEFAULT, move |ctx| {
            let handle = fork_retry(ctx, "svc", Priority::DEFAULT, 4, millis(8), |_| {
                |ctx: &ThreadCtx| {
                    ctx.work(millis(1));
                    7u32
                }
            })
            .expect("retries outlast the outage");
            ctx.join(handle).unwrap()
        });
        sim.run(RunLimit::For(secs(2)));
        assert_eq!(h.into_result().unwrap().unwrap(), 7);
        assert!(
            sim.stats().chaos_fork_failures > 0,
            "the outage never bit — the retry path was not exercised"
        );
    }

    #[test]
    fn fork_retry_exhausts_budget() {
        let chaos = pcr::ChaosConfig::none().fail_forks(1.0);
        let mut sim = Sim::new(SimConfig::default().with_chaos(chaos));
        let h = sim.fork_root("forker", Priority::DEFAULT, move |ctx| {
            fork_retry(ctx, "svc", Priority::DEFAULT, 3, millis(1), |_| {
                |_ctx: &ThreadCtx| ()
            })
            .err()
        });
        sim.run(RunLimit::For(secs(2)));
        assert_eq!(
            h.into_result().unwrap().unwrap(),
            Some(ForkError::ResourcesExhausted)
        );
    }

    #[test]
    fn supervise_survives_fork_outage() {
        // The supervisor's forks themselves hit the outage; fork_retry
        // absorbs it and the service still completes on its first start.
        let chaos = pcr::ChaosConfig::none().fork_outage(
            pcr::SimTime::from_micros(0),
            pcr::SimTime::from_micros(20_000),
        );
        let mut sim = Sim::new(SimConfig::default().with_chaos(chaos));
        let h = sim.fork_root("sup", Priority::DEFAULT, move |ctx| {
            supervise(ctx, "svc", Priority::DEFAULT, 3, millis(8), |_attempt| {
                |ctx: &ThreadCtx| ctx.work(millis(1))
            })
        });
        sim.run(RunLimit::For(secs(2)));
        let report = h.into_result().unwrap().unwrap();
        assert_eq!(report.starts, 1);
        assert_eq!(report.end, ServiceEnd::Completed);
    }

    #[test]
    fn supervise_gives_up_when_forks_never_succeed() {
        let chaos = pcr::ChaosConfig::none().fail_forks(1.0);
        let mut sim = Sim::new(SimConfig::default().with_chaos(chaos));
        let h = sim.fork_root("sup", Priority::DEFAULT, move |ctx| {
            supervise(ctx, "svc", Priority::DEFAULT, 3, millis(1), |_attempt| {
                |ctx: &ThreadCtx| ctx.work(millis(1))
            })
        });
        sim.run(RunLimit::For(secs(2)));
        let report = h.into_result().unwrap().unwrap();
        assert_eq!(report.starts, 1);
        assert!(
            matches!(&report.end, ServiceEnd::GaveUp(msg) if msg.contains("exhausted")),
            "end = {:?}",
            report.end
        );
    }

    #[test]
    fn dispatcher_survives_poison_event() {
        // 20 events; event #7 makes the (unforked) callback panic. The
        // rejuvenated dispatcher keeps delivering the rest.
        let mut sim = Sim::new(SimConfig::default());
        let delivered: Monitor<Vec<u32>> = sim.monitor("delivered", Vec::new());
        let d = delivered.clone();
        let h = sim.fork_root("input", Priority::of(6), move |ctx| {
            let counter = Arc::new(AtomicU32::new(0));
            let d2 = d.clone();
            let (n, restarts) = rejuvenating_dispatcher(
                ctx,
                "dispatcher",
                Priority::of(6),
                3,
                move |_ctx| {
                    let i = counter.fetch_add(1, Ordering::Relaxed);
                    (i < 20).then_some(i)
                },
                move |ctx, ev: u32| {
                    if ev == 7 {
                        panic!("client callback error");
                    }
                    let mut g = ctx.enter(&d2);
                    g.with_mut(|v| v.push(ev));
                },
            );
            let g = ctx.enter(&d);
            (n, restarts, g.with(|v| v.clone()))
        });
        sim.run(RunLimit::For(secs(5)));
        let (n, restarts, delivered) = h.into_result().unwrap().unwrap();
        assert_eq!(restarts, 1);
        // The dead incarnation's tally is lost with it; the returned count
        // is a lower bound (poison event + successor's events).
        assert!(n >= 13, "n = {n}");
        assert_eq!(delivered.len(), 19); // All but the poison event.
        assert!(!delivered.contains(&7));
        assert!(delivered.contains(&19));
    }
}
