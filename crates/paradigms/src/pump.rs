//! General pumps (§4.2): bounded buffers and pipeline stages.
//!
//! A *pump* picks up input from one place, possibly transforms it, and
//! produces it as output someplace else. Bounded buffers connect pumps
//! into pipelines. The paper finds pipelines used "mostly ... as a
//! programming convenience" — tokens just appear in a queue; the
//! programmer needs to understand less about the pieces being connected.

use std::collections::VecDeque;

use pcr::{Condition, Monitor, Priority, SimDuration, ThreadCtx, ThreadId};

struct QueueState<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

/// A monitor-protected bounded buffer in the classic producer–consumer
/// style, with `nonempty`/`nonfull` condition variables.
///
/// Cloning the handle shares the queue.
pub struct BoundedQueue<T: Send + 'static> {
    monitor: Monitor<QueueState<T>>,
    nonempty: Condition,
    nonfull: Condition,
}

impl<T: Send + 'static> Clone for BoundedQueue<T> {
    fn clone(&self) -> Self {
        BoundedQueue {
            monitor: self.monitor.clone(),
            nonempty: self.nonempty.clone(),
            nonfull: self.nonfull.clone(),
        }
    }
}

impl<T: Send + 'static> BoundedQueue<T> {
    /// Creates a queue before the run starts.
    ///
    /// `cv_timeout` is the timeout interval for both CVs (Mesa CVs carry
    /// their timeout; `None` waits forever).
    pub fn new_in_sim(
        sim: &mut pcr::Sim,
        name: &str,
        capacity: usize,
        cv_timeout: Option<SimDuration>,
    ) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        let monitor = sim.monitor(
            name,
            QueueState {
                items: VecDeque::new(),
                capacity,
                closed: false,
            },
        );
        let nonempty = sim.condition(&monitor, &format!("{name}.nonempty"), cv_timeout);
        let nonfull = sim.condition(&monitor, &format!("{name}.nonfull"), cv_timeout);
        BoundedQueue {
            monitor,
            nonempty,
            nonfull,
        }
    }

    /// Creates a queue from inside a running thread.
    pub fn new(
        ctx: &ThreadCtx,
        name: &str,
        capacity: usize,
        cv_timeout: Option<SimDuration>,
    ) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        let monitor = ctx.new_monitor(
            name,
            QueueState {
                items: VecDeque::new(),
                capacity,
                closed: false,
            },
        );
        let nonempty = ctx.new_condition(&monitor, &format!("{name}.nonempty"), cv_timeout);
        let nonfull = ctx.new_condition(&monitor, &format!("{name}.nonfull"), cv_timeout);
        BoundedQueue {
            monitor,
            nonempty,
            nonfull,
        }
    }

    /// Inserts `item`, blocking while the queue is full. Returns `false`
    /// (dropping the item) if the queue is closed.
    pub fn put(&self, ctx: &ThreadCtx, item: T) -> bool {
        let mut g = ctx.enter(&self.monitor);
        g.wait_until(&self.nonfull, |q| q.closed || q.items.len() < q.capacity);
        if g.with(|q| q.closed) {
            return false;
        }
        g.with_mut(|q| q.items.push_back(item));
        g.notify(&self.nonempty);
        true
    }

    /// Inserts without blocking; returns the item back if full or closed.
    pub fn try_put(&self, ctx: &ThreadCtx, item: T) -> Result<(), T> {
        let mut g = ctx.enter(&self.monitor);
        let rejected = g.with_mut(|q| {
            if q.closed || q.items.len() >= q.capacity {
                Some(item)
            } else {
                q.items.push_back(item);
                None
            }
        });
        match rejected {
            None => {
                g.notify(&self.nonempty);
                Ok(())
            }
            Some(item) => Err(item),
        }
    }

    /// Inserts as many of `items` as fit without blocking, in order,
    /// under one monitor entry. Returns the rejected tail (everything
    /// if the queue is closed). Wakes every consumer when more than one
    /// item lands, so batch producers don't strand parallel consumers.
    pub fn try_put_all(&self, ctx: &ThreadCtx, items: Vec<T>) -> Vec<T> {
        if items.is_empty() {
            return items;
        }
        let mut g = ctx.enter(&self.monitor);
        let (accepted, rejected) = g.with_mut(|q| {
            if q.closed {
                return (0, items);
            }
            let room = q.capacity.saturating_sub(q.items.len());
            let mut it = items.into_iter();
            let mut accepted = 0;
            for item in it.by_ref().take(room) {
                q.items.push_back(item);
                accepted += 1;
            }
            (accepted, it.collect())
        });
        match accepted {
            0 => {}
            1 => g.notify(&self.nonempty),
            _ => g.broadcast(&self.nonempty),
        }
        rejected
    }

    /// Removes up to `max` items, blocking while the queue is empty.
    /// Returns an empty vector once the queue is closed and drained —
    /// one monitor entry per batch instead of one per item.
    pub fn take_up_to(&self, ctx: &ThreadCtx, max: usize) -> Vec<T> {
        let mut g = ctx.enter(&self.monitor);
        g.wait_until(&self.nonempty, |q| q.closed || !q.items.is_empty());
        let items = g.with_mut(|q| {
            let n = q.items.len().min(max);
            q.items.drain(..n).collect::<Vec<_>>()
        });
        match items.len() {
            0 => {}
            1 => g.notify(&self.nonfull),
            _ => g.broadcast(&self.nonfull),
        }
        items
    }

    /// Removes the next item, blocking while the queue is empty. Returns
    /// `None` once the queue is closed and drained.
    pub fn take(&self, ctx: &ThreadCtx) -> Option<T> {
        let mut g = ctx.enter(&self.monitor);
        g.wait_until(&self.nonempty, |q| q.closed || !q.items.is_empty());
        let item = g.with_mut(|q| q.items.pop_front());
        if item.is_some() {
            g.notify(&self.nonfull);
        }
        item
    }

    /// Removes the next item without blocking.
    pub fn try_take(&self, ctx: &ThreadCtx) -> Option<T> {
        let mut g = ctx.enter(&self.monitor);
        let item = g.with_mut(|q| q.items.pop_front());
        if item.is_some() {
            g.notify(&self.nonfull);
        }
        item
    }

    /// Drains everything currently queued without blocking.
    pub fn drain(&self, ctx: &ThreadCtx) -> Vec<T> {
        let mut g = ctx.enter(&self.monitor);
        let items = g.with_mut(|q| q.items.drain(..).collect::<Vec<_>>());
        if !items.is_empty() {
            g.broadcast(&self.nonfull);
        }
        items
    }

    /// Current length.
    pub fn len(&self, ctx: &ThreadCtx) -> usize {
        let g = ctx.enter(&self.monitor);
        g.with(|q| q.items.len())
    }

    /// True if currently empty.
    pub fn is_empty(&self, ctx: &ThreadCtx) -> bool {
        self.len(ctx) == 0
    }

    /// Closes the queue: puts are rejected, takes drain then return
    /// `None`, and all waiters wake.
    pub fn close(&self, ctx: &ThreadCtx) {
        let mut g = ctx.enter(&self.monitor);
        g.with_mut(|q| q.closed = true);
        g.broadcast(&self.nonempty);
        g.broadcast(&self.nonfull);
    }

    /// True once [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self, ctx: &ThreadCtx) -> bool {
        let g = ctx.enter(&self.monitor);
        g.with(|q| q.closed)
    }
}

/// Spawns a pump thread: `take` from `input`, transform, `put` to
/// `output`, charging `cost_per_item` of CPU per item. Exits when the
/// input closes and drains (closing its output behind it).
///
/// Returns the pump thread's id.
pub fn spawn_pump<T, U, F>(
    ctx: &ThreadCtx,
    name: &str,
    priority: Priority,
    input: BoundedQueue<T>,
    output: BoundedQueue<U>,
    cost_per_item: SimDuration,
    mut transform: F,
) -> ThreadId
where
    T: Send + 'static,
    U: Send + 'static,
    F: FnMut(T) -> Option<U> + Send + 'static,
{
    ctx.fork_detached_prio(name, priority, move |ctx| {
        while let Some(item) = input.take(ctx) {
            ctx.work(cost_per_item);
            if let Some(out) = transform(item) {
                output.put(ctx, out);
            }
        }
        output.close(ctx);
    })
    .expect("fork pump")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::{millis, secs, RunLimit, Sim, SimConfig, StopReason};

    #[test]
    fn fifo_order_preserved() {
        let mut sim = Sim::new(SimConfig::default());
        let q = BoundedQueue::new_in_sim(&mut sim, "q", 4, None);
        let qp = q.clone();
        let _ = sim.fork_root("producer", Priority::DEFAULT, move |ctx| {
            for i in 0..20 {
                qp.put(ctx, i);
            }
            qp.close(ctx);
        });
        let h = sim.fork_root("consumer", Priority::DEFAULT, move |ctx| {
            let mut got = Vec::new();
            while let Some(x) = q.take(ctx) {
                got.push(x);
            }
            got
        });
        let r = sim.run(RunLimit::ToCompletion);
        assert_eq!(r.reason, StopReason::AllExited);
        assert_eq!(
            h.into_result().unwrap().unwrap(),
            (0..20).collect::<Vec<_>>()
        );
    }

    #[test]
    fn capacity_blocks_producer() {
        let mut sim = Sim::new(SimConfig::default());
        let q = BoundedQueue::new_in_sim(&mut sim, "q", 2, None);
        let qp = q.clone();
        let produced_at = sim.fork_root("producer", Priority::DEFAULT, move |ctx| {
            for i in 0..4 {
                qp.put(ctx, i);
            }
            ctx.now()
        });
        let q2 = q.clone();
        let _ = sim.fork_root("slow-consumer", Priority::of(3), move |ctx| {
            for _ in 0..4 {
                ctx.sleep_precise(millis(10));
                q2.take(ctx);
            }
        });
        sim.run(RunLimit::ToCompletion);
        // Producer could only finish after the consumer drained two slots
        // (at 10ms and 20ms).
        let t = produced_at.into_result().unwrap().unwrap();
        assert!(t.as_micros() >= 20_000, "producer finished at {t}");
    }

    #[test]
    fn try_put_and_try_take() {
        let mut sim = Sim::new(SimConfig::default());
        let q = BoundedQueue::new_in_sim(&mut sim, "q", 1, None);
        let h = sim.fork_root("t", Priority::DEFAULT, move |ctx| {
            assert!(q.try_take(ctx).is_none());
            assert!(q.try_put(ctx, 1).is_ok());
            assert_eq!(q.try_put(ctx, 2), Err(2));
            assert_eq!(q.len(ctx), 1);
            assert_eq!(q.try_take(ctx), Some(1));
            assert!(q.is_empty(ctx));
            true
        });
        sim.run(RunLimit::ToCompletion);
        assert!(h.into_result().unwrap().unwrap());
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        let mut sim = Sim::new(SimConfig::default());
        let q: BoundedQueue<u8> = BoundedQueue::new_in_sim(&mut sim, "q", 2, None);
        let qc = q.clone();
        let h = sim.fork_root("consumer", Priority::DEFAULT, move |ctx| qc.take(ctx));
        let _ = sim.fork_root("closer", Priority::of(3), move |ctx| {
            ctx.sleep_precise(millis(5));
            q.close(ctx);
        });
        let r = sim.run(RunLimit::For(secs(2)));
        assert_eq!(r.reason, StopReason::AllExited);
        assert_eq!(h.into_result().unwrap().unwrap(), None);
    }

    #[test]
    fn pipeline_of_pumps() {
        // Three-stage pipeline: source -> double -> stringify -> sink.
        let mut sim = Sim::new(SimConfig::default());
        let a: BoundedQueue<u32> = BoundedQueue::new_in_sim(&mut sim, "a", 8, None);
        let b: BoundedQueue<u32> = BoundedQueue::new_in_sim(&mut sim, "b", 8, None);
        let c: BoundedQueue<String> = BoundedQueue::new_in_sim(&mut sim, "c", 8, None);
        let (a0, a1) = (a.clone(), a);
        let (b0, b1) = (b.clone(), b);
        let (c0, c1) = (c.clone(), c);
        let _ = sim.fork_root("driver", Priority::DEFAULT, move |ctx| {
            spawn_pump(ctx, "double", Priority::DEFAULT, a1, b0, millis(1), |x| {
                Some(x * 2)
            });
            spawn_pump(
                ctx,
                "stringify",
                Priority::DEFAULT,
                b1,
                c0,
                millis(1),
                |x| Some(format!("v{x}")),
            );
            for i in 0..5 {
                a0.put(ctx, i);
            }
            a0.close(ctx);
        });
        let h = sim.fork_root("sink", Priority::DEFAULT, move |ctx| {
            let mut got = Vec::new();
            while let Some(s) = c1.take(ctx) {
                got.push(s);
            }
            got
        });
        let r = sim.run(RunLimit::For(secs(5)));
        assert_eq!(r.reason, StopReason::AllExited);
        assert_eq!(
            h.into_result().unwrap().unwrap(),
            vec!["v0", "v2", "v4", "v6", "v8"]
        );
    }

    #[test]
    fn bulk_ops_round_trip() {
        let mut sim = Sim::new(SimConfig::default());
        let q = BoundedQueue::new_in_sim(&mut sim, "q", 4, None);
        let h = sim.fork_root("t", Priority::DEFAULT, move |ctx| {
            // 6 items into capacity 4: order preserved, tail rejected.
            let rejected = q.try_put_all(ctx, (0..6).collect());
            assert_eq!(rejected, vec![4, 5]);
            assert_eq!(q.take_up_to(ctx, 3), vec![0, 1, 2]);
            assert_eq!(q.take_up_to(ctx, 8), vec![3]);
            assert!(q.try_put_all(ctx, Vec::new()).is_empty());
            q.close(ctx);
            // Closed: everything bounces, takes return empty.
            assert_eq!(q.try_put_all(ctx, vec![9]), vec![9]);
            q.take_up_to(ctx, 4).is_empty()
        });
        sim.run(RunLimit::ToCompletion);
        assert!(h.into_result().unwrap().unwrap());
    }

    #[test]
    fn bulk_put_wakes_parallel_consumers() {
        // One bulk put of 4 items must wake both blocked consumers, not
        // just one (broadcast, not notify).
        let mut sim = Sim::new(SimConfig::default());
        let q: BoundedQueue<u32> = BoundedQueue::new_in_sim(&mut sim, "q", 8, None);
        let mut handles = Vec::new();
        for i in 0..2 {
            let qc = q.clone();
            handles.push(
                sim.fork_root(&format!("c{i}"), Priority::DEFAULT, move |ctx| {
                    let got = qc.take_up_to(ctx, 2);
                    ctx.sleep_precise(millis(1));
                    got.len()
                }),
            );
        }
        let _ = sim.fork_root("producer", Priority::of(3), move |ctx| {
            ctx.sleep_precise(millis(5));
            assert!(q.try_put_all(ctx, vec![1, 2, 3, 4]).is_empty());
        });
        let r = sim.run(RunLimit::For(secs(1)));
        assert_eq!(r.reason, StopReason::AllExited);
        let total: usize = handles
            .into_iter()
            .map(|h| h.into_result().unwrap().unwrap())
            .sum();
        assert_eq!(total, 4, "both consumers must drain a batch");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let mut sim = Sim::new(SimConfig::default());
        let _: BoundedQueue<u8> = BoundedQueue::new_in_sim(&mut sim, "q", 0, None);
    }

    #[test]
    fn put_after_close_rejected() {
        let mut sim = Sim::new(SimConfig::default());
        let q = BoundedQueue::new_in_sim(&mut sim, "q", 2, None);
        let h = sim.fork_root("t", Priority::DEFAULT, move |ctx| {
            q.close(ctx);
            assert!(q.is_closed(ctx));
            !q.put(ctx, 9)
        });
        sim.run(RunLimit::ToCompletion);
        assert!(h.into_result().unwrap().unwrap());
    }
}
