//! Serializers (§4.6): a queue plus a thread that processes it.
//!
//! "The queue acts as a point of serialization in the system. The
//! primary example is in the window system where input events can arrive
//! from a number of different sources. They are handled by a single
//! thread in order to preserve their ordering." The paper's encapsulation
//! is `MBQueue` (Menu/Button Queue): mouse clicks and keystrokes enqueue
//! procedures; the serializer thread calls them in the order received.

use pcr::{Priority, SimDuration, ThreadCtx, ThreadId};

use crate::pump::BoundedQueue;

/// A queued action: a closure plus the CPU it costs to run.
type Action = (Box<dyn FnOnce(&ThreadCtx) + Send + 'static>, SimDuration);

/// The `MBQueue` serializer: enqueue closures from any thread; a single
/// worker runs them in arrival order.
pub struct MbQueue {
    queue: BoundedQueue<Action>,
    tid: ThreadId,
}

impl Clone for MbQueue {
    fn clone(&self) -> Self {
        MbQueue {
            queue: self.queue.clone(),
            tid: self.tid,
        }
    }
}

impl MbQueue {
    /// Creates the serialization context and forks its processing thread.
    pub fn new(ctx: &ThreadCtx, name: &str, priority: Priority, capacity: usize) -> Self {
        let queue: BoundedQueue<Action> = BoundedQueue::new(ctx, name, capacity, None);
        let q = queue.clone();
        let tid = ctx
            .fork_detached_prio(name, priority, move |ctx| {
                while let Some((action, cost)) = q.take(ctx) {
                    ctx.work(cost);
                    action(ctx);
                }
            })
            .expect("fork MBQueue worker");
        MbQueue { queue, tid }
    }

    /// Enqueues an action costing `cost` of CPU when executed. Blocks if
    /// the queue is full (back-pressure).
    pub fn enqueue<F>(&self, ctx: &ThreadCtx, cost: SimDuration, f: F)
    where
        F: FnOnce(&ThreadCtx) + Send + 'static,
    {
        self.queue.put(ctx, (Box::new(f), cost));
    }

    /// Stops the worker after it drains what is queued.
    pub fn stop(&self, ctx: &ThreadCtx) {
        self.queue.close(ctx);
    }

    /// Pending actions.
    pub fn backlog(&self, ctx: &ThreadCtx) -> usize {
        self.queue.len(ctx)
    }

    /// The worker thread's id.
    pub fn tid(&self) -> ThreadId {
        self.tid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcr::{millis, secs, Monitor, RunLimit, Sim, SimConfig};

    #[test]
    fn actions_run_in_arrival_order_across_producers() {
        let mut sim = Sim::new(SimConfig::default());
        let log: Monitor<Vec<(u8, u32)>> = sim.monitor("log", Vec::new());
        let l = log.clone();
        let h = sim.fork_root("window-system", Priority::of(5), move |ctx| {
            let mb = MbQueue::new(ctx, "mbqueue", Priority::of(5), 64);
            // Two event sources (mouse and keyboard) interleave enqueues.
            let mut handles = Vec::new();
            for src in 0..2u8 {
                let mb = mb.clone();
                let l2 = l.clone();
                handles.push(
                    ctx.fork(&format!("source{src}"), move |ctx| {
                        for i in 0..10u32 {
                            ctx.work(pcr::micros(500));
                            let l3 = l2.clone();
                            mb.enqueue(ctx, pcr::micros(100), move |ctx| {
                                let mut g = ctx.enter(&l3);
                                g.with_mut(|v| v.push((src, i)));
                            });
                        }
                    })
                    .unwrap(),
                );
            }
            for h in handles {
                ctx.join(h).unwrap();
            }
            mb.stop(ctx);
            ctx.sleep_precise(millis(100));
            let g = ctx.enter(&l);
            g.with(|v| v.clone())
        });
        let r = sim.run(RunLimit::For(secs(5)));
        assert!(!r.deadlocked());
        let log = h.into_result().unwrap().unwrap();
        assert_eq!(log.len(), 20);
        // Per-source order must be preserved (serialization guarantee).
        for src in 0..2u8 {
            let seq: Vec<u32> = log
                .iter()
                .filter(|(s, _)| *s == src)
                .map(|(_, i)| *i)
                .collect();
            assert_eq!(seq, (0..10).collect::<Vec<_>>(), "source {src} reordered");
        }
    }

    #[test]
    fn single_worker_means_no_interleaving_within_action() {
        // Two enqueued actions increment a counter non-atomically with a
        // work() in the middle; serialization makes this safe without a
        // monitor.
        let mut sim = Sim::new(SimConfig::default());
        let cell: Monitor<u64> = sim.monitor("cell", 0);
        let c = cell.clone();
        let h = sim.fork_root("driver", Priority::of(5), move |ctx| {
            let mb = MbQueue::new(ctx, "mb", Priority::of(4), 16);
            for _ in 0..10 {
                let c2 = c.clone();
                mb.enqueue(ctx, millis(1), move |ctx| {
                    // Read-modify-write across a work() would race if two
                    // workers ran actions concurrently.
                    let before = {
                        let g = ctx.enter(&c2);
                        g.with(|v| *v)
                    };
                    ctx.work(millis(2));
                    let mut g = ctx.enter(&c2);
                    g.with_mut(|v| *v = before + 1);
                });
            }
            mb.stop(ctx);
            ctx.sleep_precise(millis(200));
            let g = ctx.enter(&c);
            g.with(|v| *v)
        });
        sim.run(RunLimit::For(secs(5)));
        assert_eq!(h.into_result().unwrap().unwrap(), 10);
    }

    #[test]
    fn backlog_reports_pending() {
        let mut sim = Sim::new(SimConfig::default());
        let h = sim.fork_root("driver", Priority::of(6), move |ctx| {
            // Worker at lower priority: it cannot run while we hold the CPU.
            let mb = MbQueue::new(ctx, "mb", Priority::of(2), 16);
            for _ in 0..5 {
                mb.enqueue(ctx, millis(1), |_| {});
            }
            let backlog = mb.backlog(ctx);
            mb.stop(ctx);
            backlog
        });
        sim.run(RunLimit::For(secs(2)));
        assert_eq!(h.into_result().unwrap().unwrap(), 5);
    }
}
