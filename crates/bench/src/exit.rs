//! The `repro` binary's exit-code vocabulary.
//!
//! Every failure class gets a distinct code so CI and scripts can tell
//! *what* went wrong without parsing output. Commands accumulate codes
//! with [`worst`] and exit with the maximum — the most severe condition
//! wins, and success stays 0.

/// Everything checked out.
pub const OK: i32 = 0;
/// Hazard detectors fired outside an expected context, or a chaos
/// replay diverged.
pub const HAZARD: i32 = 1;
/// Bad command line.
pub const USAGE: i32 = 2;
/// A world deadlocked or wedged (including a supervised run that gave
/// up).
pub const DEADLOCK: i32 = 3;
/// `repro diff` found deltas beyond the threshold.
pub const DIFF_DELTA: i32 = 4;
/// A measured quantity regressed against a baseline, or a stored
/// failure no longer reproduces.
pub const REGRESSION: i32 = 5;
/// A file could not be read, written, or parsed.
pub const IO: i32 = 6;
/// The fuzzer found a failure signature not in the expected set.
pub const NEW_FAILURE: i32 = 7;
/// A serve run missed one of its input-to-echo latency SLO gates.
pub const SLO_BREACH: i32 = 8;

/// Accumulates exit codes: the most severe (numerically largest) wins.
pub fn worst(acc: i32, code: i32) -> i32 {
    acc.max(code)
}

/// One line per code, for `repro help`.
pub const TABLE: &str = "\
exit codes:
  0  success
  1  hazards detected / chaos replay diverged
  2  bad command line
  3  deadlock or wedge (or supervised run gave up)
  4  diff deltas beyond threshold
  5  regression vs baseline, or stored failure no longer reproduces
  6  file I/O or parse error
  7  fuzzer found a failure signature missing from --expect
  8  serve run breached an input-to-echo SLO gate";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_distinct_and_ordered_by_severity_class() {
        let codes = [
            OK,
            HAZARD,
            USAGE,
            DEADLOCK,
            DIFF_DELTA,
            REGRESSION,
            IO,
            NEW_FAILURE,
            SLO_BREACH,
        ];
        let mut dedup = codes.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len(), "exit codes must be distinct");
    }

    #[test]
    fn worst_keeps_the_maximum() {
        assert_eq!(worst(OK, DEADLOCK), DEADLOCK);
        assert_eq!(worst(NEW_FAILURE, HAZARD), NEW_FAILURE);
        assert_eq!(worst(OK, OK), OK);
    }

    #[test]
    fn table_documents_every_code() {
        for code in [
            OK,
            HAZARD,
            USAGE,
            DEADLOCK,
            DIFF_DELTA,
            REGRESSION,
            IO,
            NEW_FAILURE,
            SLO_BREACH,
        ] {
            assert!(
                TABLE
                    .lines()
                    .any(|l| l.trim_start().starts_with(&code.to_string())),
                "exit code {code} undocumented"
            );
        }
    }
}
