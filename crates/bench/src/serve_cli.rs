//! `repro serve`: the overload-resilient server world behind a CLI —
//! run a scenario cell, gate it on the input-to-echo SLOs, and
//! regression-check a stored `threadstudy-serve-v1` baseline.

use crate::exit;
use pcr::millis;
use workloads::serve::{self, ServeReport, ServeScenario, ServeSpec};

/// Options for one `repro serve` invocation.
#[derive(Clone, Debug)]
pub struct ServeOpts {
    /// Client sessions.
    pub sessions: u32,
    /// Master seed.
    pub seed: u64,
    /// Scenario cell.
    pub scenario: ServeScenario,
    /// Simulated pipeline worker threads (None = spec default).
    pub pipeline_workers: Option<usize>,
    /// Replicas to run (each must produce byte-identical JSON).
    pub reps: u32,
    /// Host executor workers for the replicas.
    pub workers: usize,
    /// Scheduling policy.
    pub policy: pcr::PolicyKind,
    /// Disable the client retry budget (the E17 counterfactual).
    pub no_retry_budget: bool,
    /// SLO overrides, milliseconds.
    pub slo_p50_ms: Option<u64>,
    /// 99th-percentile override.
    pub slo_p99_ms: Option<u64>,
    /// 99.9th-percentile override.
    pub slo_p999_ms: Option<u64>,
    /// Write the report JSON here.
    pub json: Option<String>,
    /// Regression-check against this stored report.
    pub baseline: Option<String>,
    /// Also record a Perfetto (Chrome trace-event) file of one run.
    pub chrome: Option<String>,
}

impl ServeOpts {
    /// Defaults matching the reference cell at 25k sessions.
    pub fn new(sessions: u32, seed: u64) -> ServeOpts {
        ServeOpts {
            sessions,
            seed,
            scenario: ServeScenario::Reference,
            pipeline_workers: None,
            reps: 1,
            workers: 1,
            policy: pcr::PolicyKind::default(),
            no_retry_budget: false,
            slo_p50_ms: None,
            slo_p99_ms: None,
            slo_p999_ms: None,
            json: None,
            baseline: None,
            chrome: None,
        }
    }

    /// The fully-resolved spec this invocation runs.
    pub fn spec(&self) -> ServeSpec {
        let mut spec = ServeSpec::scenario(self.scenario, self.sessions, self.seed);
        spec.policy = self.policy;
        if let Some(w) = self.pipeline_workers {
            spec.workers = w;
        }
        if self.no_retry_budget {
            spec.retry.budget_enabled = false;
        }
        if let Some(ms) = self.slo_p50_ms {
            spec.slo.p50 = millis(ms);
        }
        if let Some(ms) = self.slo_p99_ms {
            spec.slo.p99 = millis(ms);
        }
        if let Some(ms) = self.slo_p999_ms {
            spec.slo.p999 = millis(ms);
        }
        spec
    }
}

/// Runs `repro serve` and returns the exit code.
pub fn serve_cmd(opts: &ServeOpts) -> i32 {
    let spec = opts.spec();
    let label = format!(
        "serve {}/{} sessions, seed {:X}",
        spec.scenario_label(),
        spec.sessions,
        spec.seed
    );
    // Every replica is an independent deterministic sim; the executor
    // spreads them over host threads. Identical specs must produce
    // byte-identical reports at every worker count.
    let reps = opts.reps.max(1) as usize;
    let (reports, _exec) =
        crate::executor::run_indexed(opts.workers, reps, |_i| serve::run_report(spec.clone()));
    let report = &reports[0];
    let json = report.to_json().to_string();
    let mut code = exit::OK;
    for (i, r) in reports.iter().enumerate().skip(1) {
        if r.to_json().to_string() != json {
            eprintln!("FAIL {label}: replica {i} diverged from replica 0");
            code = exit::worst(code, exit::HAZARD);
        }
    }
    print!("{}", report.text());

    if let Some(path) = &opts.chrome {
        code = exit::worst(code, write_chrome_trace(&spec, path));
    }
    if let Some(path) = &opts.json {
        if let Err(e) = std::fs::write(path, json.clone() + "\n") {
            eprintln!("FAIL {label}: cannot write {path}: {e}");
            code = exit::worst(code, exit::IO);
        } else {
            eprintln!("wrote {path}");
        }
    }
    if let Some(path) = &opts.baseline {
        code = exit::worst(code, check_baseline(report, path));
    }
    let breaches = report.slo_breaches();
    for b in &breaches {
        eprintln!("FAIL {label}: SLO breach: {b}");
    }
    if !breaches.is_empty() {
        code = exit::worst(code, exit::SLO_BREACH);
    } else {
        println!("slo: all gates met");
    }
    code
}

fn check_baseline(report: &ServeReport, path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("FAIL serve: cannot read baseline {path}: {e}");
            return exit::IO;
        }
    };
    let base = match trace::Json::parse(&text).and_then(|j| ServeReport::from_json(&j)) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("FAIL serve: cannot parse baseline {path}: {e}");
            return exit::IO;
        }
    };
    let regressions = report.compare_baseline(&base);
    if regressions.is_empty() {
        println!("baseline {path}: no regressions");
        return exit::OK;
    }
    for r in &regressions {
        eprintln!("FAIL serve vs baseline {path}: {r}");
    }
    exit::REGRESSION
}

/// Records one run of the spec with the trace sink attached and writes
/// a Chrome trace-event file for ui.perfetto.dev.
fn write_chrome_trace(spec: &ServeSpec, path: &str) -> i32 {
    let window = spec.window;
    let (mut sim, _handle) = serverd::build_sim(spec.clone(), None, None);
    sim.set_sink(Box::new(pcr::VecSink::default()));
    let report = sim.run(pcr::RunLimit::For(window * 3 + pcr::secs(60)));
    if report.deadlocked() {
        eprintln!(
            "FAIL serve --chrome: traced run deadlocked ({:?})",
            report.reason
        );
        return exit::DEADLOCK;
    }
    let labels = trace::TraceLabels::from_sim(&sim);
    let events = trace::take_collector::<pcr::VecSink>(&mut sim)
        .expect("vec sink")
        .events;
    let f = match std::fs::File::create(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("FAIL serve --chrome: cannot create {path}: {e}");
            return exit::IO;
        }
    };
    if let Err(e) = trace::write_chrome(&events, &labels, std::io::BufWriter::new(f)) {
        eprintln!("FAIL serve --chrome: cannot write {path}: {e}");
        return exit::IO;
    }
    eprintln!("wrote {path}");
    exit::OK
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opts_resolve_overrides_into_the_spec() {
        let mut opts = ServeOpts::new(1000, 0xA5);
        opts.scenario = ServeScenario::Outage;
        opts.pipeline_workers = Some(4);
        opts.no_retry_budget = true;
        opts.slo_p99_ms = Some(75);
        let spec = opts.spec();
        assert_eq!(spec.workers, 4);
        assert!(!spec.retry.budget_enabled);
        assert_eq!(spec.slo.p99, millis(75));
        assert!(!spec.outage.is_empty());
        assert_eq!(spec.scenario_label(), "outage");
    }

    #[test]
    fn serve_cmd_small_reference_meets_gates() {
        let mut opts = ServeOpts::new(2000, 0xA5);
        opts.reps = 2;
        opts.workers = 2;
        assert_eq!(serve_cmd(&opts), exit::OK);
    }

    #[test]
    fn serve_cmd_flags_an_impossible_slo() {
        let mut opts = ServeOpts::new(1000, 0xA5);
        // 0ms p99 cannot be met by any run that paints anything.
        opts.slo_p99_ms = Some(0);
        assert_eq!(serve_cmd(&opts), exit::SLO_BREACH);
    }
}
