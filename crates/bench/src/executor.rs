//! A hand-rolled work-stealing executor for embarrassingly parallel,
//! deterministic work units.
//!
//! Both the benchmark matrix (`repro bench`) and the resilience fuzz
//! grid (`repro fuzz`) decompose into independent `(cell × seed × rep)`
//! tasks whose *results* are byte-deterministic — only wall-clock time
//! depends on who runs what. That makes scheduling trivial to get right
//! and worth getting fast: [`run_indexed`] pre-distributes task indices
//! round-robin across per-worker deques, owners pop from the front,
//! idle workers steal from the back of a victim's deque (the classic
//! Chase–Lev discipline, implemented with a plain mutex per deque since
//! task bodies dwarf queue traffic by many orders of magnitude), and
//! results land in indexed slots so output order never depends on the
//! schedule.
//!
//! No tasks are spawned from within tasks, so termination is simple:
//! a worker exits once every deque is empty.

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What one [`run_indexed`] call observed about its own scheduling.
#[derive(Clone, Copy, Debug)]
pub struct ExecReport {
    /// Worker threads actually used (after clamping to the task count).
    pub workers: usize,
    /// Tasks executed by a worker other than the one they were
    /// pre-distributed to.
    pub steals: u64,
}

/// Runs tasks `0..n`, each computed by `f`, on `workers` threads, and
/// returns the results in index order plus an [`ExecReport`].
///
/// `f` must be safe to call concurrently from several threads; results
/// are independent of which worker runs which task. With `workers <= 1`
/// (or `n <= 1`) everything runs on the calling thread in index order —
/// the serial reference the parallel schedules are measured against.
pub fn run_indexed<T, F>(workers: usize, n: usize, f: F) -> (Vec<T>, ExecReport)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(n.max(1));
    if workers <= 1 {
        let results = (0..n).map(&f).collect();
        return (
            results,
            ExecReport {
                workers: 1,
                steals: 0,
            },
        );
    }
    // Round-robin pre-distribution: task i belongs to deque i % workers.
    let mut deques: Vec<Mutex<std::collections::VecDeque<usize>>> = (0..workers)
        .map(|_| Mutex::new(std::collections::VecDeque::new()))
        .collect();
    for i in 0..n {
        deques[i % workers]
            .get_mut()
            .expect("fresh deque")
            .push_back(i);
    }
    let deques = &deques;
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let slots = &slots;
    let steals = AtomicU64::new(0);
    let steals = &steals;
    let f = &f;
    std::thread::scope(|s| {
        for w in 0..workers {
            s.spawn(move || loop {
                // Own work first, oldest first.
                let mut task = deques[w].lock().expect("deque poisoned").pop_front();
                let mut stolen = false;
                if task.is_none() {
                    // Steal from the back of the first non-empty victim.
                    for v in 1..workers {
                        let victim = (w + v) % workers;
                        task = deques[victim].lock().expect("deque poisoned").pop_back();
                        if task.is_some() {
                            stolen = true;
                            break;
                        }
                    }
                }
                let Some(i) = task else {
                    // Every deque empty: no task can reappear, so done.
                    break;
                };
                if stolen {
                    steals.fetch_add(1, Ordering::Relaxed);
                }
                *slots[i].lock().expect("slot poisoned") = Some(f(i));
            });
        }
    });
    let results = slots
        .iter()
        .map(|m| {
            m.lock()
                .expect("slot poisoned")
                .take()
                .expect("every task index was claimed and completed")
        })
        .collect();
    (
        results,
        ExecReport {
            workers,
            steals: steals.load(Ordering::Relaxed),
        },
    )
}

/// A line-buffered progress reporter shared by concurrent workers.
///
/// `eprintln!` from several threads interleaves *within* lines (each
/// write of the formatted pieces races separately); [`Reporter::line`]
/// formats the whole line into one buffer and hands it to the OS in a
/// single write under the stderr lock, so concurrent progress output
/// interleaves only at line granularity.
#[derive(Clone, Copy, Debug, Default)]
pub struct Reporter;

impl Reporter {
    /// Creates a reporter. Stateless: the stderr lock is the only
    /// synchronization, so clones and copies all serialize together.
    pub fn new() -> Reporter {
        Reporter
    }

    /// Emits one complete line to stderr atomically.
    pub fn line(&self, msg: &str) {
        let mut buf = String::with_capacity(msg.len() + 1);
        buf.push_str(msg);
        buf.push('\n');
        let mut err = std::io::stderr().lock();
        let _ = err.write_all(buf.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_regardless_of_workers() {
        for workers in [1, 2, 3, 8, 32] {
            let (out, report) = run_indexed(workers, 20, |i| i * i);
            assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>());
            assert!(report.workers <= 20);
        }
    }

    #[test]
    fn zero_tasks() {
        let (out, report) = run_indexed(4, 0, |i| i);
        assert!(out.is_empty());
        assert_eq!(report.workers, 1);
        assert_eq!(report.steals, 0);
    }

    #[test]
    fn serial_runs_in_order_on_calling_thread() {
        let calls = Mutex::new(Vec::new());
        let (out, report) = run_indexed(1, 5, |i| {
            calls.lock().unwrap().push(i);
            i
        });
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(*calls.lock().unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(report.workers, 1);
        assert_eq!(report.steals, 0);
    }

    #[test]
    fn uneven_tasks_all_complete() {
        // Tasks with wildly uneven cost: stealing must still cover all.
        let (out, _) = run_indexed(4, 33, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i + 1
        });
        assert_eq!(out.len(), 33);
        assert_eq!(out.iter().sum::<usize>(), (1..=33).sum::<usize>());
    }

    #[test]
    fn workers_clamped_to_task_count() {
        let (_, report) = run_indexed(16, 3, |i| i);
        assert!(report.workers <= 3);
    }
}
