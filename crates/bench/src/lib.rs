//! # bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation. The
//! `repro` binary drives it; Criterion benches in `benches/` measure the
//! runtime's primitives and paradigms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod exit;
pub mod experiments;
pub mod lint;
pub mod perf;
pub mod resilience_cli;
pub mod serve_cli;
pub mod tables;
pub mod tournament;
