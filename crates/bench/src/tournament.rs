//! The policy tournament behind `repro tournament`.
//!
//! Runs the full Cedar/GVX benchmark matrix (or a slice of it) under
//! every scheduling policy ([`pcr::PolicyKind`]) and compares the
//! per-priority wakeup-to-run latency histograms and per-monitor
//! contention profiles across policies. Each `(cell, policy)` run is an
//! independent deterministic simulation, so the whole grid parallelizes
//! through the work-stealing executor and every worker count produces
//! identical results.
//!
//! A cell that deadlocks under some policy is recorded as a failure
//! rather than a panic: the tournament's acceptance gate is that every
//! policy completes every cell deadlock-free (`repro tournament` exits
//! [`crate::exit::DEADLOCK`] otherwise). The methodology and how to read
//! the output are documented in `docs/SCHEDULING.md`; the §6.2
//! walkthrough is experiment E16 in `EXPERIMENTS.md`.

use std::path::{Path, PathBuf};

use pcr::{secs, PolicyKind, RunLimit, SimDuration};
use trace::{Json, Table};
use workloads::{build_chaos_with, harvest, BenchResult, Benchmark, System};

use crate::executor::{run_indexed, Reporter};
use crate::tables::{matrix, profile_json};

/// Parameters for one tournament run.
#[derive(Clone, Debug)]
pub struct TournamentOpts {
    /// Virtual measurement window per `(cell, policy)` run.
    pub window: SimDuration,
    /// Seed every run starts from.
    pub seed: u64,
    /// Worker threads for the grid (1 = serial; results are identical at
    /// every worker count).
    pub workers: usize,
    /// The matrix cells to race. Defaults to all twelve.
    pub cells: Vec<(System, Benchmark)>,
    /// The policies in the running. Defaults to [`PolicyKind::ALL`].
    pub policies: Vec<PolicyKind>,
    /// When set, a Chrome trace-event file (for `ui.perfetto.dev`) is
    /// written per `(cell, policy)` into this directory, from a replay of
    /// the same deterministic run.
    pub trace_dir: Option<PathBuf>,
}

impl TournamentOpts {
    /// The full tournament: every matrix cell x every policy.
    pub fn new(window: SimDuration, seed: u64, workers: usize) -> TournamentOpts {
        TournamentOpts {
            window,
            seed,
            workers,
            cells: matrix(),
            policies: PolicyKind::ALL.to_vec(),
            trace_dir: None,
        }
    }

    /// Restricts the matrix to the two reference cells (Cedar/Keyboard
    /// and GVX/Scroll) — the CI smoke slice.
    pub fn reference_cells(mut self) -> TournamentOpts {
        self.cells = vec![
            (System::Cedar, Benchmark::Keyboard),
            (System::Gvx, Benchmark::Scroll),
        ];
        self
    }
}

/// One `(cell, policy)` run of the tournament.
#[derive(Debug)]
pub struct TournamentEntry {
    /// Which system ran.
    pub system: System,
    /// Which benchmark ran.
    pub benchmark: Benchmark,
    /// Which policy dispatched it.
    pub policy: PolicyKind,
    /// The measurements, or the deadlock description when the cell did
    /// not survive this policy.
    pub outcome: Result<BenchResult, String>,
    /// Where the Chrome trace landed, when one was requested.
    pub trace_path: Option<PathBuf>,
}

impl TournamentEntry {
    /// `"Cedar/Keyboard"`-style cell label.
    pub fn cell_label(&self) -> String {
        format!("{}/{:?}", self.system.name(), self.benchmark)
    }
}

/// A finished tournament: every `(cell, policy)` entry in grid order
/// (cells outermost, policies innermost).
#[derive(Debug)]
pub struct TournamentReport {
    /// Measurement window each entry ran.
    pub window: SimDuration,
    /// Seed each entry ran from.
    pub seed: u64,
    /// The policies raced, in column order.
    pub policies: Vec<PolicyKind>,
    /// All entries.
    pub entries: Vec<TournamentEntry>,
}

/// Runs one matrix cell under `policy` without panicking on deadlock —
/// the tournament's per-entry unit. Mirrors
/// [`workloads::run_benchmark_policy`] (2 s warm-up, then the window)
/// but returns the deadlock as an error so a losing policy is reported
/// instead of aborting the grid.
pub fn run_cell(
    system: System,
    benchmark: Benchmark,
    window: SimDuration,
    seed: u64,
    policy: PolicyKind,
) -> Result<BenchResult, String> {
    let mut sim = build_chaos_with(system, benchmark, seed, pcr::ChaosConfig::none(), |cfg| {
        cfg.with_policy(policy)
    });
    let warmup = sim.run(RunLimit::For(secs(2)));
    if warmup.deadlocked() {
        return Err(format!("deadlocked during warm-up: {:?}", warmup.reason));
    }
    let start_stats = sim.stats().clone();
    let start_alloc = sim.alloc_counters();
    sim.set_sink(Box::new(trace::Collector::for_sim(&sim)));
    let report = sim.run(RunLimit::For(window));
    if report.deadlocked() {
        return Err(format!(
            "deadlocked during measurement: {:?}",
            report.reason
        ));
    }
    Ok(harvest(
        &mut sim,
        system,
        benchmark,
        &start_stats,
        start_alloc,
        report.elapsed,
        report.hazards,
    ))
}

/// Replays one `(cell, policy)` run with an event recorder attached and
/// writes it as a Chrome trace-event file under `dir`. The sink does not
/// influence scheduling, so the trace is byte-faithful to the measured
/// run (warm-up included).
fn write_cell_trace(
    dir: &Path,
    system: System,
    benchmark: Benchmark,
    window: SimDuration,
    seed: u64,
    policy: PolicyKind,
) -> Result<PathBuf, String> {
    let mut sim = build_chaos_with(system, benchmark, seed, pcr::ChaosConfig::none(), |cfg| {
        cfg.with_policy(policy)
    });
    sim.set_sink(Box::new(pcr::VecSink::default()));
    let _ = sim.run(RunLimit::For(secs(2) + window));
    let labels = trace::TraceLabels::from_sim(&sim);
    let events = trace::take_collector::<pcr::VecSink>(&mut sim)
        .expect("vec sink present")
        .events;
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let path = dir.join(format!(
        "{}-{}-{}.trace.json",
        system.name().to_ascii_lowercase(),
        format!("{benchmark:?}").to_ascii_lowercase(),
        policy
    ));
    let f = std::fs::File::create(&path)
        .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
    trace::write_chrome(&events, &labels, std::io::BufWriter::new(f))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}

/// Runs the whole grid. Entries come back in grid order regardless of
/// worker count.
pub fn run_tournament(opts: &TournamentOpts) -> TournamentReport {
    let jobs: Vec<(System, Benchmark, PolicyKind)> = opts
        .cells
        .iter()
        .flat_map(|&(sys, b)| opts.policies.iter().map(move |&p| (sys, b, p)))
        .collect();
    let reporter = Reporter::new();
    let (entries, _) = run_indexed(opts.workers.max(1), jobs.len(), |i| {
        let (system, benchmark, policy) = jobs[i];
        reporter.line(&format!(
            "  tournament: {}/{benchmark:?} under {policy} ...",
            system.name()
        ));
        let outcome = run_cell(system, benchmark, opts.window, opts.seed, policy);
        let trace_path = match (&opts.trace_dir, &outcome) {
            (Some(dir), Ok(_)) => {
                match write_cell_trace(dir, system, benchmark, opts.window, opts.seed, policy) {
                    Ok(p) => Some(p),
                    Err(e) => {
                        reporter.line(&format!("  tournament: trace export failed: {e}"));
                        None
                    }
                }
            }
            _ => None,
        };
        TournamentEntry {
            system,
            benchmark,
            policy,
            outcome,
            trace_path,
        }
    });
    TournamentReport {
        window: opts.window,
        seed: opts.seed,
        policies: opts.policies.clone(),
        entries,
    }
}

impl TournamentReport {
    /// The entries that did not complete their cell, in grid order.
    pub fn failures(&self) -> Vec<&TournamentEntry> {
        self.entries.iter().filter(|e| e.outcome.is_err()).collect()
    }

    /// The grid as one comparison table: a row per `(cell, policy)` with
    /// the headline rates, contention share, and worst wakeup-to-run
    /// latency.
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new(
            "Policy tournament (per-cell headline comparison)",
            &[
                "Cell",
                "Policy",
                "Switches/sec",
                "%contended",
                "Worst wait (us)",
                "Status",
            ],
        );
        for e in &self.entries {
            match &e.outcome {
                Ok(r) => {
                    let worst_wait = r
                        .sched_latency
                        .max_wait
                        .iter()
                        .map(|d| d.as_micros())
                        .max()
                        .unwrap_or(0);
                    t.row(vec![
                        e.cell_label(),
                        e.policy.to_string(),
                        trace::f0(r.rates.switches_per_sec),
                        format!("{:.3}%", r.rates.contention_pct),
                        worst_wait.to_string(),
                        "ok".to_string(),
                    ]);
                }
                Err(msg) => {
                    t.row(vec![
                        e.cell_label(),
                        e.policy.to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        format!("FAIL: {msg}"),
                    ]);
                }
            }
        }
        t
    }

    /// Per-priority mean/max wakeup-to-run latency for one cell, one
    /// column pair per policy — the §6.2 comparison the tournament
    /// exists for. Rows cover every priority any policy dispatched.
    pub fn latency_comparison(&self, system: System, benchmark: Benchmark) -> Table {
        let mut header = vec!["Priority".to_string()];
        for p in &self.policies {
            header.push(format!("{p} mean us"));
            header.push(format!("{p} max us"));
        }
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new(
            &format!(
                "Wakeup-to-run latency by priority — {}/{benchmark:?}",
                system.name()
            ),
            &header_refs,
        );
        let cell_entries: Vec<&TournamentEntry> = self
            .entries
            .iter()
            .filter(|e| e.system == system && e.benchmark == benchmark)
            .collect();
        for prio in 0..7 {
            let active = cell_entries.iter().any(|e| {
                e.outcome
                    .as_ref()
                    .is_ok_and(|r| r.sched_latency.samples[prio] > 0)
            });
            if !active {
                continue;
            }
            let mut row = vec![format!("P{}", prio + 1)];
            for policy in &self.policies {
                let entry = cell_entries.iter().find(|e| e.policy == *policy);
                match entry.map(|e| e.outcome.as_ref()) {
                    Some(Ok(r)) if r.sched_latency.samples[prio] > 0 => {
                        let mean = r.sched_latency.mean_wait(prio).map_or(0, |d| d.as_micros());
                        row.push(mean.to_string());
                        row.push(r.sched_latency.max_wait[prio].as_micros().to_string());
                    }
                    _ => {
                        row.push("-".to_string());
                        row.push("-".to_string());
                    }
                }
            }
            t.row(row);
        }
        t
    }

    /// The machine-readable comparison (`threadstudy-tournament-v1`):
    /// per cell, per policy, the headline rates plus the full
    /// [`crate::tables::profile_json`] profile (per-monitor contention
    /// and the per-priority log2-us latency histograms).
    pub fn to_json(&self) -> Json {
        let mut cells: Vec<(System, Benchmark)> = Vec::new();
        for e in &self.entries {
            if !cells.contains(&(e.system, e.benchmark)) {
                cells.push((e.system, e.benchmark));
            }
        }
        let cell_objs = cells.iter().map(|&(system, benchmark)| {
            let policies = self
                .entries
                .iter()
                .filter(|e| e.system == system && e.benchmark == benchmark)
                .map(|e| match &e.outcome {
                    Ok(r) => Json::obj([
                        ("policy", Json::from(e.policy.as_str())),
                        ("ok", Json::Bool(true)),
                        ("switches_per_sec", Json::from(r.rates.switches_per_sec)),
                        ("waits_per_sec", Json::from(r.rates.waits_per_sec)),
                        ("ml_enters_per_sec", Json::from(r.rates.ml_enters_per_sec)),
                        ("contention_pct", Json::from(r.rates.contention_pct)),
                        ("event_volume", Json::from(r.event_volume)),
                        (
                            "cpu_by_priority_us",
                            Json::from(
                                r.cpu_by_priority
                                    .iter()
                                    .map(|d| d.as_micros())
                                    .collect::<Vec<_>>(),
                            ),
                        ),
                        ("profile", profile_json(&r.contention, &r.sched_latency)),
                        (
                            "trace",
                            e.trace_path
                                .as_ref()
                                .map_or(Json::Null, |p| Json::from(p.display().to_string())),
                        ),
                    ]),
                    Err(msg) => Json::obj([
                        ("policy", Json::from(e.policy.as_str())),
                        ("ok", Json::Bool(false)),
                        ("error", Json::from(msg.as_str())),
                    ]),
                });
            Json::obj([
                ("system", Json::from(system.name())),
                ("benchmark", Json::from(format!("{benchmark:?}"))),
                ("policies", Json::arr(policies)),
            ])
        });
        Json::obj([
            ("schema", Json::from("threadstudy-tournament-v1")),
            ("window_us", Json::from(self.window.as_micros())),
            ("seed", Json::from(format!("{:#x}", self.seed))),
            (
                "policies",
                Json::arr(self.policies.iter().map(|p| Json::from(p.as_str()))),
            ),
            ("cells", Json::arr(cell_objs)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_slice_is_the_two_profile_cells() {
        let opts = TournamentOpts::new(secs(1), 1, 1).reference_cells();
        assert_eq!(
            opts.cells,
            vec![
                (System::Cedar, Benchmark::Keyboard),
                (System::Gvx, Benchmark::Scroll)
            ]
        );
        assert_eq!(opts.policies, PolicyKind::ALL.to_vec());
    }

    #[test]
    fn json_reports_failures_as_not_ok() {
        let report = TournamentReport {
            window: secs(1),
            seed: 7,
            policies: vec![PolicyKind::RoundRobin],
            entries: vec![TournamentEntry {
                system: System::Cedar,
                benchmark: Benchmark::Idle,
                policy: PolicyKind::RoundRobin,
                outcome: Err("deadlocked during warm-up: ...".to_string()),
                trace_path: None,
            }],
        };
        let j = report.to_json();
        assert_eq!(
            j.get("schema").and_then(Json::as_str),
            Some("threadstudy-tournament-v1")
        );
        let cell = &j.get("cells").unwrap().as_array().unwrap()[0];
        let pol = &cell.get("policies").unwrap().as_array().unwrap()[0];
        assert_eq!(pol.get("ok").and_then(Json::as_bool), Some(false));
        assert!(pol.get("error").is_some());
        assert_eq!(report.failures().len(), 1);
    }
}
