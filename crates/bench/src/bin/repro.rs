//! Regenerates the paper's tables, figures, and experiments, and hosts
//! the resilience harness (`fuzz`, `shrink`, `replay`, `chaos
//! --recover`).
//!
//! Exit codes are unified in [`bench::exit`]: 0 success, 1 hazards or
//! replay divergence, 2 usage, 3 deadlock/wedge, 4 diff deltas, 5
//! regression or non-reproducing case, 6 file I/O, 7 new fuzz failure
//! signature, 8 serve SLO breach. When several conditions accumulate,
//! the largest code wins.

use bench::exit;
use pcr::secs;

/// The usage text; printed on `help` and (to stderr) on a bad command.
const USAGE: &str = "\
usage: repro <command> [options]

commands:
  tables   [--window SECS]   Tables 1-3 (runs all 12 benchmarks)
  table4                     Table 4 (static census)
  figures  [--window SECS]   interval/priority/generation figures
  experiments                the §5/§6 experiments (E5-E13, E17)
  slack|spurious|inversion|quantum|mistakes|forkfail|weakmem|xlib|exploiters|retrystorm
                             one experiment by name
  history                    a 100ms event history of Cedar typing
  contention                 the §6.1 contention profile and §6.2 latency
                             histogram (GVX scroll, Cedar typing)
  trace    [--chrome PATH] [--jsonl PATH] [--window SECS] [--chaos]
                             record one Cedar/Keyboard run (default 5s)
                             and export it: --chrome writes a Chrome
                             trace-event file for ui.perfetto.dev,
                             --jsonl the raw event stream (defaults to
                             trace-chrome.json when neither is given)
  diff     A.jsonl B.jsonl [--threshold PCT] [--schedule FILE]
                             align two exported runs and report rate/
                             latency/contention deltas beyond PCT
                             (default 1%); exits 4 on any delta; with
                             --schedule, names the fault sites a stored
                             fault schedule injects so its decisions can
                             be correlated with the diff
  chaos    [--window SECS] [--recover] [--json PATH]
                             fault-injected runs, replayed twice:
                             asserts byte-identical traces + hazard
                             table; with --recover, wedges each demo
                             cell unsupervised, then reruns it under the
                             deadlock-recovery supervisor and reports
                             recovery actions + degradation score; the
                             §6.2 metalock-inversion cell must resolve
                             via donation/priority boost, restart-free
  fuzz     [--budget N] [--workload SYS/BENCH] [--out DIR] [--shrink]
           [--expect FILE] [--window SECS] [--guided] [--compare-grid]
           [--wall-budget-ms MS] [--stats PATH]
                             chaos-schedule fuzzing: sweep seeds and
                             intensity grids over the benchmark matrix
                             plus the multiprocessor and weak-memory
                             worlds (default budget 64), store each
                             unique failure as a replayable schedule
                             under DIR (default target/fuzz); --guided
                             runs the coverage-guided mutation search
                             (corpus energy biased toward schedules
                             whose mutations find new signatures);
                             --compare-grid also runs the plain grid on
                             the same budget and exits 5 if guided found
                             fewer signatures; --wall-budget-ms caps
                             each sweep's wall clock; --stats writes a
                             JSON artifact with signatures/cpu-minute;
                             --shrink minimizes each stored case;
                             --expect FILE exits 7 on any signature
                             missing from FILE
  shrink   FILE [--max-replays N]
                             delta-debug a stored failing schedule to a
                             locally minimal one with the same failure
                             signature; writes FILE with extension
                             .min.json and prints a repro command
  replay   FILE | --all DIR  replay a stored failing schedule (or, with
                             --all, every .json case under DIR in sorted
                             order — the corpus regression suite) and
                             verify each still reproduces its signature;
                             the worst per-case exit code wins
  lint     [--json PATH] [--sarif PATH] [--baseline PATH [--write-baseline]]
           [--confirm DIR]   threadlint: static discipline lints and the
                             fork-site self-census over this workspace;
                             --sarif writes a SARIF 2.1.0 log, --baseline
                             ratchets findings against a committed
                             inventory (two-sided: new findings AND stale
                             entries fail; --write-baseline regenerates),
                             --confirm replays the stored corpus in DIR
                             and classifies each finding as confirmed /
                             plausible / unreached
  markdown [--window SECS]   Tables 1-4 as Markdown (for EXPERIMENTS.md)
  tournament [--window SECS] [--json PATH] [--trace-dir DIR]
           [--reference | --workload SYS/BENCH]
                             the scheduling-policy tournament: run the
                             benchmark matrix under every policy (rr,
                             cfs, lottery, mlfq) and compare per-priority
                             wakeup-to-run latency and contention across
                             policies (docs/SCHEDULING.md); --json writes
                             the threadstudy-tournament-v1 comparison,
                             --trace-dir a Perfetto trace per
                             (cell, policy), --reference restricts to
                             Cedar/Keyboard + GVX/Scroll; exits 3 unless
                             every policy completes every cell
                             deadlock-free
  bench    [--reps N] [--json PATH] [--baseline PATH]
                             wall-clock perf harness: times every matrix
                             cell (median of N reps, default 3), reports
                             simulated events/sec and the work-stealing
                             executor's scaling curve (1, 2, and max
                             workers), and writes BENCH_threadstudy.json;
                             with --baseline, fails if aggregate
                             events/sec regressed more than 30% vs that
                             file
  serve    [--sessions N] [--scenario reference|burst|outage]
           [--chaos outage] [--reps N] [--pipeline-workers N]
           [--no-retry-budget] [--json PATH] [--baseline PATH]
           [--chrome PATH] [--slo-p50-ms N] [--slo-p99-ms N]
           [--slo-p999-ms N]
                             the overload-resilient serve world
                             (docs/SERVING.md): an open-loop fleet of N
                             client sessions (default 25000) against the
                             input-to-echo pipeline with admission
                             control, deadline shedding, retry budgets,
                             a circuit breaker, and the degradation
                             ladder; prints the threadstudy-serve-v1
                             report and gates the run on its
                             p50/p99/p999 SLOs (exit 8 on breach);
                             --reps N runs N replicas on the host
                             executor and exits 1 unless their reports
                             are byte-identical; --baseline regression-
                             checks a stored report (exit 5 on drift);
                             --chaos outage is shorthand for --scenario
                             outage (mid-run X-server blackouts);
                             --chrome additionally records one traced
                             run for ui.perfetto.dev
  all      [--window SECS] [--json PATH]   everything
  help                       this text

global options:
  --seed HEX     RNG seed for the simulated worlds (default ceda2026;
                 history defaults to its own e7e27); even number of hex
                 digits, max 16, 0x prefix and _ separators allowed
  --workers N    worker threads for the matrix/fuzz executor (default:
                 all hardware threads); results are identical at every
                 worker count, only wall-clock time changes
  --serial       equivalent to --workers 1: run the matrix one cell at
                 a time on the calling thread
  --policy P     scheduling policy for the simulated worlds: rr (the
                 paper's 7-priority round-robin, default), cfs, lottery,
                 or mlfq; honored by bench, chaos, fuzz, and trace
                 (tournament always races all four); see
                 docs/SCHEDULING.md";

/// Reports a failed run. Returns the exit code the condition maps to
/// ([`exit::OK`] when the run was fine) so callers can accumulate the
/// worst one.
fn check_run(label: &str, report: &pcr::RunReport) -> i32 {
    let mut code = exit::OK;
    if report.deadlocked() {
        eprintln!("FAIL {label}: deadlocked ({:?})", report.reason);
        code = exit::worst(code, exit::DEADLOCK);
    }
    if report.hazardous() {
        eprintln!("FAIL {label}: {} hazards detected", report.hazards.total());
        eprintln!("{}", trace::hazard_table(&report.hazards).to_text());
        code = exit::worst(code, exit::HAZARD);
    }
    code
}

fn history(seed: u64) -> i32 {
    use trace::Timeline;
    let mut sim = workloads::runner::build(
        workloads::System::Cedar,
        workloads::Benchmark::Keyboard,
        seed,
    );
    sim.set_sink(Box::new(Timeline::new()));
    let report = sim.run(pcr::RunLimit::For(secs(5)));
    let infos = sim.threads();
    let mut tl = *trace::take_collector::<Timeline>(&mut sim).expect("timeline");
    tl.name_threads(&infos);
    println!(
        "{}",
        tl.render(pcr::SimTime::from_micros(3_000_000), pcr::millis(100), 80)
    );
    println!("{}", trace::thread_table(&infos).to_text());
    check_run("history Cedar/Keyboard", &report)
}

fn contention(seed: u64) -> i32 {
    use trace::ContentionProfiler;
    let mut code = exit::OK;
    for (sys, bench) in [
        (workloads::System::Gvx, workloads::Benchmark::Scroll),
        (workloads::System::Cedar, workloads::Benchmark::Keyboard),
    ] {
        let mut sim = workloads::runner::build(sys, bench, seed);
        let mut profiler = ContentionProfiler::new();
        profiler.set_topology(
            sim.monitor_names(),
            sim.condition_info()
                .iter()
                .map(|(_, m)| m.as_u32())
                .collect(),
        );
        sim.set_sink(Box::new(profiler));
        let report = sim.run(pcr::RunLimit::For(secs(30)));
        code = exit::worst(
            code,
            check_run(&format!("contention {}/{bench:?}", sys.name()), &report),
        );
        let prof = trace::take_collector::<ContentionProfiler>(&mut sim).expect("profiler");
        println!(
            "{} / {bench:?}: {} of {} entries contended ({:.3}%)",
            sys.name(),
            prof.total_contended(),
            prof.total_enters(),
            100.0 * prof.total_contended() as f64 / prof.total_enters().max(1) as f64
        );
        let rows = prof.rows();
        let shown = rows.len().min(12);
        println!("{}", trace::contention_table(&rows[..shown]).to_text());
        if rows.len() > shown {
            println!(
                "({} more monitors below the hottest {shown})\n",
                rows.len() - shown
            );
        }
        println!(
            "{}",
            trace::latency_table(&sim.stats().sched_latency).to_text()
        );
    }
    code
}

/// `repro trace`: record one Cedar/Keyboard run and export it as a
/// Chrome trace-event file (for `ui.perfetto.dev`) and/or raw JSONL.
fn trace_cmd(
    window: pcr::SimDuration,
    seed: u64,
    policy: pcr::PolicyKind,
    chaos: bool,
    chrome_path: Option<&str>,
    jsonl_path: Option<&str>,
) -> i32 {
    let faults = if chaos {
        workloads::chaos_preset()
    } else {
        pcr::ChaosConfig::none()
    };
    let mut sim = workloads::build_chaos_with(
        workloads::System::Cedar,
        workloads::Benchmark::Keyboard,
        seed,
        faults,
        |cfg| cfg.with_policy(policy),
    );
    sim.set_sink(Box::new(pcr::VecSink::default()));
    let report = sim.run(pcr::RunLimit::For(window));
    if report.deadlocked() {
        eprintln!("FAIL trace: deadlocked ({:?})", report.reason);
        return exit::DEADLOCK;
    }
    let labels = trace::TraceLabels::from_sim(&sim);
    let events = trace::take_collector::<pcr::VecSink>(&mut sim)
        .expect("vec sink")
        .events;
    let chrome_default;
    let chrome_path = match (chrome_path, jsonl_path) {
        (None, None) => {
            chrome_default = "trace-chrome.json".to_string();
            Some(chrome_default.as_str())
        }
        (c, _) => c,
    };
    if let Some(path) = chrome_path {
        let f = std::fs::File::create(path).expect("create chrome trace");
        trace::write_chrome(&events, &labels, std::io::BufWriter::new(f)).expect("write chrome");
        eprintln!("wrote {path}");
    }
    if let Some(path) = jsonl_path {
        let f = std::fs::File::create(path).expect("create jsonl trace");
        trace::write_jsonl(&events, std::io::BufWriter::new(f)).expect("write jsonl");
        eprintln!("wrote {path}");
    }
    println!(
        "trace: Cedar/Keyboard, {} of virtual time, {} events{}",
        report.elapsed,
        events.len(),
        if chaos { " (chaos preset)" } else { "" }
    );
    exit::OK
}

/// `repro diff`: align two JSONL traces and report the deltas; with
/// `--schedule`, also name the fault sites a stored schedule injects.
fn diff_cmd(path_a: &str, path_b: &str, threshold_pct: f64, schedule: Option<&str>) -> i32 {
    let load = |path: &str| -> Vec<trace::OwnedEventRecord> {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(exit::IO);
        });
        trace::parse_jsonl(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(exit::IO);
        })
    };
    let a = load(path_a);
    let b = load(path_b);
    let report = trace::diff_runs(&a, &b, threshold_pct);
    print!("{}", report.render());
    if let Some(schedule_path) = schedule {
        match bench::resilience_cli::describe_schedule(std::path::Path::new(schedule_path)) {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("FAIL diff: {e}");
                return exit::IO;
            }
        }
    }
    if report.is_clean() {
        exit::OK
    } else {
        exit::DIFF_DELTA
    }
}

/// Chaos-mode smoke: one Cedar and one GVX benchmark with the standard
/// fault mix injected, each run twice from the same seed. The two
/// replays must produce byte-identical JSONL event traces and identical
/// hazard tallies — the acceptance bar for deterministic injection.
fn chaos(window: pcr::SimDuration, seed: u64, policy: pcr::PolicyKind) -> i32 {
    let preset = workloads::chaos_preset();
    let mut code = exit::OK;
    for (sys, bench) in [
        (workloads::System::Cedar, workloads::Benchmark::Keyboard),
        (workloads::System::Gvx, workloads::Benchmark::Scroll),
    ] {
        let label = format!("chaos {}/{bench:?}", sys.name());
        let run = || {
            let mut sim = workloads::build_chaos_with(sys, bench, seed, preset.clone(), |cfg| {
                cfg.with_policy(policy)
            });
            sim.set_sink(Box::new(pcr::VecSink::default()));
            let report = sim.run(pcr::RunLimit::For(window));
            let events = trace::take_collector::<pcr::VecSink>(&mut sim)
                .expect("vec sink")
                .events;
            let mut buf = Vec::new();
            trace::write_jsonl(&events, &mut buf).expect("serialize trace");
            (buf, report)
        };
        let (trace_a, report_a) = run();
        let (trace_b, report_b) = run();
        println!(
            "{label}: {} trace events, {} hazards",
            trace_a.iter().filter(|b| **b == b'\n').count(),
            report_a.hazards.total(),
        );
        println!("{}", trace::hazard_table(&report_a.hazards).to_text());
        let mut ok = true;
        if report_a.deadlocked() {
            eprintln!("FAIL {label}: deadlocked ({:?})", report_a.reason);
            code = exit::worst(code, exit::DEADLOCK);
            ok = false;
        }
        if trace_a != trace_b {
            let first_diff = trace_a
                .iter()
                .zip(trace_b.iter())
                .position(|(a, b)| a != b)
                .unwrap_or(trace_a.len().min(trace_b.len()));
            eprintln!(
                "FAIL {label}: same-seed replay diverged (lengths {} vs {}, first diff at byte {first_diff})",
                trace_a.len(),
                trace_b.len(),
            );
            code = exit::worst(code, exit::HAZARD);
            ok = false;
        }
        if report_a.hazards != report_b.hazards {
            eprintln!(
                "FAIL {label}: hazard tallies diverged across replays:\n{:?}\n{:?}",
                report_a.hazards, report_b.hazards
            );
            code = exit::worst(code, exit::HAZARD);
            ok = false;
        }
        if ok {
            println!("{label}: replay byte-identical, hazard tallies stable");
        }
    }
    code
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // A leading `--flag` means "all the default work, with options".
    let what = match args.first().map(String::as_str) {
        None => "all",
        Some("-h") | Some("--help") => "help",
        Some(first) if first.starts_with("--") => "all",
        Some(first) => first,
    };
    let window_flag = args
        .iter()
        .position(|a| a == "--window")
        .and_then(|i| args.get(i + 1))
        .map(|s| secs(parse_positive("--window", s)));
    let window = window_flag.unwrap_or(secs(30));
    // `--seed HEX` (0x prefix and _ separators accepted). Subcommands
    // keep their historical defaults when the flag is absent, so
    // existing outputs stay byte-identical.
    let seed_flag: Option<u64> = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|s| match parse_seed(s) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bad --seed {s:?}: {e}");
                std::process::exit(exit::USAGE);
            }
        });
    let seed = seed_flag.unwrap_or(0xCEDA_2026);
    let serial = args.iter().any(|a| a == "--serial");
    let workers_flag: Option<usize> = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .map(|s| match s.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("bad --workers {s:?}: expected a positive integer");
                std::process::exit(exit::USAGE);
            }
        });
    let workers = if serial {
        1
    } else {
        workers_flag.unwrap_or_else(bench::tables::workers_available)
    };
    let run_matrix = |window, seed| bench::tables::run_all_with_workers(window, seed, workers);
    // `--policy` (rr | cfs | lottery | mlfq); default is the paper's
    // round-robin, so outputs without the flag stay byte-identical.
    let policy: pcr::PolicyKind = args
        .iter()
        .position(|a| a == "--policy")
        .and_then(|i| args.get(i + 1))
        .map(|s| match s.parse() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("bad --policy: {e}");
                std::process::exit(exit::USAGE);
            }
        })
        .unwrap_or_default();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    let mut code = exit::OK;
    match what {
        "table4" => println!("{}", bench::tables::table4().to_text()),
        "experiments" => {
            for section in bench::experiments::all_reports() {
                println!("{section}");
            }
        }
        exp if bench::experiments::report_by_name(exp).is_some() => {
            println!("{}", bench::experiments::report_by_name(exp).unwrap());
        }
        "help" => println!("{USAGE}\n\n{}", exit::TABLE),
        "history" => code = exit::worst(code, history(seed_flag.unwrap_or(0xE7E27))),
        "contention" => code = exit::worst(code, contention(seed)),
        "trace" => {
            code = exit::worst(
                code,
                trace_cmd(
                    window_flag.unwrap_or(secs(5)),
                    seed,
                    policy,
                    args.iter().any(|a| a == "--chaos"),
                    flag_value("--chrome").as_deref(),
                    flag_value("--jsonl").as_deref(),
                ),
            );
        }
        "diff" => {
            let positional: Vec<&String> = args[1..]
                .iter()
                .take_while(|a| !a.starts_with("--"))
                .collect();
            let [path_a, path_b] = positional[..] else {
                eprintln!("diff needs exactly two trace files\n{USAGE}");
                std::process::exit(exit::USAGE);
            };
            let threshold = args
                .iter()
                .position(|a| a == "--threshold")
                .and_then(|i| args.get(i + 1))
                .and_then(|s| s.parse::<f64>().ok())
                .unwrap_or(1.0);
            code = exit::worst(
                code,
                diff_cmd(
                    path_a,
                    path_b,
                    threshold,
                    flag_value("--schedule").as_deref(),
                ),
            );
        }
        "chaos" => {
            if args.iter().any(|a| a == "--recover") {
                code = exit::worst(
                    code,
                    bench::resilience_cli::recover_cmd(
                        window_flag.unwrap_or(secs(12)),
                        seed,
                        json_path.as_deref(),
                    ),
                );
            } else {
                code = exit::worst(code, chaos(window, seed, policy));
            }
        }
        "fuzz" => {
            let workload = match flag_value("--workload") {
                None => None,
                Some(w) => match bench::resilience_cli::parse_workload(&w) {
                    Ok(cell) => Some(cell),
                    Err(e) => {
                        eprintln!("{e}\n{USAGE}");
                        std::process::exit(exit::USAGE);
                    }
                },
            };
            let opts = bench::resilience_cli::FuzzOpts {
                budget: flag_value("--budget")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(64),
                base_seed: seed_flag.unwrap_or(0x5EED),
                workload,
                out_dir: flag_value("--out")
                    .unwrap_or_else(|| "target/fuzz".to_string())
                    .into(),
                shrink: args.iter().any(|a| a == "--shrink"),
                expect: flag_value("--expect").map(Into::into),
                window_secs: flag_value("--window").and_then(|s| s.parse().ok()),
                guided: args.iter().any(|a| a == "--guided"),
                compare_grid: args.iter().any(|a| a == "--compare-grid"),
                wall_budget_ms: flag_value("--wall-budget-ms").and_then(|s| s.parse().ok()),
                stats: flag_value("--stats").map(Into::into),
                workers,
                policy,
            };
            code = exit::worst(code, bench::resilience_cli::fuzz_cmd(&opts));
        }
        "shrink" => {
            let Some(file) = args.get(1).filter(|a| !a.starts_with("--")) else {
                eprintln!("shrink needs a stored case file\n{USAGE}");
                std::process::exit(exit::USAGE);
            };
            let max_replays = flag_value("--max-replays")
                .and_then(|s| s.parse().ok())
                .unwrap_or(150);
            code = exit::worst(
                code,
                bench::resilience_cli::shrink_cmd(std::path::Path::new(file), max_replays),
            );
        }
        "replay" => {
            if args.iter().any(|a| a == "--all") {
                let Some(dir) = flag_value("--all") else {
                    eprintln!("replay --all needs a corpus directory\n{USAGE}");
                    std::process::exit(exit::USAGE);
                };
                code = exit::worst(
                    code,
                    bench::resilience_cli::replay_all_cmd(std::path::Path::new(&dir)),
                );
            } else {
                let Some(file) = args.get(1).filter(|a| !a.starts_with("--")) else {
                    eprintln!("replay needs a stored case file\n{USAGE}");
                    std::process::exit(exit::USAGE);
                };
                code = exit::worst(
                    code,
                    bench::resilience_cli::replay_cmd(std::path::Path::new(file)),
                );
            }
        }
        "lint" => {
            let opts = bench::lint::LintOpts {
                json: json_path.clone(),
                sarif: flag_value("--sarif"),
                baseline: flag_value("--baseline"),
                write_baseline: args.iter().any(|a| a == "--write-baseline"),
                confirm: flag_value("--confirm"),
            };
            if bench::lint::run(&opts) {
                code = exit::worst(code, exit::HAZARD);
            }
        }
        "bench" => {
            let reps = flag_value("--reps")
                .map(|s| parse_positive_u32("--reps", &s))
                .unwrap_or(3);
            let baseline_path = args
                .iter()
                .position(|a| a == "--baseline")
                .and_then(|i| args.get(i + 1))
                .cloned();
            let report = bench::perf::measure(window, seed, reps, workers, policy);
            print!("{}", report.text());
            let path = json_path
                .clone()
                .unwrap_or_else(|| "BENCH_threadstudy.json".to_string());
            std::fs::write(&path, report.to_json().pretty()).expect("write bench json");
            eprintln!("wrote {path}");
            if let Some(bpath) = baseline_path {
                let base = std::fs::read_to_string(&bpath)
                    .ok()
                    .as_deref()
                    .and_then(bench::perf::baseline_events_per_sec);
                match base {
                    Some(base) => {
                        let cur = report.aggregate_events_per_sec;
                        println!(
                            "baseline {base:.0} events/sec, current {cur:.0} ({:+.1}%)",
                            100.0 * (cur / base - 1.0)
                        );
                        if cur < 0.70 * base {
                            eprintln!(
                                "FAIL bench: aggregate events/sec regressed more than 30% vs {bpath}"
                            );
                            code = exit::worst(code, exit::REGRESSION);
                        }
                    }
                    None => {
                        eprintln!("FAIL bench: no aggregate_events_per_sec in baseline {bpath}");
                        code = exit::worst(code, exit::REGRESSION);
                    }
                }
            }
        }
        "serve" => {
            let mut opts = bench::serve_cli::ServeOpts::new(
                flag_value("--sessions")
                    .map(|s| parse_positive_u32("--sessions", &s))
                    .unwrap_or(25_000),
                seed,
            );
            if let Some(s) = flag_value("--scenario") {
                opts.scenario =
                    workloads::serve::ServeScenario::from_label(&s).unwrap_or_else(|| {
                        eprintln!("bad --scenario {s:?}: expected reference, burst, or outage");
                        std::process::exit(exit::USAGE);
                    });
            }
            if let Some(c) = flag_value("--chaos") {
                if c != "outage" {
                    eprintln!("bad --chaos {c:?}: serve only injects the outage fault mix");
                    std::process::exit(exit::USAGE);
                }
                opts.scenario = workloads::serve::ServeScenario::Outage;
            }
            opts.pipeline_workers = flag_value("--pipeline-workers")
                .map(|s| parse_positive("--pipeline-workers", &s) as usize);
            opts.reps = flag_value("--reps")
                .map(|s| parse_positive_u32("--reps", &s))
                .unwrap_or(1);
            opts.workers = workers;
            opts.policy = policy;
            opts.no_retry_budget = args.iter().any(|a| a == "--no-retry-budget");
            opts.slo_p50_ms =
                flag_value("--slo-p50-ms").map(|s| parse_positive("--slo-p50-ms", &s));
            opts.slo_p99_ms =
                flag_value("--slo-p99-ms").map(|s| parse_positive("--slo-p99-ms", &s));
            opts.slo_p999_ms =
                flag_value("--slo-p999-ms").map(|s| parse_positive("--slo-p999-ms", &s));
            opts.json = json_path.clone();
            opts.baseline = flag_value("--baseline");
            opts.chrome = flag_value("--chrome");
            code = exit::worst(code, bench::serve_cli::serve_cmd(&opts));
        }
        "tournament" => {
            let mut opts = bench::tournament::TournamentOpts::new(
                window_flag.unwrap_or(secs(10)),
                seed,
                workers,
            );
            if args.iter().any(|a| a == "--reference") {
                opts = opts.reference_cells();
            } else if let Some(w) = flag_value("--workload") {
                match bench::resilience_cli::parse_workload(&w) {
                    Ok((system, benchmark)) => opts.cells = vec![(system, benchmark)],
                    Err(e) => {
                        eprintln!("{e}\n{USAGE}");
                        std::process::exit(exit::USAGE);
                    }
                }
            }
            opts.trace_dir = flag_value("--trace-dir").map(Into::into);
            let report = bench::tournament::run_tournament(&opts);
            println!("{}", report.summary_table().to_text());
            for &(system, benchmark) in &opts.cells {
                let lat = report.latency_comparison(system, benchmark);
                if !lat.is_empty() {
                    println!("{}", lat.to_text());
                }
            }
            if let Some(path) = &json_path {
                std::fs::write(path, report.to_json().pretty() + "\n").expect("write json");
                eprintln!("wrote {path}");
            }
            let failures = report.failures();
            for f in &failures {
                eprintln!(
                    "FAIL tournament: {} under {}: {}",
                    f.cell_label(),
                    f.policy,
                    f.outcome.as_ref().unwrap_err()
                );
            }
            if failures.is_empty() {
                println!(
                    "tournament: {} cell(s) x {} policies, all complete and deadlock-free",
                    opts.cells.len(),
                    report.policies.len()
                );
            } else {
                code = exit::worst(code, exit::DEADLOCK);
            }
        }
        "markdown" => {
            let results = run_matrix(window, seed);
            code = exit::worst(code, any_hazardous(&results));
            println!("{}", bench::tables::table1(&results).to_markdown());
            println!("{}", bench::tables::table2(&results).to_markdown());
            println!("{}", bench::tables::table3(&results).to_markdown());
            println!("{}", bench::tables::table4().to_markdown());
            print!("{}", bench::tables::profile_section(&results, true));
        }
        "tables" | "figures" | "all" => {
            if what == "all" {
                for section in bench::experiments::all_reports() {
                    println!("{section}");
                }
            }
            let results = run_matrix(window, seed);
            code = exit::worst(code, any_hazardous(&results));
            if let Some(path) = &json_path {
                let v = bench::tables::json_summary(&results);
                std::fs::write(path, v.pretty()).expect("write json");
                eprintln!("wrote {path}");
            }
            if what != "figures" {
                println!("{}", bench::tables::table1(&results).to_text());
                println!("{}", bench::tables::table2(&results).to_text());
                println!("{}", bench::tables::table3(&results).to_text());
                println!("{}", bench::tables::table4().to_text());
                print!("{}", bench::tables::profile_section(&results, false));
            }
            if what != "tables" {
                for r in &results {
                    println!("{}", bench::tables::interval_figure(r));
                }
                for r in &results {
                    println!("{}", bench::tables::priority_figure(r));
                }
                println!("{}", bench::tables::generation_figure(&results));
            }
        }
        other => {
            eprintln!("unknown command: {other}\n{USAGE}");
            std::process::exit(exit::USAGE);
        }
    }
    if code != exit::OK {
        std::process::exit(code);
    }
}

/// Parses a `--seed` value: hex digits, optional `0x` prefix, `_`
/// separators allowed. Rejects empty, non-hex, odd-length, and overlong
/// inputs with a message explaining the fix, rather than truncating or
/// guessing.
fn parse_seed(s: &str) -> Result<u64, String> {
    let stripped = s
        .strip_prefix("0x")
        .or_else(|| s.strip_prefix("0X"))
        .unwrap_or(s);
    let t = stripped.replace('_', "");
    if t.is_empty() {
        return Err("expected hex digits, got none".to_string());
    }
    if let Some(bad) = t.chars().find(|c| !c.is_ascii_hexdigit()) {
        return Err(format!("{bad:?} is not a hex digit"));
    }
    if !t.len().is_multiple_of(2) {
        return Err(format!(
            "odd number of hex digits ({}); zero-pad to an even length (0{t})",
            t.len()
        ));
    }
    if t.len() > 16 {
        return Err(format!(
            "{} hex digits do not fit a 64-bit seed (max 16)",
            t.len()
        ));
    }
    u64::from_str_radix(&t, 16).map_err(|e| e.to_string())
}

/// Parses a strictly positive integer flag value, exiting with the
/// usage code (and a hint in the strict `--seed` style) on junk, zero,
/// negative, or overflowing input rather than silently defaulting.
fn parse_positive(name: &str, s: &str) -> u64 {
    match positive_u64(s) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bad {name} {s:?}: {e}");
            std::process::exit(exit::USAGE);
        }
    }
}

/// As [`parse_positive`], additionally bounded to `u32`.
fn parse_positive_u32(name: &str, s: &str) -> u32 {
    let v = parse_positive(name, s);
    u32::try_from(v).unwrap_or_else(|_| {
        eprintln!(
            "bad {name} {s:?}: {v} does not fit a 32-bit count (max {})",
            u32::MAX
        );
        std::process::exit(exit::USAGE);
    })
}

/// The testable core of [`parse_positive`].
fn positive_u64(s: &str) -> Result<u64, String> {
    use std::num::IntErrorKind;
    match s.parse::<u64>() {
        Ok(0) => Err("must be at least 1".to_string()),
        Ok(v) => Ok(v),
        Err(e) if *e.kind() == IntErrorKind::PosOverflow => {
            Err(format!("does not fit a 64-bit count (max {})", u64::MAX))
        }
        Err(_) if s.trim_start().starts_with('-') => {
            Err("negative counts make no sense here; pass a positive integer".to_string())
        }
        Err(_) => Err("expected a positive integer".to_string()),
    }
}

/// Reports any benchmark run that surfaced hazards; returns
/// [`exit::HAZARD`] if any did, [`exit::OK`] otherwise.
fn any_hazardous(results: &[workloads::BenchResult]) -> i32 {
    let mut code = exit::OK;
    for r in results {
        if r.hazards.total() > 0 {
            eprintln!(
                "FAIL {}/{:?}: {} hazards detected",
                r.system.name(),
                r.benchmark,
                r.hazards.total()
            );
            eprintln!("{}", trace::hazard_table(&r.hazards).to_text());
            code = exit::HAZARD;
        }
    }
    code
}

#[cfg(test)]
mod tests {
    use super::{parse_seed, positive_u64};

    #[test]
    fn positive_u64_accepts_ordinary_counts() {
        assert_eq!(positive_u64("1"), Ok(1));
        assert_eq!(positive_u64("25000"), Ok(25_000));
        assert_eq!(positive_u64("18446744073709551615"), Ok(u64::MAX));
    }

    #[test]
    fn positive_u64_rejects_bad_counts_with_clear_messages() {
        let zero = positive_u64("0").unwrap_err();
        assert!(zero.contains("at least 1"), "{zero}");

        let neg = positive_u64("-3").unwrap_err();
        assert!(neg.contains("negative"), "{neg}");

        let over = positive_u64("18446744073709551616").unwrap_err();
        assert!(over.contains("does not fit a 64-bit count"), "{over}");

        let junk = positive_u64("three").unwrap_err();
        assert!(junk.contains("expected a positive integer"), "{junk}");

        let empty = positive_u64("").unwrap_err();
        assert!(empty.contains("expected a positive integer"), "{empty}");
    }

    #[test]
    fn parse_seed_accepts_the_documented_forms() {
        assert_eq!(parse_seed("ceda2026"), Ok(0xCEDA_2026));
        assert_eq!(parse_seed("0xceda2026"), Ok(0xCEDA_2026));
        assert_eq!(parse_seed("0Xceda2026"), Ok(0xCEDA_2026));
        assert_eq!(parse_seed("ceda_2026"), Ok(0xCEDA_2026));
        assert_eq!(parse_seed("ffffffffffffffff"), Ok(u64::MAX));
    }

    #[test]
    fn parse_seed_rejects_bad_inputs_with_clear_messages() {
        let odd = parse_seed("abc").unwrap_err();
        assert!(odd.contains("odd number of hex digits"), "{odd}");
        assert!(odd.contains("0abc"), "{odd}");

        let long = parse_seed("aabbccddeeff00112233").unwrap_err();
        assert!(long.contains("do not fit a 64-bit seed"), "{long}");

        let junk = parse_seed("xyz").unwrap_err();
        assert!(junk.contains("not a hex digit"), "{junk}");

        let empty = parse_seed("0x").unwrap_err();
        assert!(empty.contains("got none"), "{empty}");
    }
}
