//! Regenerates the paper's tables, figures, and experiments.
//!
//! Exits non-zero if any run deadlocks, any hazard is detected outside
//! chaos mode, a chaos replay diverges, or `lint` finds an unallowed
//! discipline violation.

use pcr::secs;

/// The usage text; printed on `help` and (to stderr) on a bad command.
const USAGE: &str = "\
usage: repro <command> [options]

commands:
  tables   [--window SECS]   Tables 1-3 (runs all 12 benchmarks)
  table4                     Table 4 (static census)
  figures  [--window SECS]   interval/priority/generation figures
  experiments                the §5/§6 experiments (E5-E12)
  slack|spurious|inversion|quantum|mistakes|forkfail|weakmem|xlib
                             one experiment by name
  history                    a 100ms event history of Cedar typing
  contention                 hottest monitors (GVX scroll, Cedar typing)
  chaos    [--window SECS]   fault-injected runs, replayed twice:
                             asserts byte-identical traces + hazard table
  lint     [--json PATH]     threadlint: static discipline lints and the
                             fork-site self-census over this workspace
  markdown [--window SECS]   Tables 1-4 as Markdown (for EXPERIMENTS.md)
  all      [--window SECS] [--json PATH]   everything
  help                       this text";

/// Reports a failed run. Returns `true` when the run deadlocked or the
/// hazard detectors (when enabled) caught something, so callers can
/// accumulate an exit code.
fn check_run(label: &str, report: &pcr::RunReport) -> bool {
    let mut failed = false;
    if report.deadlocked() {
        eprintln!("FAIL {label}: deadlocked ({:?})", report.reason);
        failed = true;
    }
    if report.hazardous() {
        eprintln!("FAIL {label}: {} hazards detected", report.hazards.total());
        eprintln!("{}", trace::hazard_table(&report.hazards).to_text());
        failed = true;
    }
    failed
}

fn history() -> bool {
    use trace::Timeline;
    let mut sim = workloads::runner::build(
        workloads::System::Cedar,
        workloads::Benchmark::Keyboard,
        0xE7E27,
    );
    sim.set_sink(Box::new(Timeline::new()));
    let report = sim.run(pcr::RunLimit::For(secs(5)));
    let infos = sim.threads();
    let mut tl = *trace::take_collector::<Timeline>(&mut sim).expect("timeline");
    tl.name_threads(&infos);
    println!(
        "{}",
        tl.render(pcr::SimTime::from_micros(3_000_000), pcr::millis(100), 80)
    );
    println!("{}", trace::thread_table(&infos).to_text());
    check_run("history Cedar/Keyboard", &report)
}

fn contention() -> bool {
    use trace::ContentionCollector;
    let mut failed = false;
    for (sys, bench) in [
        (workloads::System::Gvx, workloads::Benchmark::Scroll),
        (workloads::System::Cedar, workloads::Benchmark::Keyboard),
    ] {
        let mut sim = workloads::runner::build(sys, bench, 0xCEDA_2026);
        sim.set_sink(Box::new(ContentionCollector::new()));
        let report = sim.run(pcr::RunLimit::For(secs(30)));
        failed |= check_run(&format!("contention {}/{bench:?}", sys.name()), &report);
        let coll = trace::take_collector::<ContentionCollector>(&mut sim).expect("collector");
        println!(
            "{} / {bench:?}: {} of {} entries contended ({:.3}%)",
            sys.name(),
            coll.total_contended(),
            coll.total_enters(),
            100.0 * coll.total_contended() as f64 / coll.total_enters().max(1) as f64
        );
        for (m, c) in coll.hottest(3) {
            println!(
                "  {m:?}: {} contended of {} ({:.2}%)",
                c.contended,
                c.enters,
                100.0 * c.fraction()
            );
        }
        println!();
    }
    failed
}

/// Chaos-mode smoke: one Cedar and one GVX benchmark with the standard
/// fault mix injected, each run twice from the same seed. The two
/// replays must produce byte-identical JSONL event traces and identical
/// hazard tallies — the acceptance bar for deterministic injection.
fn chaos(window: pcr::SimDuration) -> bool {
    let preset = workloads::chaos_preset();
    let mut failed = false;
    for (sys, bench) in [
        (workloads::System::Cedar, workloads::Benchmark::Keyboard),
        (workloads::System::Gvx, workloads::Benchmark::Scroll),
    ] {
        let label = format!("chaos {}/{bench:?}", sys.name());
        let run = || {
            let mut sim = workloads::build_chaos(sys, bench, 0xCEDA_2026, preset.clone());
            sim.set_sink(Box::new(pcr::VecSink::default()));
            let report = sim.run(pcr::RunLimit::For(window));
            let events = trace::take_collector::<pcr::VecSink>(&mut sim)
                .expect("vec sink")
                .events;
            let mut buf = Vec::new();
            trace::write_jsonl(&events, &mut buf).expect("serialize trace");
            (buf, report)
        };
        let (trace_a, report_a) = run();
        let (trace_b, report_b) = run();
        println!(
            "{label}: {} trace events, {} hazards",
            trace_a.iter().filter(|b| **b == b'\n').count(),
            report_a.hazards.total(),
        );
        println!("{}", trace::hazard_table(&report_a.hazards).to_text());
        let mut ok = true;
        if report_a.deadlocked() {
            eprintln!("FAIL {label}: deadlocked ({:?})", report_a.reason);
            ok = false;
        }
        if trace_a != trace_b {
            let first_diff = trace_a
                .iter()
                .zip(trace_b.iter())
                .position(|(a, b)| a != b)
                .unwrap_or(trace_a.len().min(trace_b.len()));
            eprintln!(
                "FAIL {label}: same-seed replay diverged (lengths {} vs {}, first diff at byte {first_diff})",
                trace_a.len(),
                trace_b.len(),
            );
            ok = false;
        }
        if report_a.hazards != report_b.hazards {
            eprintln!(
                "FAIL {label}: hazard tallies diverged across replays:\n{:?}\n{:?}",
                report_a.hazards, report_b.hazards
            );
            ok = false;
        }
        if ok {
            println!("{label}: replay byte-identical, hazard tallies stable");
        }
        failed |= !ok;
    }
    failed
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // A leading `--flag` means "all the default work, with options".
    let what = match args.first().map(String::as_str) {
        None => "all",
        Some("-h") | Some("--help") => "help",
        Some(first) if first.starts_with("--") => "all",
        Some(first) => first,
    };
    let window = args
        .iter()
        .position(|a| a == "--window")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u64>().ok())
        .map(secs)
        .unwrap_or(secs(30));
    let seed = 0xCEDA_2026;
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let mut failed = false;
    match what {
        "table4" => println!("{}", bench::tables::table4().to_text()),
        "experiments" => {
            for section in bench::experiments::all_reports() {
                println!("{section}");
            }
        }
        exp if bench::experiments::report_by_name(exp).is_some() => {
            println!("{}", bench::experiments::report_by_name(exp).unwrap());
        }
        "help" => println!("{USAGE}"),
        "history" => failed |= history(),
        "contention" => failed |= contention(),
        "chaos" => failed |= chaos(window),
        "lint" => failed |= bench::lint::run(json_path.as_deref()),
        "markdown" => {
            let results = bench::tables::run_all(window, seed);
            failed |= any_hazardous(&results);
            println!("{}", bench::tables::table1(&results).to_markdown());
            println!("{}", bench::tables::table2(&results).to_markdown());
            println!("{}", bench::tables::table3(&results).to_markdown());
            println!("{}", bench::tables::table4().to_markdown());
        }
        "tables" | "figures" | "all" => {
            if what == "all" {
                for section in bench::experiments::all_reports() {
                    println!("{section}");
                }
            }
            let results = bench::tables::run_all(window, seed);
            failed |= any_hazardous(&results);
            if let Some(path) = &json_path {
                let v = bench::tables::json_summary(&results);
                std::fs::write(path, v.pretty()).expect("write json");
                eprintln!("wrote {path}");
            }
            if what != "figures" {
                println!("{}", bench::tables::table1(&results).to_text());
                println!("{}", bench::tables::table2(&results).to_text());
                println!("{}", bench::tables::table3(&results).to_text());
                println!("{}", bench::tables::table4().to_text());
            }
            if what != "tables" {
                for r in &results {
                    println!("{}", bench::tables::interval_figure(r));
                }
                for r in &results {
                    println!("{}", bench::tables::priority_figure(r));
                }
                println!("{}", bench::tables::generation_figure(&results));
            }
        }
        other => {
            eprintln!("unknown command: {other}\n{USAGE}");
            std::process::exit(2);
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// True (after reporting) if any benchmark run surfaced hazards.
fn any_hazardous(results: &[workloads::BenchResult]) -> bool {
    let mut failed = false;
    for r in results {
        if r.hazards.total() > 0 {
            eprintln!(
                "FAIL {}/{:?}: {} hazards detected",
                r.system.name(),
                r.benchmark,
                r.hazards.total()
            );
            eprintln!("{}", trace::hazard_table(&r.hazards).to_text());
            failed = true;
        }
    }
    failed
}
