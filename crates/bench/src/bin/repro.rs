//! Regenerates the paper's tables, figures, and experiments.
//!
//! Usage:
//!   repro tables   [--window SECS]   # Tables 1-3 (runs all 12 benchmarks)
//!   repro table4                     # Table 4 (static census)
//!   repro figures  [--window SECS]   # interval/priority/generation figures
//!   repro experiments                # the §5/§6 experiments (E5-E12)
//!   repro slack|spurious|inversion|quantum|mistakes|forkfail|weakmem|xlib
//!   repro history                    # a 100ms event history of Cedar typing
//!   repro contention                 # hottest monitors (GVX scroll, Cedar typing)
//!   repro markdown [--window SECS]   # Tables 1-4 as Markdown (for EXPERIMENTS.md)
//!   repro all      [--window SECS] [--json PATH]   # everything

use pcr::secs;

fn history() {
    use trace::Timeline;
    let mut sim = workloads::runner::build(
        workloads::System::Cedar,
        workloads::Benchmark::Keyboard,
        0xE7E27,
    );
    sim.set_sink(Box::new(Timeline::new()));
    sim.run(pcr::RunLimit::For(secs(5)));
    let infos = sim.threads();
    let mut tl = *trace::take_collector::<Timeline>(&mut sim).expect("timeline");
    tl.name_threads(&infos);
    println!(
        "{}",
        tl.render(pcr::SimTime::from_micros(3_000_000), pcr::millis(100), 80)
    );
    println!("{}", trace::thread_table(&infos).to_text());
}

fn contention() {
    use trace::ContentionCollector;
    for (sys, bench) in [
        (workloads::System::Gvx, workloads::Benchmark::Scroll),
        (workloads::System::Cedar, workloads::Benchmark::Keyboard),
    ] {
        let mut sim = workloads::runner::build(sys, bench, 0xCEDA_2026);
        sim.set_sink(Box::new(ContentionCollector::new()));
        sim.run(pcr::RunLimit::For(secs(30)));
        let coll = trace::take_collector::<ContentionCollector>(&mut sim).expect("collector");
        println!(
            "{} / {bench:?}: {} of {} entries contended ({:.3}%)",
            sys.name(),
            coll.total_contended(),
            coll.total_enters(),
            100.0 * coll.total_contended() as f64 / coll.total_enters().max(1) as f64
        );
        for (m, c) in coll.hottest(3) {
            println!(
                "  {m:?}: {} contended of {} ({:.2}%)",
                c.contended,
                c.enters,
                100.0 * c.fraction()
            );
        }
        println!();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let window = args
        .iter()
        .position(|a| a == "--window")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u64>().ok())
        .map(secs)
        .unwrap_or(secs(30));
    let seed = 0xCEDA_2026;
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    match what {
        "table4" => println!("{}", bench::tables::table4().to_text()),
        "experiments" => {
            for section in bench::experiments::all_reports() {
                println!("{section}");
            }
        }
        exp if bench::experiments::report_by_name(exp).is_some() => {
            println!("{}", bench::experiments::report_by_name(exp).unwrap());
        }
        "history" => history(),
        "contention" => contention(),
        "markdown" => {
            let results = bench::tables::run_all(window, seed);
            println!("{}", bench::tables::table1(&results).to_markdown());
            println!("{}", bench::tables::table2(&results).to_markdown());
            println!("{}", bench::tables::table3(&results).to_markdown());
            println!("{}", bench::tables::table4().to_markdown());
        }
        "tables" | "figures" | "all" => {
            if what == "all" {
                for section in bench::experiments::all_reports() {
                    println!("{section}");
                }
            }
            let results = bench::tables::run_all(window, seed);
            if let Some(path) = &json_path {
                let v = bench::tables::json_summary(&results);
                std::fs::write(path, serde_json::to_string_pretty(&v).expect("serialize"))
                    .expect("write json");
                eprintln!("wrote {path}");
            }
            if what != "figures" {
                println!("{}", bench::tables::table1(&results).to_text());
                println!("{}", bench::tables::table2(&results).to_text());
                println!("{}", bench::tables::table3(&results).to_text());
                println!("{}", bench::tables::table4().to_text());
            }
            if what != "tables" {
                for r in &results {
                    println!("{}", bench::tables::interval_figure(r));
                }
                for r in &results {
                    println!("{}", bench::tables::priority_figure(r));
                }
                println!("{}", bench::tables::generation_figure(&results));
            }
        }
        other => {
            eprintln!("unknown command: {other}");
            std::process::exit(2);
        }
    }
}
