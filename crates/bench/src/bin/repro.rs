//! Regenerates the paper's tables, figures, and experiments.
//!
//! Exits non-zero if any run deadlocks, any hazard is detected outside
//! chaos mode, a chaos replay diverges, or `lint` finds an unallowed
//! discipline violation.

use pcr::secs;

/// The usage text; printed on `help` and (to stderr) on a bad command.
const USAGE: &str = "\
usage: repro <command> [options]

commands:
  tables   [--window SECS]   Tables 1-3 (runs all 12 benchmarks)
  table4                     Table 4 (static census)
  figures  [--window SECS]   interval/priority/generation figures
  experiments                the §5/§6 experiments (E5-E12)
  slack|spurious|inversion|quantum|mistakes|forkfail|weakmem|xlib
                             one experiment by name
  history                    a 100ms event history of Cedar typing
  contention                 the §6.1 contention profile and §6.2 latency
                             histogram (GVX scroll, Cedar typing)
  trace    [--chrome PATH] [--jsonl PATH] [--window SECS] [--chaos]
                             record one Cedar/Keyboard run (default 5s)
                             and export it: --chrome writes a Chrome
                             trace-event file for ui.perfetto.dev,
                             --jsonl the raw event stream (defaults to
                             trace-chrome.json when neither is given)
  diff     A.jsonl B.jsonl [--threshold PCT]
                             align two exported runs and report rate/
                             latency/contention deltas beyond PCT
                             (default 1%); exits non-zero on any delta
  chaos    [--window SECS]   fault-injected runs, replayed twice:
                             asserts byte-identical traces + hazard table
  lint     [--json PATH]     threadlint: static discipline lints and the
                             fork-site self-census over this workspace
  markdown [--window SECS]   Tables 1-4 as Markdown (for EXPERIMENTS.md)
  bench    [--reps N] [--json PATH] [--baseline PATH]
                             wall-clock perf harness: times every matrix
                             cell (median of N reps, default 3), reports
                             simulated events/sec and the serial-vs-
                             parallel driver speedup, and writes
                             BENCH_threadstudy.json; with --baseline,
                             fails if aggregate events/sec regressed
                             more than 30% vs that file
  all      [--window SECS] [--json PATH]   everything
  help                       this text

global options:
  --seed HEX     RNG seed for the simulated worlds (default ceda2026;
                 history defaults to its own e7e27)
  --serial       force the one-cell-at-a-time matrix driver (the
                 parallel driver is used by default on multicore hosts;
                 both produce identical tables)";

/// Reports a failed run. Returns `true` when the run deadlocked or the
/// hazard detectors (when enabled) caught something, so callers can
/// accumulate an exit code.
fn check_run(label: &str, report: &pcr::RunReport) -> bool {
    let mut failed = false;
    if report.deadlocked() {
        eprintln!("FAIL {label}: deadlocked ({:?})", report.reason);
        failed = true;
    }
    if report.hazardous() {
        eprintln!("FAIL {label}: {} hazards detected", report.hazards.total());
        eprintln!("{}", trace::hazard_table(&report.hazards).to_text());
        failed = true;
    }
    failed
}

fn history(seed: u64) -> bool {
    use trace::Timeline;
    let mut sim = workloads::runner::build(
        workloads::System::Cedar,
        workloads::Benchmark::Keyboard,
        seed,
    );
    sim.set_sink(Box::new(Timeline::new()));
    let report = sim.run(pcr::RunLimit::For(secs(5)));
    let infos = sim.threads();
    let mut tl = *trace::take_collector::<Timeline>(&mut sim).expect("timeline");
    tl.name_threads(&infos);
    println!(
        "{}",
        tl.render(pcr::SimTime::from_micros(3_000_000), pcr::millis(100), 80)
    );
    println!("{}", trace::thread_table(&infos).to_text());
    check_run("history Cedar/Keyboard", &report)
}

fn contention(seed: u64) -> bool {
    use trace::ContentionProfiler;
    let mut failed = false;
    for (sys, bench) in [
        (workloads::System::Gvx, workloads::Benchmark::Scroll),
        (workloads::System::Cedar, workloads::Benchmark::Keyboard),
    ] {
        let mut sim = workloads::runner::build(sys, bench, seed);
        let mut profiler = ContentionProfiler::new();
        profiler.set_topology(
            sim.monitor_names(),
            sim.condition_info()
                .iter()
                .map(|(_, m)| m.as_u32())
                .collect(),
        );
        sim.set_sink(Box::new(profiler));
        let report = sim.run(pcr::RunLimit::For(secs(30)));
        failed |= check_run(&format!("contention {}/{bench:?}", sys.name()), &report);
        let prof = trace::take_collector::<ContentionProfiler>(&mut sim).expect("profiler");
        println!(
            "{} / {bench:?}: {} of {} entries contended ({:.3}%)",
            sys.name(),
            prof.total_contended(),
            prof.total_enters(),
            100.0 * prof.total_contended() as f64 / prof.total_enters().max(1) as f64
        );
        let rows = prof.rows();
        let shown = rows.len().min(12);
        println!("{}", trace::contention_table(&rows[..shown]).to_text());
        if rows.len() > shown {
            println!(
                "({} more monitors below the hottest {shown})\n",
                rows.len() - shown
            );
        }
        println!(
            "{}",
            trace::latency_table(&sim.stats().sched_latency).to_text()
        );
    }
    failed
}

/// `repro trace`: record one Cedar/Keyboard run and export it as a
/// Chrome trace-event file (for `ui.perfetto.dev`) and/or raw JSONL.
fn trace_cmd(
    window: pcr::SimDuration,
    seed: u64,
    chaos: bool,
    chrome_path: Option<&str>,
    jsonl_path: Option<&str>,
) -> bool {
    let faults = if chaos {
        workloads::chaos_preset()
    } else {
        pcr::ChaosConfig::none()
    };
    let mut sim = workloads::build_chaos(
        workloads::System::Cedar,
        workloads::Benchmark::Keyboard,
        seed,
        faults,
    );
    sim.set_sink(Box::new(pcr::VecSink::default()));
    let report = sim.run(pcr::RunLimit::For(window));
    if report.deadlocked() {
        eprintln!("FAIL trace: deadlocked ({:?})", report.reason);
        return true;
    }
    let labels = trace::TraceLabels::from_sim(&sim);
    let events = trace::take_collector::<pcr::VecSink>(&mut sim)
        .expect("vec sink")
        .events;
    let chrome_default;
    let chrome_path = match (chrome_path, jsonl_path) {
        (None, None) => {
            chrome_default = "trace-chrome.json".to_string();
            Some(chrome_default.as_str())
        }
        (c, _) => c,
    };
    if let Some(path) = chrome_path {
        let f = std::fs::File::create(path).expect("create chrome trace");
        trace::write_chrome(&events, &labels, std::io::BufWriter::new(f)).expect("write chrome");
        eprintln!("wrote {path}");
    }
    if let Some(path) = jsonl_path {
        let f = std::fs::File::create(path).expect("create jsonl trace");
        trace::write_jsonl(&events, std::io::BufWriter::new(f)).expect("write jsonl");
        eprintln!("wrote {path}");
    }
    println!(
        "trace: Cedar/Keyboard, {} of virtual time, {} events{}",
        report.elapsed,
        events.len(),
        if chaos { " (chaos preset)" } else { "" }
    );
    false
}

/// `repro diff`: align two JSONL traces and report the deltas.
fn diff_cmd(path_a: &str, path_b: &str, threshold_pct: f64) -> bool {
    let load = |path: &str| -> Vec<trace::OwnedEventRecord> {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        trace::parse_jsonl(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        })
    };
    let a = load(path_a);
    let b = load(path_b);
    let report = trace::diff_runs(&a, &b, threshold_pct);
    print!("{}", report.render());
    !report.is_clean()
}

/// Chaos-mode smoke: one Cedar and one GVX benchmark with the standard
/// fault mix injected, each run twice from the same seed. The two
/// replays must produce byte-identical JSONL event traces and identical
/// hazard tallies — the acceptance bar for deterministic injection.
fn chaos(window: pcr::SimDuration, seed: u64) -> bool {
    let preset = workloads::chaos_preset();
    let mut failed = false;
    for (sys, bench) in [
        (workloads::System::Cedar, workloads::Benchmark::Keyboard),
        (workloads::System::Gvx, workloads::Benchmark::Scroll),
    ] {
        let label = format!("chaos {}/{bench:?}", sys.name());
        let run = || {
            let mut sim = workloads::build_chaos(sys, bench, seed, preset.clone());
            sim.set_sink(Box::new(pcr::VecSink::default()));
            let report = sim.run(pcr::RunLimit::For(window));
            let events = trace::take_collector::<pcr::VecSink>(&mut sim)
                .expect("vec sink")
                .events;
            let mut buf = Vec::new();
            trace::write_jsonl(&events, &mut buf).expect("serialize trace");
            (buf, report)
        };
        let (trace_a, report_a) = run();
        let (trace_b, report_b) = run();
        println!(
            "{label}: {} trace events, {} hazards",
            trace_a.iter().filter(|b| **b == b'\n').count(),
            report_a.hazards.total(),
        );
        println!("{}", trace::hazard_table(&report_a.hazards).to_text());
        let mut ok = true;
        if report_a.deadlocked() {
            eprintln!("FAIL {label}: deadlocked ({:?})", report_a.reason);
            ok = false;
        }
        if trace_a != trace_b {
            let first_diff = trace_a
                .iter()
                .zip(trace_b.iter())
                .position(|(a, b)| a != b)
                .unwrap_or(trace_a.len().min(trace_b.len()));
            eprintln!(
                "FAIL {label}: same-seed replay diverged (lengths {} vs {}, first diff at byte {first_diff})",
                trace_a.len(),
                trace_b.len(),
            );
            ok = false;
        }
        if report_a.hazards != report_b.hazards {
            eprintln!(
                "FAIL {label}: hazard tallies diverged across replays:\n{:?}\n{:?}",
                report_a.hazards, report_b.hazards
            );
            ok = false;
        }
        if ok {
            println!("{label}: replay byte-identical, hazard tallies stable");
        }
        failed |= !ok;
    }
    failed
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // A leading `--flag` means "all the default work, with options".
    let what = match args.first().map(String::as_str) {
        None => "all",
        Some("-h") | Some("--help") => "help",
        Some(first) if first.starts_with("--") => "all",
        Some(first) => first,
    };
    let window_flag = args
        .iter()
        .position(|a| a == "--window")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u64>().ok())
        .map(secs);
    let window = window_flag.unwrap_or(secs(30));
    // `--seed HEX` (0x prefix and _ separators accepted). Subcommands
    // keep their historical defaults when the flag is absent, so
    // existing outputs stay byte-identical.
    let seed_flag: Option<u64> = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|s| match parse_seed(s) {
            Some(v) => v,
            None => {
                eprintln!("bad --seed {s:?}: expected hex digits\n{USAGE}");
                std::process::exit(2);
            }
        });
    let seed = seed_flag.unwrap_or(0xCEDA_2026);
    let serial = args.iter().any(|a| a == "--serial");
    let run_matrix = |window, seed| {
        if serial {
            bench::tables::run_all_serial(window, seed)
        } else {
            bench::tables::run_all(window, seed)
        }
    };
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let mut failed = false;
    match what {
        "table4" => println!("{}", bench::tables::table4().to_text()),
        "experiments" => {
            for section in bench::experiments::all_reports() {
                println!("{section}");
            }
        }
        exp if bench::experiments::report_by_name(exp).is_some() => {
            println!("{}", bench::experiments::report_by_name(exp).unwrap());
        }
        "help" => println!("{USAGE}"),
        "history" => failed |= history(seed_flag.unwrap_or(0xE7E27)),
        "contention" => failed |= contention(seed),
        "trace" => {
            let flag = |name: &str| {
                args.iter()
                    .position(|a| a == name)
                    .and_then(|i| args.get(i + 1))
                    .cloned()
            };
            failed |= trace_cmd(
                window_flag.unwrap_or(secs(5)),
                seed,
                args.iter().any(|a| a == "--chaos"),
                flag("--chrome").as_deref(),
                flag("--jsonl").as_deref(),
            );
        }
        "diff" => {
            let positional: Vec<&String> = args[1..]
                .iter()
                .take_while(|a| !a.starts_with("--"))
                .collect();
            let [path_a, path_b] = positional[..] else {
                eprintln!("diff needs exactly two trace files\n{USAGE}");
                std::process::exit(2);
            };
            let threshold = args
                .iter()
                .position(|a| a == "--threshold")
                .and_then(|i| args.get(i + 1))
                .and_then(|s| s.parse::<f64>().ok())
                .unwrap_or(1.0);
            failed |= diff_cmd(path_a, path_b, threshold);
        }
        "chaos" => failed |= chaos(window, seed),
        "lint" => failed |= bench::lint::run(json_path.as_deref()),
        "bench" => {
            let reps = args
                .iter()
                .position(|a| a == "--reps")
                .and_then(|i| args.get(i + 1))
                .and_then(|s| s.parse::<u32>().ok())
                .unwrap_or(3);
            let baseline_path = args
                .iter()
                .position(|a| a == "--baseline")
                .and_then(|i| args.get(i + 1))
                .cloned();
            let report = bench::perf::measure(window, seed, reps);
            print!("{}", report.text());
            let path = json_path
                .clone()
                .unwrap_or_else(|| "BENCH_threadstudy.json".to_string());
            std::fs::write(&path, report.to_json().pretty()).expect("write bench json");
            eprintln!("wrote {path}");
            if let Some(bpath) = baseline_path {
                let base = std::fs::read_to_string(&bpath)
                    .ok()
                    .as_deref()
                    .and_then(bench::perf::baseline_events_per_sec);
                match base {
                    Some(base) => {
                        let cur = report.aggregate_events_per_sec;
                        println!(
                            "baseline {base:.0} events/sec, current {cur:.0} ({:+.1}%)",
                            100.0 * (cur / base - 1.0)
                        );
                        if cur < 0.70 * base {
                            eprintln!(
                                "FAIL bench: aggregate events/sec regressed more than 30% vs {bpath}"
                            );
                            failed = true;
                        }
                    }
                    None => {
                        eprintln!("FAIL bench: no aggregate_events_per_sec in baseline {bpath}");
                        failed = true;
                    }
                }
            }
        }
        "markdown" => {
            let results = run_matrix(window, seed);
            failed |= any_hazardous(&results);
            println!("{}", bench::tables::table1(&results).to_markdown());
            println!("{}", bench::tables::table2(&results).to_markdown());
            println!("{}", bench::tables::table3(&results).to_markdown());
            println!("{}", bench::tables::table4().to_markdown());
            print!("{}", bench::tables::profile_section(&results, true));
        }
        "tables" | "figures" | "all" => {
            if what == "all" {
                for section in bench::experiments::all_reports() {
                    println!("{section}");
                }
            }
            let results = run_matrix(window, seed);
            failed |= any_hazardous(&results);
            if let Some(path) = &json_path {
                let v = bench::tables::json_summary(&results);
                std::fs::write(path, v.pretty()).expect("write json");
                eprintln!("wrote {path}");
            }
            if what != "figures" {
                println!("{}", bench::tables::table1(&results).to_text());
                println!("{}", bench::tables::table2(&results).to_text());
                println!("{}", bench::tables::table3(&results).to_text());
                println!("{}", bench::tables::table4().to_text());
                print!("{}", bench::tables::profile_section(&results, false));
            }
            if what != "tables" {
                for r in &results {
                    println!("{}", bench::tables::interval_figure(r));
                }
                for r in &results {
                    println!("{}", bench::tables::priority_figure(r));
                }
                println!("{}", bench::tables::generation_figure(&results));
            }
        }
        other => {
            eprintln!("unknown command: {other}\n{USAGE}");
            std::process::exit(2);
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Parses a `--seed` value: hex digits, optional `0x` prefix, `_`
/// separators allowed.
fn parse_seed(s: &str) -> Option<u64> {
    let t = s
        .trim_start_matches("0x")
        .trim_start_matches("0X")
        .replace('_', "");
    u64::from_str_radix(&t, 16).ok()
}

/// True (after reporting) if any benchmark run surfaced hazards.
fn any_hazardous(results: &[workloads::BenchResult]) -> bool {
    let mut failed = false;
    for r in results {
        if r.hazards.total() > 0 {
            eprintln!(
                "FAIL {}/{:?}: {} hazards detected",
                r.system.name(),
                r.benchmark,
                r.hazards.total()
            );
            eprintln!("{}", trace::hazard_table(&r.hazards).to_text());
            failed = true;
        }
    }
    failed
}
