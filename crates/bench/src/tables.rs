//! Regenerating the paper's Tables 1–4.

use pcr::SimDuration;
use trace::{f0, f1, pct, Json, Table};
use workloads::{paper_row, run_benchmark, BenchResult, Benchmark, System};

use crate::executor::{run_indexed, Reporter};

/// The twelve matrix cells (eight Cedar + four GVX), in table order.
pub fn matrix() -> Vec<(System, Benchmark)> {
    let mut cells = Vec::new();
    for sys in [System::Cedar, System::Gvx] {
        for &b in Benchmark::suite(sys) {
            cells.push((sys, b));
        }
    }
    cells
}

/// All twelve benchmark runs, in table order, on every available
/// hardware thread. See [`run_all_with_workers`].
pub fn run_all(window: SimDuration, seed: u64) -> Vec<BenchResult> {
    run_all_with_workers(window, seed, workers_available())
}

/// Hardware threads available to the parallel driver.
pub fn workers_available() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs the matrix one cell at a time on the calling thread.
pub fn run_all_serial(window: SimDuration, seed: u64) -> Vec<BenchResult> {
    run_all_with_workers(window, seed, 1)
}

/// Runs the matrix on `workers` threads through the work-stealing
/// executor. Each cell is an independent deterministic simulation, so
/// every worker count produces identical results for a given
/// `(window, seed)` — the choice only affects wall-clock time.
pub fn run_all_with_workers(window: SimDuration, seed: u64, workers: usize) -> Vec<BenchResult> {
    let cells = matrix();
    let reporter = Reporter::new();
    let (results, _) = run_indexed(workers, cells.len(), |i| {
        let (sys, b) = cells[i];
        reporter.line(&format!("  running {} / {b:?} ...", sys.name()));
        run_benchmark(sys, b, window, seed)
    });
    results
}

fn rows_for(results: &[BenchResult], sys: System) -> impl Iterator<Item = &BenchResult> {
    results.iter().filter(move |r| r.system == sys)
}

/// Table 1: forking and thread-switching rates, with the paper's
/// published values alongside.
pub fn table1(results: &[BenchResult]) -> Table {
    let mut t = Table::new(
        "Table 1: Forking and thread-switching rates (measured vs paper)",
        &[
            "Benchmark",
            "Forks/sec",
            "(paper)",
            "Switches/sec",
            "(paper)",
        ],
    );
    for sys in [System::Cedar, System::Gvx] {
        for r in rows_for(results, sys) {
            let p = paper_row(sys, r.benchmark);
            t.row(vec![
                r.rates.name.clone(),
                f1(r.rates.forks_per_sec),
                f1(p.forks_per_sec),
                f0(r.rates.switches_per_sec),
                f0(p.switches_per_sec),
            ]);
        }
    }
    t
}

/// Table 2: CV wait and monitor entry rates.
pub fn table2(results: &[BenchResult]) -> Table {
    let mut t = Table::new(
        "Table 2: Wait-CV and monitor entry rates (measured vs paper)",
        &[
            "Benchmark",
            "Waits/sec",
            "(paper)",
            "%timeouts",
            "(paper)",
            "ML-enters/sec",
            "(paper)",
            "%contended",
        ],
    );
    for sys in [System::Cedar, System::Gvx] {
        for r in rows_for(results, sys) {
            let p = paper_row(sys, r.benchmark);
            t.row(vec![
                r.rates.name.clone(),
                f0(r.rates.waits_per_sec),
                f0(p.waits_per_sec),
                pct(r.rates.timeout_pct),
                pct(p.timeout_pct),
                f0(r.rates.ml_enters_per_sec),
                f0(p.ml_enters_per_sec),
                format!("{:.3}%", r.rates.contention_pct),
            ]);
        }
    }
    t
}

/// Table 3: number of distinct CVs and monitor locks used.
pub fn table3(results: &[BenchResult]) -> Table {
    let mut t = Table::new(
        "Table 3: Number of different CVs and monitor locks used (measured vs paper)",
        &["Benchmark", "#CVs", "(paper)", "#MLs", "(paper)"],
    );
    for sys in [System::Cedar, System::Gvx] {
        for r in rows_for(results, sys) {
            let p = paper_row(sys, r.benchmark);
            t.row(vec![
                r.rates.name.clone(),
                r.rates.distinct_cvs.to_string(),
                p.distinct_cvs.to_string(),
                r.rates.distinct_mls.to_string(),
                p.distinct_mls.to_string(),
            ]);
        }
    }
    t
}

/// Table 4: static paradigm counts from the census.
pub fn table4() -> Table {
    let inv = workloads::inventory::census();
    let cedar = inv.counts(System::Cedar);
    let gvx = inv.counts(System::Gvx);
    let (ct, gt) = (
        inv.total(System::Cedar) as f64,
        inv.total(System::Gvx) as f64,
    );
    let mut t = Table::new(
        "Table 4: Static counts of thread paradigms",
        &["Paradigm", "Cedar", "%", "GVX", "%"],
    );
    for p in threadstudy_core::Paradigm::ALL {
        t.row(vec![
            p.table_label().to_string(),
            cedar[&p].to_string(),
            pct(100.0 * cedar[&p] as f64 / ct),
            gvx[&p].to_string(),
            pct(100.0 * gvx[&p] as f64 / gt),
        ]);
    }
    t.row(vec![
        "TOTAL".to_string(),
        format!("{}", inv.total(System::Cedar)),
        "100%".to_string(),
        format!("{}", inv.total(System::Gvx)),
        "100%".to_string(),
    ]);
    t
}

/// The §6.1/§6.2 profile of one run as JSON: per-monitor contention
/// rows plus the per-priority wakeup-to-run latency histogram.
pub fn profile_json(rows: &[trace::MonitorProfileRow], lat: &pcr::SchedLatency) -> Json {
    let contention = rows.iter().map(|row| {
        let p = &row.profile;
        Json::obj([
            ("monitor", Json::from(row.name.as_str())),
            ("enters", Json::from(p.enters)),
            ("contended", Json::from(p.contended)),
            ("total_hold_us", Json::from(p.total_hold.as_micros())),
            ("max_hold_us", Json::from(p.max_hold.as_micros())),
            ("total_wait_us", Json::from(p.total_wait.as_micros())),
            ("max_wait_us", Json::from(p.max_wait.as_micros())),
        ])
    });
    let latency = (0..7).filter(|&p| lat.samples[p] > 0).map(|p| {
        Json::obj([
            ("priority", Json::from((p + 1) as u64)),
            ("dispatches", Json::from(lat.samples[p])),
            (
                "mean_wait_us",
                Json::from(lat.mean_wait(p).map_or(0, |d| d.as_micros())),
            ),
            ("max_wait_us", Json::from(lat.max_wait[p].as_micros())),
            ("log2_us_histogram", Json::from(lat.buckets[p].to_vec())),
        ])
    });
    Json::obj([
        ("contention", Json::arr(contention)),
        ("sched_latency", Json::arr(latency)),
    ])
}

/// Renders the §6.1 contention and §6.2 latency tables for the two
/// reference cells (Cedar/Keyboard and GVX/Scroll) out of an
/// already-run matrix. `markdown` picks the output dialect.
pub fn profile_section(results: &[BenchResult], markdown: bool) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for r in results {
        let reference = matches!(
            (r.system, r.benchmark),
            (System::Cedar, Benchmark::Keyboard) | (System::Gvx, Benchmark::Scroll)
        );
        if !reference {
            continue;
        }
        let _ = writeln!(out, "== {} ==", r.rates.name);
        let shown = r.contention.len().min(12);
        let ct = trace::contention_table(&r.contention[..shown]);
        let lt = trace::latency_table(&r.sched_latency);
        if markdown {
            let _ = writeln!(out, "{}", ct.to_markdown());
            let _ = writeln!(out, "{}", lt.to_markdown());
        } else {
            let _ = writeln!(out, "{}", ct.to_text());
            let _ = writeln!(out, "{}", lt.to_text());
        }
        if r.contention.len() > shown {
            let _ = writeln!(
                out,
                "({} more monitors below the hottest {shown})\n",
                r.contention.len() - shown
            );
        }
    }
    out
}

/// Machine-readable summary of all runs: the table rows, the paper's
/// values, figure scalars, profiles, and the census counts.
pub fn json_summary(results: &[BenchResult]) -> Json {
    let rows = results.iter().map(|r| {
        let p = paper_row(r.system, r.benchmark);
        Json::obj([
            ("system", Json::from(r.system.name())),
            ("benchmark", Json::from(format!("{:?}", r.benchmark))),
            ("measured", r.rates.to_json()),
            (
                "paper",
                Json::obj([
                    ("forks_per_sec", Json::from(p.forks_per_sec)),
                    ("switches_per_sec", Json::from(p.switches_per_sec)),
                    ("waits_per_sec", Json::from(p.waits_per_sec)),
                    ("timeout_pct", Json::from(p.timeout_pct)),
                    ("ml_enters_per_sec", Json::from(p.ml_enters_per_sec)),
                    ("distinct_cvs", Json::from(p.distinct_cvs)),
                    ("distinct_mls", Json::from(p.distinct_mls)),
                ]),
            ),
            (
                "figures",
                Json::obj([
                    (
                        "short_interval_fraction",
                        Json::from(r.intervals.fraction_between(pcr::millis(0), pcr::millis(5))),
                    ),
                    (
                        "quantum_interval_cpu_share",
                        Json::from(
                            r.intervals
                                .time_fraction_between(pcr::millis(44), pcr::millis(51)),
                        ),
                    ),
                    ("max_generation", Json::from(r.max_generation)),
                    ("max_live_threads", Json::from(r.max_live_threads)),
                    (
                        "cpu_by_priority_us",
                        Json::from(
                            r.cpu_by_priority
                                .iter()
                                .map(|d| d.as_micros())
                                .collect::<Vec<_>>(),
                        ),
                    ),
                ]),
            ),
            ("profile", profile_json(&r.contention, &r.sched_latency)),
        ])
    });
    let inv = workloads::inventory::census();
    let census = threadstudy_core::Paradigm::ALL.iter().map(|&p| {
        Json::obj([
            ("paradigm", Json::from(p.table_label())),
            ("cedar", Json::from(inv.counts(System::Cedar)[&p])),
            ("gvx", Json::from(inv.counts(System::Gvx)[&p])),
        ])
    });
    Json::obj([
        ("benchmarks", Json::arr(rows)),
        ("table4", Json::arr(census)),
    ])
}

/// Figure: execution-interval distribution for one run (§3's bimodal
/// shape).
pub fn interval_figure(r: &BenchResult) -> String {
    use std::fmt::Write as _;
    let h = &r.intervals;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Execution intervals — {} ({:?}):",
        r.rates.name, r.system
    );
    let _ = writeln!(
        out,
        "  intervals 0-5ms:   {:5.1}% of count (paper: 50-75%)",
        100.0 * h.fraction_between(pcr::millis(0), pcr::millis(5))
    );
    let _ = writeln!(
        out,
        "  intervals 45-50ms: {:5.1}% of count, {:5.1}% of CPU time (paper: 20-80% of time)",
        100.0 * h.fraction_between(pcr::millis(45), pcr::millis(50)),
        100.0 * h.time_fraction_between(pcr::millis(45), pcr::millis(50))
    );
    if let Some(mode) = h.mode_at_or_above(pcr::millis(10)) {
        let _ = writeln!(out, "  second mode at:    {mode} (paper: ~45ms)");
    }
    let mut bars = String::new();
    for (ms, n, cpct, _) in h.rows() {
        if n == 0 {
            continue;
        }
        let bar = "#".repeat(((cpct * 0.8) as usize).clamp(1, 60));
        let _ = writeln!(bars, "  {ms:>3}ms {n:>7} {bar}");
    }
    out.push_str(&bars);
    out
}

/// Figure: CPU by priority level for one run.
pub fn priority_figure(r: &BenchResult) -> String {
    use std::fmt::Write as _;
    let total: u64 = r.cpu_by_priority.iter().map(|d| d.as_micros()).sum();
    let mut out = String::new();
    let _ = writeln!(out, "CPU by priority — {}:", r.rates.name);
    for (i, d) in r.cpu_by_priority.iter().enumerate() {
        let sharepct = if total == 0 {
            0.0
        } else {
            100.0 * d.as_micros() as f64 / total as f64
        };
        let bar = "#".repeat((sharepct * 0.6) as usize);
        let _ = writeln!(out, "  P{} {:6.1}% {bar}", i + 1, sharepct);
    }
    out
}

/// Figure: fork generations (§3: never exceeds 2).
pub fn generation_figure(results: &[BenchResult]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fork generations per benchmark (paper: no generation > 2 below the workers):"
    );
    for r in results {
        let _ = writeln!(
            out,
            "  {:24} max generation {}  counts {:?}",
            r.rates.name, r.max_generation, r.generation_counts
        );
    }
    out
}
