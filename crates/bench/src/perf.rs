//! Wall-clock performance harness behind `repro bench`.
//!
//! Where the rest of this crate measures *virtual-time* rates (the
//! paper's tables), this module measures how fast the simulator itself
//! chews through its benchmark matrix on the host: wall time per cell,
//! simulated events per second, and the serial-vs-parallel driver
//! speedup. The numbers land in `BENCH_threadstudy.json` at the repo
//! root, which CI uses as a regression baseline.

use std::time::Instant;

use pcr::SimDuration;
use trace::Json;
use workloads::{run_benchmark, Benchmark, System};

use crate::tables::{matrix, run_all_parallel, workers_available};

/// Wall-clock measurements for one matrix cell.
#[derive(Clone, Debug)]
pub struct CellPerf {
    /// Which system ran.
    pub system: System,
    /// Which benchmark ran.
    pub benchmark: Benchmark,
    /// Primitive events inside the measurement window (deterministic).
    pub event_volume: u64,
    /// Median wall-clock seconds across the reps.
    pub wall_secs: f64,
    /// `event_volume / wall_secs`.
    pub events_per_sec: f64,
    /// §6.1 per-monitor contention profile from the first rep
    /// (deterministic, so every rep sees the same one).
    pub contention: Vec<trace::MonitorProfileRow>,
    /// §6.2 wakeup-to-run latency histogram from the first rep.
    pub sched_latency: pcr::SchedLatency,
}

/// A full perf-harness run: every cell timed `reps` times serially, plus
/// the whole matrix timed under the parallel driver.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Virtual measurement window per cell.
    pub window: SimDuration,
    /// RNG seed every cell ran with.
    pub seed: u64,
    /// Repetitions each median is taken over.
    pub reps: u32,
    /// Hardware threads the parallel driver used.
    pub workers: usize,
    /// Per-cell measurements, in table order.
    pub cells: Vec<CellPerf>,
    /// Median wall seconds for the whole matrix, one cell at a time.
    pub serial_wall_secs: f64,
    /// Median wall seconds for the whole matrix under the parallel driver.
    pub parallel_wall_secs: f64,
    /// `serial_wall_secs / parallel_wall_secs`.
    pub parallel_speedup: f64,
    /// Sum of every cell's `event_volume`.
    pub total_events: u64,
    /// `total_events / serial_wall_secs` — the regression-check scalar.
    pub aggregate_events_per_sec: f64,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        0.5 * (samples[n / 2 - 1] + samples[n / 2])
    }
}

/// Runs the harness: `reps` serial passes over the matrix with per-cell
/// timing, then `reps` timed parallel passes, reporting medians.
///
/// # Panics
///
/// Panics if a world deadlocks, or if the parallel driver's event
/// volumes diverge from the serial driver's (a determinism bug).
pub fn measure(window: SimDuration, seed: u64, reps: u32) -> PerfReport {
    let reps = reps.max(1);
    let cells = matrix();
    let mut cell_walls: Vec<Vec<f64>> = vec![Vec::new(); cells.len()];
    let mut serial_walls: Vec<f64> = Vec::new();
    let mut volumes: Vec<u64> = vec![0; cells.len()];
    let mut profiles: Vec<(Vec<trace::MonitorProfileRow>, pcr::SchedLatency)> =
        vec![Default::default(); cells.len()];

    for rep in 0..reps {
        let mut pass_total = 0.0;
        for (i, &(sys, b)) in cells.iter().enumerate() {
            eprintln!("  bench rep {}/{reps}: {} / {b:?} ...", rep + 1, sys.name());
            let t0 = Instant::now();
            let r = run_benchmark(sys, b, window, seed);
            let dt = t0.elapsed().as_secs_f64();
            cell_walls[i].push(dt);
            pass_total += dt;
            if rep == 0 {
                volumes[i] = r.event_volume;
                profiles[i] = (r.contention, r.sched_latency);
            } else {
                assert_eq!(
                    volumes[i],
                    r.event_volume,
                    "{} / {b:?}: event volume changed between reps",
                    sys.name()
                );
            }
        }
        serial_walls.push(pass_total);
    }

    let mut parallel_walls: Vec<f64> = Vec::new();
    for rep in 0..reps {
        eprintln!("  bench rep {}/{reps}: parallel matrix ...", rep + 1);
        let t0 = Instant::now();
        let results = run_all_parallel(window, seed);
        parallel_walls.push(t0.elapsed().as_secs_f64());
        for (i, r) in results.iter().enumerate() {
            assert_eq!(
                volumes[i], r.event_volume,
                "parallel driver diverged from serial on cell {i}"
            );
        }
    }

    let cells_out: Vec<CellPerf> = cells
        .iter()
        .enumerate()
        .map(|(i, &(system, benchmark))| {
            let wall = median(&mut cell_walls[i]);
            let (contention, sched_latency) = std::mem::take(&mut profiles[i]);
            CellPerf {
                system,
                benchmark,
                event_volume: volumes[i],
                wall_secs: wall,
                events_per_sec: if wall > 0.0 {
                    volumes[i] as f64 / wall
                } else {
                    0.0
                },
                contention,
                sched_latency,
            }
        })
        .collect();

    let serial_wall_secs = median(&mut serial_walls);
    let parallel_wall_secs = median(&mut parallel_walls);
    let total_events: u64 = volumes.iter().sum();
    PerfReport {
        window,
        seed,
        reps,
        workers: workers_available().min(cells.len()),
        cells: cells_out,
        serial_wall_secs,
        parallel_wall_secs,
        parallel_speedup: if parallel_wall_secs > 0.0 {
            serial_wall_secs / parallel_wall_secs
        } else {
            0.0
        },
        total_events,
        aggregate_events_per_sec: if serial_wall_secs > 0.0 {
            total_events as f64 / serial_wall_secs
        } else {
            0.0
        },
    }
}

impl PerfReport {
    /// The machine-readable form written to `BENCH_threadstudy.json`.
    pub fn to_json(&self) -> Json {
        let cells = self.cells.iter().map(|c| {
            Json::obj([
                ("system", Json::from(c.system.name())),
                ("benchmark", Json::from(format!("{:?}", c.benchmark))),
                ("event_volume", Json::from(c.event_volume)),
                ("wall_secs", Json::from(c.wall_secs)),
                ("events_per_sec", Json::from(c.events_per_sec)),
                (
                    "profile",
                    crate::tables::profile_json(&c.contention, &c.sched_latency),
                ),
            ])
        });
        Json::obj([
            ("schema", Json::from("threadstudy-bench-v1")),
            ("window_us", Json::from(self.window.as_micros())),
            ("seed", Json::from(format!("{:#x}", self.seed))),
            ("reps", Json::from(self.reps)),
            ("workers", Json::from(self.workers)),
            ("serial_wall_secs", Json::from(self.serial_wall_secs)),
            ("parallel_wall_secs", Json::from(self.parallel_wall_secs)),
            ("parallel_speedup", Json::from(self.parallel_speedup)),
            ("total_events", Json::from(self.total_events)),
            (
                "aggregate_events_per_sec",
                Json::from(self.aggregate_events_per_sec),
            ),
            ("cells", Json::arr(cells)),
        ])
    }

    /// A human-readable summary for stdout.
    pub fn text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Perf harness: {} cells, window {}, seed {:#x}, median of {} reps",
            self.cells.len(),
            self.window,
            self.seed,
            self.reps
        );
        let _ = writeln!(
            out,
            "{:<26} {:>12} {:>10} {:>14}",
            "Cell", "events", "wall (s)", "events/sec"
        );
        for c in &self.cells {
            let _ = writeln!(
                out,
                "{:<26} {:>12} {:>10.3} {:>14.0}",
                format!("{}/{:?}", c.system.name(), c.benchmark),
                c.event_volume,
                c.wall_secs,
                c.events_per_sec
            );
        }
        let _ = writeln!(
            out,
            "serial matrix: {:.3}s   parallel matrix ({} workers): {:.3}s   speedup {:.2}x",
            self.serial_wall_secs, self.workers, self.parallel_wall_secs, self.parallel_speedup
        );
        let _ = writeln!(
            out,
            "aggregate: {} events in {:.3}s = {:.0} events/sec",
            self.total_events, self.serial_wall_secs, self.aggregate_events_per_sec
        );
        out
    }
}

/// Pulls `aggregate_events_per_sec` out of a previously written report
/// by parsing it with [`Json::parse`]; returns `None` if the text is
/// not JSON or the key is missing.
pub fn baseline_events_per_sec(text: &str) -> Option<f64> {
    Json::parse(text)
        .ok()?
        .get("aggregate_events_per_sec")
        .and_then(Json::as_f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&mut []), 0.0);
    }

    #[test]
    fn baseline_extraction_roundtrips() {
        let report = PerfReport {
            window: pcr::millis(10),
            seed: 0xCEDA_2026,
            reps: 1,
            workers: 1,
            cells: Vec::new(),
            serial_wall_secs: 2.0,
            parallel_wall_secs: 1.0,
            parallel_speedup: 2.0,
            total_events: 1000,
            aggregate_events_per_sec: 500.0,
        };
        for text in [report.to_json().pretty(), report.to_json().to_string()] {
            assert_eq!(baseline_events_per_sec(&text), Some(500.0));
        }
        assert_eq!(baseline_events_per_sec("no such key"), None);
    }
}
