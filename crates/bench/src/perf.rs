//! Wall-clock performance harness behind `repro bench`.
//!
//! Where the rest of this crate measures *virtual-time* rates (the
//! paper's tables), this module measures how fast the simulator itself
//! chews through its benchmark matrix on the host: wall time per cell,
//! simulated events per second, and the scaling curve of the
//! work-stealing executor across worker counts. The numbers land in
//! `BENCH_threadstudy.json` at the repo root, which CI uses as a
//! regression baseline.

use std::time::Instant;

use pcr::{PolicyKind, SimDuration};
use trace::Json;
use workloads::{run_benchmark_policy, Benchmark, System};

use crate::executor::{run_indexed, Reporter};
use crate::tables::matrix;

/// Wall-clock measurements for one matrix cell.
#[derive(Clone, Debug)]
pub struct CellPerf {
    /// Which system ran.
    pub system: System,
    /// Which benchmark ran.
    pub benchmark: Benchmark,
    /// Primitive events inside the measurement window (deterministic).
    pub event_volume: u64,
    /// Median wall-clock seconds across the reps.
    pub wall_secs: f64,
    /// `event_volume / wall_secs`.
    pub events_per_sec: f64,
    /// Allocation/reuse deltas over the measurement window (from the
    /// first rep; deterministic). Near-zero `*_allocs` demonstrate the
    /// arena/pool hot paths stop allocating after warm-up.
    pub alloc: pcr::AllocCounters,
    /// §6.1 per-monitor contention profile from the first rep
    /// (deterministic, so every rep sees the same one).
    pub contention: Vec<trace::MonitorProfileRow>,
    /// §6.2 wakeup-to-run latency histogram from the first rep.
    pub sched_latency: pcr::SchedLatency,
}

/// One point of the executor scaling curve: the whole matrix, `reps`
/// times, at a fixed worker count.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    /// Worker threads the executor ran with.
    pub workers: usize,
    /// Mean wall seconds per matrix pass at this worker count.
    pub wall_secs: f64,
    /// Tasks executed by a worker other than their home deque's owner.
    pub steals: u64,
    /// `serial wall / this wall`.
    pub speedup: f64,
}

/// A full perf-harness run: every cell timed `reps` times serially, plus
/// the matrix timed through the work-stealing executor at each point of
/// the worker-count scaling curve.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Virtual measurement window per cell.
    pub window: SimDuration,
    /// RNG seed every cell ran with.
    pub seed: u64,
    /// Scheduling policy every cell ran under.
    pub policy: PolicyKind,
    /// Repetitions each median is taken over.
    pub reps: u32,
    /// Worker threads the widest parallel pass actually used (1 when the
    /// harness ran serial-only).
    pub workers: usize,
    /// `"serial"` or `"parallel"` — which driver the run was asked for.
    pub mode: &'static str,
    /// Per-cell measurements, in table order.
    pub cells: Vec<CellPerf>,
    /// The executor scaling curve, narrowest worker count first. The
    /// first point is always the serial reference (1 worker, speedup 1).
    pub scaling: Vec<ScalingPoint>,
    /// Median wall seconds for the whole matrix, one cell at a time.
    pub serial_wall_secs: f64,
    /// Mean wall seconds per matrix pass at the widest worker count.
    pub parallel_wall_secs: f64,
    /// `serial_wall_secs / parallel_wall_secs`.
    pub parallel_speedup: f64,
    /// Sum of every cell's `event_volume`.
    pub total_events: u64,
    /// `total_events / serial_wall_secs` — the regression-check scalar.
    pub aggregate_events_per_sec: f64,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        0.5 * (samples[n / 2 - 1] + samples[n / 2])
    }
}

/// The worker counts the scaling curve samples: 1, 2, and `max`,
/// deduplicated and capped at `max`.
pub fn scaling_worker_counts(max_workers: usize) -> Vec<usize> {
    let max = max_workers.max(1);
    let mut counts = vec![1, 2, max];
    counts.sort_unstable();
    counts.dedup();
    counts.retain(|&w| w <= max);
    counts
}

/// Runs the harness: `reps` serial passes over the matrix with per-cell
/// timing (through the executor at one worker, so serial and parallel
/// exercise the same driver), then `reps` matrix passes at each wider
/// point of the scaling curve up to `max_workers`.
///
/// # Panics
///
/// Panics if a world deadlocks, or if any parallel pass's event volumes
/// diverge from the serial pass's (a determinism bug).
pub fn measure(
    window: SimDuration,
    seed: u64,
    reps: u32,
    max_workers: usize,
    policy: PolicyKind,
) -> PerfReport {
    let reps = reps.max(1);
    let cells = matrix();
    let reporter = Reporter::new();
    let mut cell_walls: Vec<Vec<f64>> = vec![Vec::new(); cells.len()];
    let mut serial_walls: Vec<f64> = Vec::new();
    let mut volumes: Vec<u64> = vec![0; cells.len()];
    let mut allocs: Vec<pcr::AllocCounters> = vec![Default::default(); cells.len()];
    let mut profiles: Vec<(Vec<trace::MonitorProfileRow>, pcr::SchedLatency)> =
        vec![Default::default(); cells.len()];

    for rep in 0..reps {
        let t0 = Instant::now();
        // One worker: runs on this thread in table order, but through
        // the same executor entry point the parallel passes use.
        let (timed, _) = run_indexed(1, cells.len(), |i| {
            let (sys, b) = cells[i];
            reporter.line(&format!(
                "  bench rep {}/{reps}: {} / {b:?} ...",
                rep + 1,
                sys.name()
            ));
            let c0 = Instant::now();
            let r = run_benchmark_policy(sys, b, window, seed, policy);
            (c0.elapsed().as_secs_f64(), r)
        });
        serial_walls.push(t0.elapsed().as_secs_f64());
        for (i, (dt, r)) in timed.into_iter().enumerate() {
            let (sys, b) = cells[i];
            cell_walls[i].push(dt);
            if rep == 0 {
                volumes[i] = r.event_volume;
                allocs[i] = r.alloc;
                profiles[i] = (r.contention, r.sched_latency);
            } else {
                assert_eq!(
                    volumes[i],
                    r.event_volume,
                    "{} / {b:?}: event volume changed between reps",
                    sys.name()
                );
            }
        }
    }
    let serial_wall_secs = median(&mut serial_walls);

    let mut scaling = vec![ScalingPoint {
        workers: 1,
        wall_secs: serial_wall_secs,
        steals: 0,
        speedup: 1.0,
    }];
    for w in scaling_worker_counts(max_workers) {
        if w <= 1 {
            continue;
        }
        let n = cells.len() * reps as usize;
        reporter.line(&format!("  bench scaling: {w} workers x {n} cell runs ..."));
        let t0 = Instant::now();
        let (vols, exec) = run_indexed(w, n, |i| {
            let (sys, b) = cells[i % cells.len()];
            run_benchmark_policy(sys, b, window, seed, policy).event_volume
        });
        let wall_secs = t0.elapsed().as_secs_f64() / reps as f64;
        for (i, v) in vols.iter().enumerate() {
            assert_eq!(
                volumes[i % cells.len()],
                *v,
                "{w}-worker pass diverged from serial on task {i}"
            );
        }
        scaling.push(ScalingPoint {
            workers: exec.workers,
            wall_secs,
            steals: exec.steals,
            speedup: if wall_secs > 0.0 {
                serial_wall_secs / wall_secs
            } else {
                0.0
            },
        });
    }

    let cells_out: Vec<CellPerf> = cells
        .iter()
        .enumerate()
        .map(|(i, &(system, benchmark))| {
            let wall = median(&mut cell_walls[i]);
            let (contention, sched_latency) = std::mem::take(&mut profiles[i]);
            CellPerf {
                system,
                benchmark,
                event_volume: volumes[i],
                wall_secs: wall,
                events_per_sec: if wall > 0.0 {
                    volumes[i] as f64 / wall
                } else {
                    0.0
                },
                alloc: allocs[i],
                contention,
                sched_latency,
            }
        })
        .collect();

    let widest = *scaling.last().expect("scaling always has the serial point");
    let total_events: u64 = volumes.iter().sum();
    PerfReport {
        window,
        seed,
        policy,
        reps,
        workers: widest.workers,
        mode: if max_workers > 1 {
            "parallel"
        } else {
            "serial"
        },
        cells: cells_out,
        scaling,
        serial_wall_secs,
        parallel_wall_secs: widest.wall_secs,
        parallel_speedup: widest.speedup,
        total_events,
        aggregate_events_per_sec: if serial_wall_secs > 0.0 {
            total_events as f64 / serial_wall_secs
        } else {
            0.0
        },
    }
}

fn alloc_json(a: &pcr::AllocCounters) -> Json {
    Json::obj([
        ("timer_node_allocs", Json::from(a.timer_node_allocs)),
        ("timer_node_reuses", Json::from(a.timer_node_reuses)),
        ("queue_node_allocs", Json::from(a.queue_node_allocs)),
        ("queue_node_reuses", Json::from(a.queue_node_reuses)),
        ("os_thread_spawns", Json::from(a.os_thread_spawns)),
        ("os_thread_reuses", Json::from(a.os_thread_reuses)),
    ])
}

impl PerfReport {
    /// The machine-readable form written to `BENCH_threadstudy.json`.
    pub fn to_json(&self) -> Json {
        let cells = self.cells.iter().map(|c| {
            Json::obj([
                ("system", Json::from(c.system.name())),
                ("benchmark", Json::from(format!("{:?}", c.benchmark))),
                ("event_volume", Json::from(c.event_volume)),
                ("wall_secs", Json::from(c.wall_secs)),
                ("events_per_sec", Json::from(c.events_per_sec)),
                ("alloc", alloc_json(&c.alloc)),
                (
                    "profile",
                    crate::tables::profile_json(&c.contention, &c.sched_latency),
                ),
            ])
        });
        let scaling = self.scaling.iter().map(|p| {
            Json::obj([
                ("workers", Json::from(p.workers as u64)),
                ("wall_secs", Json::from(p.wall_secs)),
                ("steals", Json::from(p.steals)),
                ("speedup", Json::from(p.speedup)),
            ])
        });
        Json::obj([
            ("schema", Json::from("threadstudy-bench-v2")),
            ("window_us", Json::from(self.window.as_micros())),
            ("seed", Json::from(format!("{:#x}", self.seed))),
            ("policy", Json::from(self.policy.as_str())),
            ("reps", Json::from(self.reps)),
            ("workers", Json::from(self.workers)),
            ("mode", Json::from(self.mode)),
            ("serial_wall_secs", Json::from(self.serial_wall_secs)),
            ("parallel_wall_secs", Json::from(self.parallel_wall_secs)),
            ("parallel_speedup", Json::from(self.parallel_speedup)),
            ("total_events", Json::from(self.total_events)),
            (
                "aggregate_events_per_sec",
                Json::from(self.aggregate_events_per_sec),
            ),
            ("scaling", Json::arr(scaling)),
            ("cells", Json::arr(cells)),
        ])
    }

    /// A human-readable summary for stdout.
    pub fn text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Perf harness: {} cells, window {}, seed {:#x}, policy {}, median of {} reps, {} mode",
            self.cells.len(),
            self.window,
            self.seed,
            self.policy,
            self.reps,
            self.mode
        );
        let _ = writeln!(
            out,
            "{:<26} {:>12} {:>10} {:>14}",
            "Cell", "events", "wall (s)", "events/sec"
        );
        for c in &self.cells {
            let _ = writeln!(
                out,
                "{:<26} {:>12} {:>10.3} {:>14.0}",
                format!("{}/{:?}", c.system.name(), c.benchmark),
                c.event_volume,
                c.wall_secs,
                c.events_per_sec
            );
        }
        let _ = writeln!(out, "scaling (wall per matrix pass):");
        for p in &self.scaling {
            let _ = writeln!(
                out,
                "  {:>3} worker(s): {:>8.3}s   speedup {:>5.2}x   steals {}",
                p.workers, p.wall_secs, p.speedup, p.steals
            );
        }
        let _ = writeln!(
            out,
            "serial matrix: {:.3}s   parallel matrix ({} workers): {:.3}s   speedup {:.2}x",
            self.serial_wall_secs, self.workers, self.parallel_wall_secs, self.parallel_speedup
        );
        let _ = writeln!(
            out,
            "aggregate: {} events in {:.3}s = {:.0} events/sec",
            self.total_events, self.serial_wall_secs, self.aggregate_events_per_sec
        );
        out
    }
}

/// Pulls `aggregate_events_per_sec` out of a previously written report
/// by parsing it with [`Json::parse`]; returns `None` if the text is
/// not JSON or the key is missing.
pub fn baseline_events_per_sec(text: &str) -> Option<f64> {
    Json::parse(text)
        .ok()?
        .get("aggregate_events_per_sec")
        .and_then(Json::as_f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&mut []), 0.0);
    }

    #[test]
    fn scaling_counts_are_deduped_and_capped() {
        assert_eq!(scaling_worker_counts(1), vec![1]);
        assert_eq!(scaling_worker_counts(2), vec![1, 2]);
        assert_eq!(scaling_worker_counts(8), vec![1, 2, 8]);
        assert_eq!(scaling_worker_counts(0), vec![1]);
    }

    #[test]
    fn baseline_extraction_roundtrips() {
        let report = PerfReport {
            window: pcr::millis(10),
            seed: 0xCEDA_2026,
            policy: PolicyKind::RoundRobin,
            reps: 1,
            workers: 2,
            mode: "parallel",
            cells: Vec::new(),
            scaling: vec![
                ScalingPoint {
                    workers: 1,
                    wall_secs: 2.0,
                    steals: 0,
                    speedup: 1.0,
                },
                ScalingPoint {
                    workers: 2,
                    wall_secs: 1.0,
                    steals: 3,
                    speedup: 2.0,
                },
            ],
            serial_wall_secs: 2.0,
            parallel_wall_secs: 1.0,
            parallel_speedup: 2.0,
            total_events: 1000,
            aggregate_events_per_sec: 500.0,
        };
        for text in [report.to_json().pretty(), report.to_json().to_string()] {
            assert_eq!(baseline_events_per_sec(&text), Some(500.0));
        }
        assert_eq!(baseline_events_per_sec("no such key"), None);
    }

    #[test]
    fn v2_report_carries_scaling_and_mode() {
        let report = PerfReport {
            window: pcr::millis(10),
            seed: 1,
            policy: PolicyKind::RoundRobin,
            reps: 1,
            workers: 2,
            mode: "parallel",
            cells: Vec::new(),
            scaling: vec![ScalingPoint {
                workers: 1,
                wall_secs: 1.0,
                steals: 0,
                speedup: 1.0,
            }],
            serial_wall_secs: 1.0,
            parallel_wall_secs: 1.0,
            parallel_speedup: 1.0,
            total_events: 0,
            aggregate_events_per_sec: 0.0,
        };
        let j = report.to_json();
        assert_eq!(
            j.get("schema").and_then(Json::as_str),
            Some("threadstudy-bench-v2")
        );
        assert_eq!(j.get("mode").and_then(Json::as_str), Some("parallel"));
        assert!(j.get("scaling").is_some());
    }
}
