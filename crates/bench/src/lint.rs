//! `repro lint`: runs the `threadlint` static analyzer over the
//! workspace's own sources and cross-checks the self-census against the
//! hand-transcribed `core::inventory` catalog.
//!
//! This is the paper's Table-4 methodology turned back on the
//! reproduction itself: the same static sweep the authors ran over
//! 2.5 MLoC of Mesa, here over the crates that model it, plus the
//! §5.3/§5.4/§2.6 discipline lints Mesa's compiler would have enforced.
//!
//! Three optional outputs ride on the sweep:
//!
//! - `--sarif PATH`: SARIF 2.1.0 export for code-scanning upload.
//! - `--baseline PATH`: two-sided ratchet against a committed finding
//!   inventory — a finding missing from the baseline fails (new debt),
//!   and a baseline entry with no matching finding fails (stale entry
//!   hiding progress). `--write-baseline` regenerates the file.
//! - `--confirm DIR`: replays the stored resilience corpus in `DIR` and
//!   classifies every static finding as *confirmed* (a replayed failure
//!   strands threads on the flagged monitors, or strands the flagged
//!   thread), *plausible* (the flagged monitors were live in a replayed
//!   world), or *unreached* (no dynamic echo). Static names are source
//!   bindings; runtime names are construction literals with instance
//!   numbers — both sides fold interpolations and digit runs to `#`
//!   before the join, so `accounts[a]` meets `account0`.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use threadlint::{analyze_workspace, workspace_root, Analysis, Finding, Lint};

/// Options for [`run`]; all independent, all off by default.
#[derive(Default)]
pub struct LintOpts {
    /// Write the JSON findings artifact here.
    pub json: Option<String>,
    /// Write a SARIF 2.1.0 log here.
    pub sarif: Option<String>,
    /// Ratchet findings against this baseline file.
    pub baseline: Option<String>,
    /// With `baseline`: regenerate the file instead of checking it.
    pub write_baseline: bool,
    /// Replay the stored corpus in this directory and cross-validate.
    pub confirm: Option<String>,
}

/// Runs the analyzer, prints the census and findings, handles the
/// optional artifacts, and returns `true` on failure (any unallowed
/// finding, a census mismatch, a baseline delta, or an unreadable
/// corpus).
pub fn run(opts: &LintOpts) -> bool {
    let root = workspace_root();
    let analysis = match analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "FAIL lint: cannot scan workspace at {}: {e}",
                root.display()
            );
            return true;
        }
    };
    let mut failed = false;

    println!("{}", threadlint::census_table(&analysis).to_text());
    if analysis.findings.is_empty() {
        println!("Discipline findings: none");
    } else {
        println!("{}", threadlint::findings_table(&analysis).to_text());
    }
    let unallowed: Vec<_> = analysis.unallowed().collect();
    if !unallowed.is_empty() {
        for f in &unallowed {
            eprintln!(
                "FAIL {} ({}) {}:{} {}",
                f.lint,
                f.lint.paper_section(),
                f.file,
                f.line,
                f.message
            );
        }
        failed = true;
    }

    // Every lint must still be *exercised* by the deliberate mistakes:
    // an analyzer that stops firing is as wrong as one that over-fires.
    for lint in Lint::ALL {
        let fired = analysis
            .findings_in("crates/paradigms/src/mistakes.rs")
            .iter()
            .any(|f| f.lint == lint);
        if !fired {
            eprintln!(
                "FAIL lint self-test: {lint} found nothing in paradigms::mistakes — \
                 the lint has gone blind"
            );
            failed = true;
        }
    }

    // Census cross-check: every `modeled` site in the inventory must be
    // traceable to a real fork call site in the workspace sources.
    let modeled: Vec<String> = workloads::inventory::census()
        .modeled_sites()
        .map(|s| s.name.clone())
        .collect();
    let unmapped = threadlint::census_unmapped(&modeled, &analysis);
    if unmapped.is_empty() {
        println!(
            "Census cross-check: all {} modeled inventory sites map to fork call sites",
            modeled.len()
        );
    } else {
        for name in &unmapped {
            eprintln!("FAIL census: modeled inventory site {name:?} has no fork call site");
        }
        failed = true;
    }

    if let Some(path) = &opts.json {
        let mut doc = threadlint::to_json(&analysis);
        doc.push(
            "census_cross_check",
            trace::Json::obj([
                ("modeled_sites", trace::Json::from(modeled.len())),
                ("unmapped", trace::Json::from(unmapped.clone())),
            ]),
        );
        std::fs::write(path, doc.pretty()).expect("write lint json");
        eprintln!("wrote {path}");
    }

    if let Some(path) = &opts.sarif {
        std::fs::write(path, threadlint::to_sarif(&analysis).pretty()).expect("write sarif");
        eprintln!("wrote {path}");
    }

    if let Some(path) = &opts.baseline {
        failed |= baseline_ratchet(&analysis, Path::new(path), opts.write_baseline);
    }

    if let Some(dir) = &opts.confirm {
        failed |= confirm(&analysis, Path::new(dir));
    }

    let allowed = analysis.findings.len() - unallowed.len();
    println!(
        "threadlint: {} files, {} primitive sites, {} findings ({} allowed, {} unallowed)",
        analysis.files.len(),
        analysis.sites.len(),
        analysis.findings.len(),
        allowed,
        unallowed.len()
    );
    failed
}

/// The two-sided baseline ratchet. Keys are `lint|file|message` with
/// digit runs folded, so line drift does not churn the file but a new
/// finding (or a fixed one) always shows up as a delta.
fn baseline_ratchet(a: &Analysis, path: &Path, write: bool) -> bool {
    let mut keys: Vec<String> = a.findings.iter().map(threadlint::baseline_key).collect();
    keys.sort();
    keys.dedup();
    if write {
        let doc = trace::Json::obj([("findings", trace::Json::from(keys.clone()))]);
        std::fs::write(path, doc.pretty()).expect("write baseline");
        eprintln!("wrote {} ({} keys)", path.display(), keys.len());
        return false;
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("FAIL baseline: cannot read {}: {e}", path.display());
            return true;
        }
    };
    let stored: BTreeSet<String> = match trace::Json::parse(&text) {
        Ok(doc) => doc
            .get("findings")
            .and_then(trace::Json::as_array)
            .map(|xs| {
                xs.iter()
                    .filter_map(|x| x.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default(),
        Err(e) => {
            eprintln!("FAIL baseline: {} is not valid JSON: {e}", path.display());
            return true;
        }
    };
    let current: BTreeSet<String> = keys.into_iter().collect();
    let mut failed = false;
    for k in current.difference(&stored) {
        eprintln!(
            "FAIL baseline: new finding not in {}: {k} \
             (annotate or fix, then regenerate with --write-baseline)",
            path.display()
        );
        failed = true;
    }
    for k in stored.difference(&current) {
        eprintln!(
            "FAIL baseline: stale entry in {} (finding no longer fires): {k} \
             (regenerate with --write-baseline to bank the progress)",
            path.display()
        );
        failed = true;
    }
    if !failed {
        println!(
            "Baseline: {} findings match {} exactly",
            current.len(),
            path.display()
        );
    }
    failed
}

/// How strongly the corpus echoes one static finding.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Echo {
    Confirmed,
    Plausible,
    Unreached,
}

impl Echo {
    fn label(self) -> &'static str {
        match self {
            Echo::Confirmed => "CONFIRMED",
            Echo::Plausible => "plausible",
            Echo::Unreached => "unreached",
        }
    }
}

/// Folds `{…}` interpolations in a source literal to `#`, then digit
/// runs — the same normalization the runtime evidence went through, so
/// `"teller{t}"` meets the stranded party `teller0`.
fn normalize_literal(lit: &str) -> String {
    let mut out = String::new();
    let mut depth = 0usize;
    for c in lit.chars() {
        match c {
            '{' => {
                if depth == 0 {
                    out.push('#');
                }
                depth += 1;
            }
            '}' => depth = depth.saturating_sub(1),
            _ if depth == 0 => out.push(c),
            _ => {}
        }
    }
    resilience::normalize_name(&out)
}

/// The runtime-name set a finding's monitors could appear under: each
/// binding maps through the construction-literal index when the scan
/// found one, and falls back to its own (normalized) spelling.
fn runtime_names(f: &Finding, literals: &BTreeMap<String, BTreeSet<String>>) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for m in &f.monitors {
        match literals.get(m) {
            Some(lits) => names.extend(lits.iter().cloned()),
            None => {
                names.insert(resilience::normalize_name(m));
            }
        }
    }
    names
}

/// Replays the stored corpus and classifies every finding. Returns
/// `true` only when the corpus itself is unusable — classification is
/// a report, not a gate (an unreached finding is information, not a
/// regression).
fn confirm(a: &Analysis, dir: &Path) -> bool {
    let evidence = match resilience::corpus_evidence(dir) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("FAIL confirm: {e}");
            return true;
        }
    };
    let failing = evidence.iter().filter(|e| e.signature.is_some()).count();
    println!(
        "\nConfirm: replayed {} corpus case(s) from {} ({} failing)",
        evidence.len(),
        dir.display(),
        failing
    );
    let literals = threadlint::monitor_literals(a);

    let mut findings: Vec<&Finding> = a.findings.iter().collect();
    findings.sort_by_key(|f| (f.file.clone(), f.line, f.lint));
    let mut tally: BTreeMap<&'static str, usize> = BTreeMap::new();
    for f in findings {
        let names = runtime_names(f, &literals);
        let thread = f.thread.as_deref().map(normalize_literal);
        let mut echo = Echo::Unreached;
        let mut witness = String::new();
        for e in &evidence {
            if e.signature.is_some() {
                if let Some(r) = names.iter().find(|n| e.resources.contains(n)) {
                    echo = Echo::Confirmed;
                    witness = format!("blocked on `{r}` in {}", e.case_file);
                    break;
                }
                if let Some(t) = thread.as_ref().filter(|t| e.parties.contains(t)) {
                    echo = Echo::Confirmed;
                    witness = format!("stranded thread `{t}` in {}", e.case_file);
                    break;
                }
            }
            if echo == Echo::Unreached {
                if let Some(m) = names.iter().find(|n| e.monitors.contains(n)) {
                    echo = Echo::Plausible;
                    witness = format!("monitor `{m}` live in {}", e.case_file);
                    // keep scanning: a later case may confirm
                }
            }
        }
        *tally.entry(echo.label()).or_default() += 1;
        println!(
            "  {:<9} {:<28} {}:{}{}",
            echo.label(),
            f.lint.name(),
            f.file,
            f.line,
            if witness.is_empty() {
                String::new()
            } else {
                format!("  [{witness}]")
            }
        );
    }
    let total: usize = tally.values().sum();
    println!(
        "Precision: {} confirmed, {} plausible, {} unreached of {} findings",
        tally.get(Echo::Confirmed.label()).copied().unwrap_or(0),
        tally.get(Echo::Plausible.label()).copied().unwrap_or(0),
        tally.get(Echo::Unreached.label()).copied().unwrap_or(0),
        total
    );
    false
}
