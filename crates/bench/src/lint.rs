//! `repro lint`: runs the `threadlint` static analyzer over the
//! workspace's own sources and cross-checks the self-census against the
//! hand-transcribed `core::inventory` catalog.
//!
//! This is the paper's Table-4 methodology turned back on the
//! reproduction itself: the same static sweep the authors ran over
//! 2.5 MLoC of Mesa, here over the crates that model it, plus the
//! §5.3/§5.4/§2.6 discipline lints Mesa's compiler would have enforced.

use threadlint::{analyze_workspace, workspace_root, Lint};

/// Runs the analyzer, prints the census and findings, optionally writes
/// the JSON artifact, and returns `true` on failure (any unallowed
/// finding, or a `modeled` inventory site with no real fork site).
pub fn run(json_path: Option<&str>) -> bool {
    let root = workspace_root();
    let analysis = match analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "FAIL lint: cannot scan workspace at {}: {e}",
                root.display()
            );
            return true;
        }
    };
    let mut failed = false;

    println!("{}", threadlint::census_table(&analysis).to_text());
    if analysis.findings.is_empty() {
        println!("Discipline findings: none");
    } else {
        println!("{}", threadlint::findings_table(&analysis).to_text());
    }
    let unallowed: Vec<_> = analysis.unallowed().collect();
    if !unallowed.is_empty() {
        for f in &unallowed {
            eprintln!(
                "FAIL {} ({}) {}:{} {}",
                f.lint,
                f.lint.paper_section(),
                f.file,
                f.line,
                f.message
            );
        }
        failed = true;
    }

    // Every lint must still be *exercised* by the deliberate mistakes:
    // an analyzer that stops firing is as wrong as one that over-fires.
    for lint in Lint::ALL {
        let fired = analysis
            .findings_in("crates/paradigms/src/mistakes.rs")
            .iter()
            .any(|f| f.lint == lint);
        if !fired {
            eprintln!(
                "FAIL lint self-test: {lint} found nothing in paradigms::mistakes — \
                 the lint has gone blind"
            );
            failed = true;
        }
    }

    // Census cross-check: every `modeled` site in the inventory must be
    // traceable to a real fork call site in the workspace sources.
    let modeled: Vec<String> = workloads::inventory::census()
        .modeled_sites()
        .map(|s| s.name.clone())
        .collect();
    let unmapped = threadlint::census_unmapped(&modeled, &analysis);
    if unmapped.is_empty() {
        println!(
            "Census cross-check: all {} modeled inventory sites map to fork call sites",
            modeled.len()
        );
    } else {
        for name in &unmapped {
            eprintln!("FAIL census: modeled inventory site {name:?} has no fork call site");
        }
        failed = true;
    }

    if let Some(path) = json_path {
        let mut doc = threadlint::to_json(&analysis);
        doc.push(
            "census_cross_check",
            trace::Json::obj([
                ("modeled_sites", trace::Json::from(modeled.len())),
                ("unmapped", trace::Json::from(unmapped.clone())),
            ]),
        );
        std::fs::write(path, doc.pretty()).expect("write lint json");
        eprintln!("wrote {path}");
    }

    let allowed = analysis.findings.len() - unallowed.len();
    println!(
        "threadlint: {} files, {} primitive sites, {} findings ({} allowed, {} unallowed)",
        analysis.files.len(),
        analysis.sites.len(),
        analysis.findings.len(),
        allowed,
        unallowed.len()
    );
    failed
}
