//! The `repro` subcommands backed by the `resilience` crate:
//! `fuzz` (grid or `--guided`), `shrink`, `replay` (one case or
//! `--all DIR`), and `chaos --recover`.
//!
//! Each function returns an exit code from [`crate::exit`]; `main`
//! accumulates the worst one.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use pcr::{secs, ChaosConfig, RunLimit};
use resilience::{
    fuzz_with, guided_fuzz, observe, recover_preset, replay, shrink, signatures_per_cpu_minute,
    supervise, supervise_benchmark, unsupervised_wedges, FoundCase, FuzzCell, FuzzConfig,
    MutationDiscovery, Observation, RecoveryKind, ShrinkConfig, StoredCase, SupervisorConfig,
    TrialSpec, TrialWorld,
};
use threadstudy_core::System;
use trace::Table;
use workloads::Benchmark;

use crate::exit;

/// The world-aware cell label shown in fuzz tables.
fn case_cell_label(case: &StoredCase) -> String {
    match case.world {
        TrialWorld::Cell => format!("{}/{:?}", case.system.name(), case.benchmark),
        other => other.tag(),
    }
}

/// Parses a `--workload SYSTEM/BENCHMARK` filter ("cedar/keyboard",
/// "gvx/scroll").
pub fn parse_workload(arg: &str) -> Result<(System, Benchmark), String> {
    let (sys, bench) = arg
        .split_once('/')
        .ok_or_else(|| format!("bad --workload {arg:?}: expected SYSTEM/BENCHMARK"))?;
    let system = match sys.to_ascii_lowercase().as_str() {
        "cedar" => System::Cedar,
        "gvx" => System::Gvx,
        other => return Err(format!("unknown system {other:?} (cedar or gvx)")),
    };
    let benchmark = Benchmark::CEDAR
        .iter()
        .copied()
        .find(|b| format!("{b:?}").eq_ignore_ascii_case(bench))
        .ok_or_else(|| format!("unknown benchmark {bench:?}"))?;
    if !Benchmark::suite(system).contains(&benchmark) {
        return Err(format!("{} does not run {benchmark:?}", system.name()));
    }
    Ok((system, benchmark))
}

/// Options for `repro fuzz`.
pub struct FuzzOpts {
    /// Trial budget.
    pub budget: u32,
    /// Base seed.
    pub base_seed: u64,
    /// Optional single-cell restriction.
    pub workload: Option<(System, Benchmark)>,
    /// Where to store failing cases.
    pub out_dir: PathBuf,
    /// Shrink each unique case before storing it.
    pub shrink: bool,
    /// Path to a file of known signatures; unknown ones exit
    /// [`exit::NEW_FAILURE`].
    pub expect: Option<PathBuf>,
    /// Per-trial window override (seconds).
    pub window_secs: Option<u64>,
    /// Run the coverage-guided fuzzer instead of the plain grid.
    pub guided: bool,
    /// With `guided`: also run the plain grid on the same budget and
    /// fail with [`exit::REGRESSION`] if guided found fewer signatures.
    pub compare_grid: bool,
    /// Optional wall-clock cap per sweep, in milliseconds.
    pub wall_budget_ms: Option<u64>,
    /// Write a JSON stats artifact (signatures per CPU-minute etc.).
    pub stats: Option<PathBuf>,
    /// Worker threads for grid sweeps (1 = serial). Signatures are
    /// identical at every worker count; only wall-clock time changes.
    /// The guided fuzzer is inherently sequential (each mutation depends
    /// on earlier outcomes) and ignores this.
    pub workers: usize,
    /// Scheduling policy every trial runs under (`--policy`).
    pub policy: pcr::PolicyKind,
}

/// `repro fuzz`: sweep the chaos grid (or, with `--guided`, run the
/// coverage-guided mutation search), store unique failures, and compare
/// against the expected-signature set.
pub fn fuzz_cmd(opts: &FuzzOpts) -> i32 {
    let mut cfg = FuzzConfig {
        budget: opts.budget,
        base_seed: opts.base_seed,
        wall_budget_ms: opts.wall_budget_ms,
        policy: opts.policy,
        ..FuzzConfig::default()
    };
    if let Some((system, benchmark)) = opts.workload {
        cfg.cells = vec![FuzzCell::cell(system, benchmark)];
    }
    if let Some(w) = opts.window_secs {
        cfg.window = secs(w);
    }
    let started = std::time::Instant::now();
    let mode = if opts.guided { "guided" } else { "grid" };
    let workers = opts.workers.max(1);
    // Grid sweeps route every batch of trials through the work-stealing
    // executor; trial results are processed in grid order inside
    // `fuzz_with`, so the signature set is worker-count-independent.
    let mut grid_runner = |batch: &[(TrialSpec, ChaosConfig)]| -> Vec<Observation> {
        let (obs, _) = crate::executor::run_indexed(workers, batch.len(), |i| {
            let (spec, chaos) = &batch[i];
            observe(spec, chaos.clone())
        });
        obs
    };
    let (trials, failures, cases, discoveries): (u32, u32, Vec<FoundCase>, Vec<MutationDiscovery>) =
        if opts.guided {
            let o = guided_fuzz(&cfg, |line| eprintln!("{line}"));
            (o.trials, o.failures, o.cases, o.mutation_discoveries)
        } else {
            let o = fuzz_with(&cfg, |line| eprintln!("{line}"), workers, &mut grid_runner);
            (o.trials, o.failures, o.cases, Vec::new())
        };
    let wall = started.elapsed();
    let per_minute = signatures_per_cpu_minute(cases.len(), wall);
    println!(
        "fuzz[{mode}]: {} trial(s), {} failure(s), {} unique signature(s) in {:.1}s ({:.1} signatures/cpu-minute, {} worker(s))",
        trials,
        failures,
        cases.len(),
        wall.as_secs_f64(),
        per_minute,
        if opts.guided { 1 } else { workers }
    );
    for d in &discoveries {
        println!(
            "  mutation discovery: {} via {} (parent {})",
            d.signature, d.mutation, d.parent
        );
    }
    let mut code = exit::OK;
    let mut table = Table::new(
        "unique failures",
        &[
            "signature",
            "count",
            "cell",
            "intensity",
            "decisions",
            "file",
        ],
    );
    for found in &cases {
        let mut case = found.case.clone();
        if opts.shrink {
            match shrink(&case, &ShrinkConfig::default(), |line| {
                eprintln!("  {line}")
            }) {
                Ok(report) => case = report.case,
                Err(e) => {
                    eprintln!("FAIL fuzz: shrink of {}: {e}", case.signature);
                    code = exit::worst(code, exit::REGRESSION);
                }
            }
        }
        let path = match case.save(&opts.out_dir) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("FAIL fuzz: cannot store case: {e}");
                return exit::worst(code, exit::IO);
            }
        };
        table.row(vec![
            case.signature.clone(),
            found.count.to_string(),
            case_cell_label(&case),
            case.intensity.clone(),
            case.schedule.decisions.len().to_string(),
            path.display().to_string(),
        ]);
    }
    if !table.is_empty() {
        println!("{}", table.to_text());
    }
    let mut stats_fields = vec![
        ("mode", trace::Json::Str(mode.to_string())),
        (
            "workers",
            trace::Json::UInt(if opts.guided { 1 } else { workers as u64 }),
        ),
        ("trials", trace::Json::UInt(u64::from(trials))),
        ("failures", trace::Json::UInt(u64::from(failures))),
        ("distinct_signatures", trace::Json::UInt(cases.len() as u64)),
        ("wall_ms", trace::Json::UInt(wall.as_millis() as u64)),
        ("signatures_per_cpu_minute", trace::Json::Float(per_minute)),
        (
            "mutation_discoveries",
            trace::Json::UInt(discoveries.len() as u64),
        ),
        (
            "signatures",
            trace::Json::arr(
                cases
                    .iter()
                    .map(|c| trace::Json::Str(c.case.signature.clone())),
            ),
        ),
    ];
    if opts.compare_grid {
        let grid_started = std::time::Instant::now();
        let grid = fuzz_with(&cfg, |line| eprintln!("{line}"), workers, &mut grid_runner);
        let grid_wall = grid_started.elapsed();
        let grid_per_minute = signatures_per_cpu_minute(grid.cases.len(), grid_wall);
        println!(
            "fuzz[grid comparison]: {} trial(s), {} unique signature(s) in {:.1}s ({:.1} signatures/cpu-minute)",
            grid.trials,
            grid.cases.len(),
            grid_wall.as_secs_f64(),
            grid_per_minute
        );
        stats_fields.push(("grid_trials", trace::Json::UInt(u64::from(grid.trials))));
        stats_fields.push((
            "grid_distinct_signatures",
            trace::Json::UInt(grid.cases.len() as u64),
        ));
        stats_fields.push((
            "grid_signatures_per_cpu_minute",
            trace::Json::Float(grid_per_minute),
        ));
        if cases.len() < grid.cases.len() {
            eprintln!(
                "FAIL fuzz: guided found {} signature(s), grid found {} on the same budget",
                cases.len(),
                grid.cases.len()
            );
            code = exit::worst(code, exit::REGRESSION);
        } else {
            println!(
                "guided covers {} signature(s) vs grid's {} on the same budget",
                cases.len(),
                grid.cases.len()
            );
        }
    }
    if let Some(stats_path) = &opts.stats {
        let doc = trace::Json::obj(stats_fields);
        if let Err(e) = std::fs::write(stats_path, doc.pretty() + "\n") {
            eprintln!("FAIL fuzz: cannot write {}: {e}", stats_path.display());
            code = exit::worst(code, exit::IO);
        } else {
            eprintln!("wrote {}", stats_path.display());
        }
    }
    if let Some(expect) = &opts.expect {
        let known = match std::fs::read_to_string(expect) {
            Ok(text) => text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_string)
                .collect::<BTreeSet<String>>(),
            Err(e) => {
                eprintln!("FAIL fuzz: cannot read {}: {e}", expect.display());
                return exit::worst(code, exit::IO);
            }
        };
        let mut new = 0;
        for found in &cases {
            if !known.contains(&found.case.signature) {
                eprintln!("FAIL fuzz: new failure signature: {}", found.case.signature);
                new += 1;
            }
        }
        if new > 0 {
            code = exit::worst(code, exit::NEW_FAILURE);
        } else {
            println!(
                "all {} signature(s) already in {}",
                cases.len(),
                expect.display()
            );
        }
    }
    code
}

/// `repro shrink FILE`: minimize a stored failing schedule.
pub fn shrink_cmd(path: &Path, max_replays: u32) -> i32 {
    let case = match StoredCase::load(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("FAIL shrink: {e}");
            return exit::IO;
        }
    };
    let report = match shrink(&case, &ShrinkConfig { max_replays }, |line| {
        eprintln!("{line}")
    }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("FAIL shrink: {e}");
            return exit::REGRESSION;
        }
    };
    let min_path = path.with_extension("min.json");
    if let Err(e) = std::fs::write(&min_path, report.case.to_json().pretty() + "\n") {
        eprintln!("FAIL shrink: cannot write {}: {e}", min_path.display());
        return exit::IO;
    }
    println!(
        "shrink: {} -> {} decision(s), {} -> {} stall(s), {} replay(s){}",
        report.original_decisions,
        report.case.schedule.decisions.len(),
        report.original_stalls,
        report.case.schedule.stalls.len(),
        report.replays,
        if report.exhausted {
            " (budget exhausted)"
        } else {
            ""
        }
    );
    println!("signature: {}", report.case.signature);
    println!("wrote {}", min_path.display());
    println!("repro: {}", report.case.repro_command(&min_path));
    exit::OK
}

/// `repro replay FILE`: replay a stored case and check it still
/// reproduces its signature.
pub fn replay_cmd(path: &Path) -> i32 {
    let case = match StoredCase::load(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("FAIL replay: {e}");
            return exit::IO;
        }
    };
    let obs = replay(&case);
    match obs.failure {
        Some(failure) => {
            let sig = failure.signature();
            println!(
                "replay: {} seed={:x} failed after {} with {sig}",
                case_cell_label(&case),
                case.seed,
                obs.elapsed
            );
            if !failure.detail.is_empty() {
                println!("{}", failure.detail);
            }
            if sig == case.signature {
                println!("replay: signature reproduced");
                exit::OK
            } else {
                eprintln!(
                    "FAIL replay: signature changed (stored {:?})",
                    case.signature
                );
                exit::REGRESSION
            }
        }
        None => {
            eprintln!(
                "FAIL replay: no failure within {} (stored signature {:?})",
                case.window, case.signature
            );
            exit::REGRESSION
        }
    }
}

/// `repro replay --all DIR`: replay every stored case under `DIR` in
/// sorted order — the corpus regression suite. The worst per-case exit
/// code wins.
pub fn replay_all_cmd(dir: &Path) -> i32 {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("FAIL replay --all: cannot read {}: {e}", dir.display());
            return exit::IO;
        }
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        eprintln!("FAIL replay --all: no .json cases under {}", dir.display());
        return exit::IO;
    }
    let mut code = exit::OK;
    let mut reproduced = 0usize;
    for path in &paths {
        println!("--- {}", path.display());
        let one = replay_cmd(path);
        if one == exit::OK {
            reproduced += 1;
        }
        code = exit::worst(code, one);
    }
    println!(
        "replay --all: {reproduced}/{} case(s) reproduced their signature",
        paths.len()
    );
    code
}

/// The §6.2 inversion cell of `repro chaos --recover`: the magnified
/// metalock world with donation and daemon both off wedges stably; the
/// supervisor must resolve it with the runtime remedies (donation
/// toggle, priority boost) and WITHOUT a restart.
fn recover_inversion_cell(
    cfg: &SupervisorConfig,
    table: &mut Table,
    json_rows: &mut Vec<trace::Json>,
) -> i32 {
    let label = "xpipe/MetalockInversion".to_string();
    let mut code = exit::OK;
    let wedged = {
        let (mut sim, _h) = xpipe::inversion::build_metalock_world(false, false);
        let report = sim.run(RunLimit::For(cfg.window));
        report.deadlocked() || !sim.wait_for_graph().wedged(cfg.wedge_threshold).is_empty()
    };
    if !wedged {
        eprintln!("FAIL recover {label}: the inversion did not wedge the unsupervised run");
        code = exit::worst(code, exit::REGRESSION);
    }
    let (sup, _sim) = supervise(
        |_| xpipe::inversion::build_metalock_world(false, false).0,
        cfg,
    );
    for action in &sup.actions {
        eprintln!(
            "{label}: attempt {} at {}: {} ({})",
            action.attempt,
            action.at,
            action.kind.tag(),
            action.detail
        );
    }
    let remedied = sup.actions.iter().any(|a| {
        matches!(
            a.kind,
            RecoveryKind::EnableMetalockDonation | RecoveryKind::PriorityBoost
        )
    });
    if sup.restarts > 0 || sup.gave_up || !remedied || !sup.healthy_at_end {
        eprintln!(
            "FAIL recover {label}: expected a restart-free §6.2 recovery (restarts={}, gave_up={}, healthy={})",
            sup.restarts, sup.gave_up, sup.healthy_at_end
        );
        code = exit::worst(code, exit::DEADLOCK);
    }
    let recoveries = sup
        .actions
        .iter()
        .map(|a| a.kind.tag())
        .collect::<Vec<_>>()
        .join(", ");
    table.row(vec![
        label.clone(),
        if wedged { "wedges" } else { "survives" }.to_string(),
        sup.attempts.to_string(),
        if recoveries.is_empty() {
            "-".to_string()
        } else {
            recoveries.clone()
        },
        "-".to_string(),
    ]);
    json_rows.push(trace::Json::obj([
        ("cell", trace::Json::Str(label)),
        ("unsupervised_wedges", trace::Json::Bool(wedged)),
        ("attempts", trace::Json::UInt(u64::from(sup.attempts))),
        ("restarts", trace::Json::UInt(u64::from(sup.restarts))),
        ("recoveries", trace::Json::Str(recoveries)),
        ("healthy_at_end", trace::Json::Bool(sup.healthy_at_end)),
    ]));
    code
}

/// `repro chaos --recover`: for each demo cell, show that the fault
/// load wedges the unsupervised run, then run it supervised and report
/// the recovery actions and degradation score.
pub fn recover_cmd(window: pcr::SimDuration, seed: u64, json_path: Option<&str>) -> i32 {
    let cfg = SupervisorConfig::for_window(window);
    let mut code = exit::OK;
    let mut table = Table::new(
        "supervised recovery",
        &[
            "cell",
            "unsupervised",
            "attempts",
            "recoveries",
            "degradation",
        ],
    );
    let mut json_rows = Vec::new();
    for (system, benchmark) in [
        (System::Cedar, Benchmark::Keyboard),
        (System::Gvx, Benchmark::Scroll),
    ] {
        let label = format!("{}/{benchmark:?}", system.name());
        let (chaos, max_threads) = recover_preset(system);
        let wedged = unsupervised_wedges(system, benchmark, seed, chaos.clone(), max_threads, &cfg);
        if !wedged {
            eprintln!("FAIL recover {label}: fault load did not wedge the unsupervised run");
            code = exit::worst(code, exit::REGRESSION);
        }
        let sup = supervise_benchmark(system, benchmark, seed, chaos, max_threads, &cfg);
        for action in &sup.supervision.actions {
            eprintln!(
                "{label}: attempt {} at {}: {} ({})",
                action.attempt,
                action.at,
                action.kind.tag(),
                action.detail
            );
        }
        let degradation = sup.result.degradation.unwrap_or(0.0);
        if sup.supervision.gave_up || degradation <= 0.0 {
            eprintln!("FAIL recover {label}: supervisor could not keep the world productive");
            code = exit::worst(code, exit::DEADLOCK);
        }
        let recoveries = sup
            .supervision
            .actions
            .iter()
            .map(|a| a.kind.tag())
            .collect::<Vec<_>>()
            .join(", ");
        table.row(vec![
            label.clone(),
            if wedged { "wedges" } else { "survives" }.to_string(),
            sup.supervision.attempts.to_string(),
            if recoveries.is_empty() {
                "-".to_string()
            } else {
                recoveries.clone()
            },
            format!("{degradation:.3}"),
        ]);
        json_rows.push(trace::Json::obj([
            ("cell", trace::Json::Str(label)),
            ("unsupervised_wedges", trace::Json::Bool(wedged)),
            (
                "attempts",
                trace::Json::UInt(u64::from(sup.supervision.attempts)),
            ),
            ("recoveries", trace::Json::Str(recoveries)),
            ("degradation", trace::Json::Float(degradation)),
            ("clean_volume", trace::Json::UInt(sup.clean_volume)),
            (
                "supervised_volume",
                trace::Json::UInt(sup.supervision.total_volume),
            ),
        ]));
    }
    code = exit::worst(
        code,
        recover_inversion_cell(&cfg, &mut table, &mut json_rows),
    );
    println!("{}", table.to_text());
    if let Some(path) = json_path {
        let doc = trace::Json::obj([("recover", trace::Json::arr(json_rows))]);
        if let Err(e) = std::fs::write(path, doc.pretty()) {
            eprintln!("FAIL recover: cannot write {path}: {e}");
            code = exit::worst(code, exit::IO);
        } else {
            eprintln!("wrote {path}");
        }
    }
    code
}

/// `repro diff --schedule FILE` support: names the injected fault sites
/// a stored schedule contributes, correlated with the diff's chaos
/// event kinds.
pub fn describe_schedule(path: &Path) -> Result<String, String> {
    let case = StoredCase::load(path)?;
    let mut out = String::new();
    out.push_str(&format!(
        "schedule {}: {}/{:?} seed={:x}, {} decision(s), {} stall(s)\n",
        path.display(),
        case.system.name(),
        case.benchmark,
        case.seed,
        case.schedule.decisions.len(),
        case.schedule.stalls.len()
    ));
    let mut per_kind: std::collections::BTreeMap<&str, (usize, u64)> = Default::default();
    for d in &case.schedule.decisions {
        let entry = per_kind.entry(d.kind.tag()).or_default();
        entry.0 += 1;
        entry.1 = entry.1.max(d.param_us);
    }
    for (tag, (count, max_param)) in per_kind {
        match trace::chaos_event_for_fault(tag) {
            Some(event) => out.push_str(&format!(
                "  injected fault site: {event} x{count} (from schedule kind {tag}, max param {max_param}us)\n"
            )),
            None => out.push_str(&format!(
                "  schedule kind {tag} x{count}: shifts timers, leaves no dedicated event\n"
            )),
        }
    }
    for s in &case.schedule.stalls {
        let event = trace::chaos_event_for_fault("stall").unwrap_or("chaos_stall");
        match &s.while_holding {
            Some(m) => out.push_str(&format!(
                "  injected fault site: {event} of {} for {} gated on holding {m}\n",
                s.thread, s.duration
            )),
            None => out.push_str(&format!(
                "  injected fault site: {event} of {} for {} at {}\n",
                s.thread, s.duration, s.at
            )),
        }
    }
    Ok(out)
}
