//! The §5/§6 experiments, each returning a report section.

use std::fmt::Write as _;

use pcr::{
    micros, millis, secs, ForkError, ForkPolicy, Priority, RunLimit, Sim, SimConfig, SimDuration,
};

/// E5 (§5.2): plain YIELD vs `YieldButNotToMe` in the slack pipeline.
pub fn slack_report() -> String {
    let (plain, fixed) = xpipe::slackbench::yield_comparison();
    let mut out = String::new();
    let _ = writeln!(out, "E5 (§5.2) — slack process feeding the X server");
    let _ = writeln!(
        out,
        "  policy             batches  merge-ratio  switches  completion"
    );
    for o in [&plain, &fixed] {
        let _ = writeln!(
            out,
            "  {:18} {:7} {:12.1} {:9} {:>11}",
            format!("{:?}", o.policy),
            o.server_batches,
            o.merge_ratio,
            o.switches,
            o.completion.to_string()
        );
    }
    let speedup = plain.completion.as_micros() as f64 / fixed.completion.as_micros().max(1) as f64;
    let _ = writeln!(
        out,
        "  => YieldButNotToMe completes the paint job {speedup:.1}x faster (paper: ~3x)"
    );
    out
}

/// E8 (§6.3): quantum sweep.
pub fn quantum_report() -> String {
    let sweep = xpipe::slackbench::quantum_sweep();
    let mut out = String::new();
    let _ = writeln!(out, "E8 (§6.3) — effect of the time-slice quantum");
    let _ = writeln!(
        out,
        "  quantum  policy                 merge-ratio  mean-staleness  max-staleness"
    );
    for o in &sweep {
        let _ = writeln!(
            out,
            "  {:>7}  {:22} {:10.1}  {:>14}  {:>13}",
            o.quantum.to_string(),
            format!("{:?}", o.policy),
            o.merge_ratio,
            o.mean_latency.to_string(),
            o.max_latency.to_string()
        );
    }
    let _ = writeln!(
        out,
        "  => 1s quantum: second-scale bursts; 1ms: merging collapses; timeout-based"
    );
    let _ = writeln!(
        out,
        "     buffering becomes viable once the granularity (== quantum) shrinks to 20ms"
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  ablation: 50ms quantum with a decoupled timer granularity (SleepTimeout 5ms)"
    );
    for (g, o) in xpipe::slackbench::granularity_ablation() {
        let _ = writeln!(
            out,
            "    granularity {:>5}  merge-ratio {:6.1}  mean-staleness {:>9}",
            g.to_string(),
            o.merge_ratio,
            o.mean_latency.to_string()
        );
    }
    let _ = writeln!(
        out,
        "  => the tick, not the quantum per se, is what limits the timeout-based buffer"
    );
    out
}

/// E6 (§6.1): spurious lock conflicts.
pub fn spurious_report() -> String {
    let (imm, def) = xpipe::spurious::compare(500);
    let mut out = String::new();
    let _ = writeln!(out, "E6 (§6.1) — spurious lock conflicts");
    for o in [&imm, &def] {
        let _ = writeln!(
            out,
            "  {:22} notifies {:5}  spurious conflicts {:5}  switches {:6}",
            format!("{:?}", o.mode),
            o.notifies,
            o.spurious_conflicts,
            o.switches
        );
    }
    let _ = writeln!(
        out,
        "  => deferring the reschedule until monitor exit eliminates every wasted trip"
    );
    out
}

/// E7 (§6.2): priority inversion and its workarounds.
pub fn inversion_report() -> String {
    let fmt_lat = |l: Option<SimDuration>| match l {
        Some(d) => d.to_string(),
        None => "STALLED (>20s)".to_string(),
    };
    let mut out = String::new();
    let _ = writeln!(out, "E7 (§6.2) — stable priority inversion");
    let plain = xpipe::inversion::monitor_inversion(false);
    let rescued = xpipe::inversion::monitor_inversion(true);
    let _ = writeln!(
        out,
        "  monitor inversion, no daemon:     high-prio acquire {}",
        fmt_lat(plain.acquire_latency)
    );
    let _ = writeln!(
        out,
        "  monitor inversion, SystemDaemon:  high-prio acquire {} ({} donations)",
        fmt_lat(rescued.acquire_latency),
        rescued.donations
    );
    for (donation, daemon) in [(true, false), (false, false), (true, true), (false, true)] {
        let o = xpipe::inversion::metalock_inversion(donation, daemon);
        let _ = writeln!(
            out,
            "  metalock: donation={:5} daemon={:5}  acquire {:>14}  stalls {}",
            donation,
            daemon,
            fmt_lat(o.acquire_latency),
            o.metalock_stalls
        );
    }
    let _ = writeln!(
        out,
        "  => strict priority starves; donation fixes only the metalock; the daemon's"
    );
    let _ = writeln!(
        out,
        "     random slices are what actually bound the inversion"
    );
    out
}

/// E12 (§5.6): threaded Xlib vs X1.
pub fn xlib_report() -> String {
    let (xlib, x1) = xpipe::xlib::compare();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E12 (§5.6) — threaded Xlib vs X1 connection management"
    );
    let _ = writeln!(
        out,
        "  model           events  flushes  flushes/event  inversion-window  hi-prio entry"
    );
    for (name, o) in [("modified Xlib", &xlib), ("X1", &x1)] {
        let _ = writeln!(
            out,
            "  {:14} {:6} {:8} {:14.2}  {:>16}  {:>13}",
            name,
            o.events_delivered,
            o.flushes,
            o.flushes_per_event,
            o.inversion_window.to_string(),
            o.highprio_entry_latency.to_string()
        );
    }
    let _ = writeln!(
        out,
        "  => the reading thread removes the flush coupling and the held-mutex window"
    );
    out
}

/// E9 (§5.3): common mistakes — IF-wait and timeout-masked notifies.
pub fn mistakes_report() -> String {
    use paradigms::mistakes::LossyNotifyQueue;
    let mut out = String::new();
    let _ = writeln!(out, "E9 (§5.3) — common mistakes");
    // Timeout-masked missing notifies: measure per-item latency.
    let run = |drop_every: u64| -> (SimDuration, u64) {
        let mut sim = Sim::new(SimConfig::default());
        let h = sim.fork_root("driver", Priority::of(4), move |ctx| {
            let q: LossyNotifyQueue<pcr::SimTime> =
                LossyNotifyQueue::new(ctx, "lossy", drop_every, Some(millis(50)));
            let qc = q.clone();
            let consumer = ctx
                .fork_prio("consumer", Priority::of(5), move |ctx| {
                    let mut timeouts = 0;
                    let mut latency = SimDuration::ZERO;
                    for _ in 0..50 {
                        let (put_at, t) = qc.take(ctx);
                        latency += ctx.now().saturating_since(put_at);
                        timeouts += t;
                    }
                    (latency / 50, timeouts)
                })
                .unwrap();
            for _ in 0..50 {
                ctx.sleep_precise(millis(60));
                q.put(ctx, ctx.now());
            }
            ctx.join(consumer).unwrap()
        });
        sim.run(RunLimit::For(secs(30)));
        h.into_result().unwrap().unwrap()
    };
    let (healthy, _) = run(0);
    let (buggy, touts) = run(1);
    let _ = writeln!(
        out,
        "  healthy NOTIFY path:        mean item latency {healthy}"
    );
    let _ = writeln!(
        out,
        "  all NOTIFYs missing (bug):  mean item latency {buggy}, {touts} timeout wakeups"
    );
    let _ = writeln!(
        out,
        "  => the system still \"works\" — timeout driven, correct but slow"
    );
    out
}

/// E10 (§5.4): fork-failure policies at the thread limit.
pub fn forkfail_report() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "E10 (§5.4) — when a fork fails (thread limit = 8)");
    // Error policy: count failures the forker must handle.
    let run = |policy: ForkPolicy| -> (u64, u64, SimDuration) {
        let mut sim = Sim::new(
            SimConfig::default()
                .with_max_threads(8)
                .with_fork_policy(policy),
        );
        let h = sim.fork_root("spawner", Priority::of(4), move |ctx| {
            let mut failures = 0u64;
            let mut stall = SimDuration::ZERO;
            for i in 0..40 {
                let t0 = ctx.now();
                match ctx.fork(&format!("job{i}"), |ctx| ctx.work(millis(20))) {
                    Ok(handle) => {
                        stall += ctx.now().since(t0);
                        ctx.detach(handle);
                    }
                    Err(ForkError::ResourcesExhausted) => {
                        failures += 1;
                        // "nobody really knows what to do about it":
                        // back off and retry later.
                        ctx.sleep(millis(50));
                    }
                }
            }
            (failures, stall)
        });
        let r = sim.run(RunLimit::For(secs(30)));
        let (failures, stall) = h.into_result().unwrap().unwrap();
        let _ = r;
        (failures, sim.stats().fork_blocks, stall)
    };
    let (failures, _, _) = run(ForkPolicy::Error);
    let (_, blocks, stall) = run(ForkPolicy::WaitForResources);
    let _ = writeln!(
        out,
        "  Error policy:            {failures} fork failures surfaced to recovery code"
    );
    let _ = writeln!(
        out,
        "  WaitForResources policy: {blocks} silent blocks inside FORK, {stall} total unexplained delay"
    );
    let _ = writeln!(
        out,
        "  => errors demand recovery nobody knows how to write; waiting hides the"
    );
    let _ = writeln!(out, "     problem as unexplained unresponsiveness");
    out
}

/// E11 (§5.5): weak memory ordering.
pub fn weakmem_report() -> String {
    use pcr::weakmem::WeakMem;
    let mut out = String::new();
    let _ = writeln!(out, "E11 (§5.5) — weakly ordered memory");
    let run = |fenced: bool| -> u64 {
        let mut sim = Sim::new(SimConfig::default().with_seed(99));
        let mem = WeakMem::new(1234, millis(5));
        let (wm, rm) = (mem.clone(), mem);
        let _ = sim.fork_root("writer", Priority::of(4), move |ctx| {
            for round in 0..50u64 {
                let base = round * 4;
                for f in 1..=3 {
                    wm.store(ctx, (base + f) as usize, 42);
                }
                if fenced {
                    wm.fence(ctx);
                }
                wm.store(ctx, base as usize, 1); // Publish.
                if fenced {
                    wm.fence(ctx);
                }
                for _ in 0..40 {
                    ctx.work(micros(50));
                    ctx.yield_now();
                }
            }
        });
        let h = sim.fork_root("reader", Priority::of(4), move |ctx| {
            let mut torn = 0u64;
            for round in 0..50u64 {
                let base = round * 4;
                for _ in 0..60 {
                    ctx.work(micros(40));
                    ctx.yield_now();
                    if rm.load(ctx, base as usize) == 1 {
                        for f in 1..=3 {
                            if rm.load(ctx, (base + f) as usize) != 42 {
                                torn += 1;
                            }
                        }
                        break;
                    }
                }
            }
            torn
        });
        sim.run(RunLimit::For(secs(60)));
        h.into_result().unwrap().unwrap()
    };
    let torn = run(false);
    let fenced = run(true);
    let _ = writeln!(
        out,
        "  pointer published without barrier: {torn} torn field reads over 50 rounds"
    );
    let _ = writeln!(out, "  with a store barrier before publishing: {fenced}");
    let _ = writeln!(
        out,
        "  => code correct under strong ordering silently breaks on weak machines"
    );
    out
}

/// E13 (§4.7): concurrency exploiters on the multiprocessor scheduler.
pub fn exploiters_report() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E13 (§4.7) — concurrency exploiters on 1/2/4/8 virtual processors"
    );
    let free = xpipe::exploiters::speedup_curve();
    let contended = xpipe::exploiters::contended_speedup_curve();
    let _ = writeln!(
        out,
        "  cpus  independent: makespan  speedup | shared-monitor: makespan  speedup  contended"
    );
    for (f, c) in free.iter().zip(&contended) {
        let _ = writeln!(
            out,
            "  {:>4}  {:>21}  {:>7.2} | {:>23}  {:>7.2}  {:>9}",
            f.cpus,
            f.makespan.to_string(),
            f.speedup,
            c.makespan.to_string(),
            c.speedup,
            c.contended
        );
    }
    let _ = writeln!(
        out,
        "  => independent fan-out scales; a shared monitor's serialized fraction caps"
    );
    let _ = writeln!(
        out,
        "     the curve — the guidance the paper's §7 says interactive systems lacked"
    );
    out
}

/// E17: retry-storm amplification under an X-server outage, with and
/// without the client retry budget. Same outage cell, one knob flipped;
/// the budget must keep the offered-work amplification factor bounded
/// while the unbudgeted fleet amplifies the outage into extra load.
pub fn retrystorm_report() -> String {
    let run = |budget: bool| {
        let mut spec = serverd::ServeSpec::scenario(serverd::ServeScenario::Outage, 1200, 0xA5);
        spec.window = secs(8);
        spec.outage = vec![(secs(2), millis(900)), (secs(5), millis(900))];
        spec.retry.budget_enabled = budget;
        serverd::run_serve(spec)
    };
    let with_budget = run(true);
    let without = run(false);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E17 (docs/SERVING.md) — retry-storm amplification across an X-server outage"
    );
    let _ = writeln!(
        out,
        "  retry budget   offered  painted  retries  suppressed  amplification  breaker trips"
    );
    for (label, o, suppressed) in [
        ("with budget", &with_budget, with_budget.budget_suppressed),
        ("no budget", &without, without.budget_suppressed),
    ] {
        let _ = writeln!(
            out,
            "  {:12} {:>9} {:>8} {:>8} {:>11} {:>14.3} {:>14}",
            label,
            o.counters.offered,
            o.counters.painted,
            o.counters.retries,
            suppressed,
            o.counters.amplification(),
            o.breaker_trips,
        );
    }
    let _ = writeln!(
        out,
        "  => the budget suppresses {} retries and holds amplification at {:.3}x",
        with_budget.budget_suppressed,
        with_budget.counters.amplification()
    );
    let _ = writeln!(
        out,
        "     (unbudgeted: {:.3}x) — an outage must not be amplified into a storm",
        without.counters.amplification()
    );
    out
}

/// Looks up one experiment's report by its DESIGN.md name.
pub fn report_by_name(name: &str) -> Option<String> {
    Some(match name {
        "slack" | "e5" => slack_report(),
        "spurious" | "e6" => spurious_report(),
        "inversion" | "e7" => inversion_report(),
        "quantum" | "e8" => quantum_report(),
        "mistakes" | "e9" => mistakes_report(),
        "forkfail" | "e10" => forkfail_report(),
        "weakmem" | "e11" => weakmem_report(),
        "xlib" | "e12" => xlib_report(),
        "exploiters" | "e13" => exploiters_report(),
        "retrystorm" | "e17" => retrystorm_report(),
        _ => return None,
    })
}

/// Every experiment, in DESIGN.md's order.
pub fn all_reports() -> Vec<String> {
    vec![
        slack_report(),
        spurious_report(),
        inversion_report(),
        quantum_report(),
        mistakes_report(),
        forkfail_report(),
        weakmem_report(),
        xlib_report(),
        exploiters_report(),
        retrystorm_report(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mistakes_report_shows_slowdown() {
        let r = mistakes_report();
        assert!(r.contains("timeout driven"));
    }

    #[test]
    fn forkfail_report_has_both_policies() {
        let r = forkfail_report();
        assert!(r.contains("Error policy"));
        assert!(r.contains("WaitForResources"));
    }

    #[test]
    fn weakmem_report_shows_fix() {
        let r = weakmem_report();
        assert!(r.contains("store barrier"));
    }

    #[test]
    fn retrystorm_report_contrasts_the_budget() {
        let r = retrystorm_report();
        assert!(r.contains("with budget"), "{r}");
        assert!(r.contains("no budget"), "{r}");
        assert!(r.contains("holds amplification"), "{r}");
        assert!(report_by_name("e17").is_some());
        assert!(report_by_name("retrystorm").is_some());
    }
}
