//! The serial and parallel matrix drivers must be indistinguishable:
//! every cell is an independent deterministic simulation, so fanning the
//! matrix across OS threads may only change wall-clock time, never a
//! single measured number or rendered table byte.

use bench::tables::{run_all_parallel, run_all_serial, table1, table2, table3};
use pcr::secs;
use workloads::{chaos_preset, run_benchmark_chaos, BenchResult, Benchmark, System};

fn table_text(results: &[BenchResult]) -> String {
    format!(
        "{}\n{}\n{}",
        table1(results).to_text(),
        table2(results).to_text(),
        table3(results).to_text()
    )
}

#[test]
fn parallel_matrix_matches_serial_across_seeds() {
    for seed in [0xCEDA_2026u64, 0xBEEF, 0x5EED_0003] {
        let serial = run_all_serial(secs(1), seed);
        let parallel = run_all_parallel(secs(1), seed);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            let label = format!("seed {seed:#x} {}/{:?}", a.system.name(), a.benchmark);
            assert_eq!(a.system, b.system, "{label}: cell order changed");
            assert_eq!(a.benchmark, b.benchmark, "{label}: cell order changed");
            assert_eq!(a.event_volume, b.event_volume, "{label}: event volume");
            assert_eq!(
                a.max_live_threads, b.max_live_threads,
                "{label}: live threads"
            );
            assert_eq!(
                a.max_generation, b.max_generation,
                "{label}: fork generations"
            );
            assert_eq!(
                a.rates.switches_per_sec, b.rates.switches_per_sec,
                "{label}: switch rate"
            );
        }
        assert_eq!(
            table_text(&serial),
            table_text(&parallel),
            "rendered tables diverged for seed {seed:#x}"
        );
    }
}

#[test]
fn chaos_cells_are_identical_under_concurrency() {
    // Chaos injection draws from a per-sim RNG; running two chaos worlds
    // on concurrent OS threads must not perturb either one's stream.
    let cells = [
        (System::Cedar, Benchmark::Keyboard),
        (System::Gvx, Benchmark::Scroll),
    ];
    let serial: Vec<BenchResult> = cells
        .iter()
        .map(|&(sys, b)| run_benchmark_chaos(sys, b, secs(2), 0xCEDA_2026, chaos_preset()))
        .collect();
    let concurrent: Vec<BenchResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = cells
            .iter()
            .map(|&(sys, b)| {
                scope.spawn(move || {
                    run_benchmark_chaos(sys, b, secs(2), 0xCEDA_2026, chaos_preset())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chaos cell panicked"))
            .collect()
    });
    for (a, b) in serial.iter().zip(&concurrent) {
        let label = format!("{}/{:?}", a.system.name(), a.benchmark);
        assert_eq!(a.hazards, b.hazards, "{label}: hazard tallies");
        assert_eq!(a.event_volume, b.event_volume, "{label}: event volume");
        assert_eq!(
            a.rates.switches_per_sec, b.rates.switches_per_sec,
            "{label}: switch rate"
        );
    }
}
