//! The matrix and fuzz drivers must be indistinguishable at every
//! worker count: every cell/trial is an independent deterministic
//! simulation, so fanning the work across OS threads may only change
//! wall-clock time, never a single measured number, rendered table
//! byte, or failure signature.

use bench::executor::run_indexed;
use bench::tables::{json_summary, run_all_serial, run_all_with_workers, table1, table2, table3};
use bench::tournament::{run_tournament, TournamentOpts};
use pcr::{secs, ChaosConfig, PolicyKind};
use resilience::{fuzz, fuzz_with, observe, FuzzConfig, FuzzOutcome, Observation, TrialSpec};
use workloads::{
    chaos_preset, run_benchmark, run_benchmark_chaos, run_benchmark_policy, BenchResult, Benchmark,
    System,
};

fn table_text(results: &[BenchResult]) -> String {
    format!(
        "{}\n{}\n{}",
        table1(results).to_text(),
        table2(results).to_text(),
        table3(results).to_text()
    )
}

#[test]
fn worker_counts_cannot_change_matrix_results() {
    // Force at least a 2-wide and a 3-wide schedule even on small hosts:
    // the executor happily runs more workers than cores, and results
    // must be identical either way.
    let max = bench::tables::workers_available().max(3);
    let worker_counts = [2, max];
    for seed in [0xCEDA_2026u64, 0xBEEF, 0x5EED_0003] {
        let serial = run_all_serial(secs(1), seed);
        let serial_tables = table_text(&serial);
        let serial_json = json_summary(&serial).pretty();
        for &workers in &worker_counts {
            let parallel = run_all_with_workers(secs(1), seed, workers);
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                let label = format!(
                    "seed {seed:#x} workers {workers} {}/{:?}",
                    a.system.name(),
                    a.benchmark
                );
                assert_eq!(a.system, b.system, "{label}: cell order changed");
                assert_eq!(a.benchmark, b.benchmark, "{label}: cell order changed");
                assert_eq!(a.event_volume, b.event_volume, "{label}: event volume");
                assert_eq!(
                    a.max_live_threads, b.max_live_threads,
                    "{label}: live threads"
                );
                assert_eq!(
                    a.max_generation, b.max_generation,
                    "{label}: fork generations"
                );
                assert_eq!(
                    a.rates.switches_per_sec, b.rates.switches_per_sec,
                    "{label}: switch rate"
                );
            }
            assert_eq!(
                serial_tables,
                table_text(&parallel),
                "rendered tables diverged for seed {seed:#x} at {workers} workers"
            );
            assert_eq!(
                serial_json,
                json_summary(&parallel).pretty(),
                "JSON summary bytes diverged for seed {seed:#x} at {workers} workers"
            );
        }
    }
}

#[test]
fn fuzz_grid_signatures_are_worker_count_independent() {
    // Budget 20 reaches the second intensity layer of the Cedar cells
    // (the guaranteed-failure fork-cap rung), so the signature dedup
    // path is exercised, not just clean trials.
    let cfg = FuzzConfig {
        budget: 20,
        window: secs(2),
        ..FuzzConfig::default()
    };
    let fingerprint = |o: &FuzzOutcome| -> Vec<(String, u32)> {
        o.cases
            .iter()
            .map(|c| (c.case.signature.clone(), c.count))
            .collect()
    };
    let serial = fuzz(&cfg, |_| {});
    assert!(
        serial.failures > 0,
        "the fork-cap rung should fail within this budget"
    );
    for workers in [2usize, 4] {
        let mut runner = |batch: &[(TrialSpec, ChaosConfig)]| -> Vec<Observation> {
            let (obs, _) = run_indexed(workers, batch.len(), |i| {
                let (spec, chaos) = &batch[i];
                observe(spec, chaos.clone())
            });
            obs
        };
        let parallel = fuzz_with(&cfg, |_| {}, workers, &mut runner);
        assert_eq!(parallel.trials, serial.trials, "{workers} workers: trials");
        assert_eq!(
            parallel.failures, serial.failures,
            "{workers} workers: failures"
        );
        assert_eq!(
            fingerprint(&parallel),
            fingerprint(&serial),
            "{workers} workers: signature set diverged from serial"
        );
    }
}

#[test]
fn explicit_round_robin_matches_the_default_scheduler() {
    // `--policy rr` must be a no-op: the extracted round-robin policy
    // has to reproduce the pre-trait scheduler decision for decision.
    // Any drift shows up as a differing counter or histogram bucket in
    // the full result debug rendering.
    for seed in [0xCEDA_2026u64, 0xBEEF, 0x5EED_0003] {
        for (sys, b) in [
            (System::Cedar, Benchmark::Keyboard),
            (System::Gvx, Benchmark::Scroll),
        ] {
            let default = run_benchmark(sys, b, secs(2), seed);
            let explicit = run_benchmark_policy(sys, b, secs(2), seed, PolicyKind::RoundRobin);
            assert_eq!(
                format!("{default:?}"),
                format!("{explicit:?}"),
                "seed {seed:#x} {}/{b:?}: explicit rr diverged from the default",
                sys.name()
            );
        }
    }
}

#[test]
fn tournament_reference_slice_is_complete_and_deadlock_free() {
    let opts = TournamentOpts::new(secs(1), 0xCEDA_2026, 2).reference_cells();
    let report = run_tournament(&opts);
    assert_eq!(
        report.entries.len(),
        2 * PolicyKind::ALL.len(),
        "2 reference cells x 4 policies"
    );
    assert!(
        report.failures().is_empty(),
        "reference slice wedged: {:?}",
        report
            .failures()
            .iter()
            .map(|e| format!("{}/{:?}/{}", e.system.name(), e.benchmark, e.policy))
            .collect::<Vec<_>>()
    );
    let json = report.to_json();
    assert_eq!(
        json.get("schema").and_then(trace::Json::as_str),
        Some("threadstudy-tournament-v1")
    );
    let cells = json
        .get("cells")
        .and_then(trace::Json::as_array)
        .expect("cells array");
    assert_eq!(cells.len(), 2);
    for cell in cells {
        let policies = cell
            .get("policies")
            .and_then(trace::Json::as_array)
            .expect("per-cell policy array");
        assert_eq!(policies.len(), PolicyKind::ALL.len());
        for p in policies {
            assert_eq!(p.get("ok").and_then(trace::Json::as_bool), Some(true));
        }
    }
}

#[test]
fn chaos_cells_are_identical_under_concurrency() {
    // Chaos injection draws from a per-sim RNG; running two chaos worlds
    // on concurrent OS threads must not perturb either one's stream.
    let cells = [
        (System::Cedar, Benchmark::Keyboard),
        (System::Gvx, Benchmark::Scroll),
    ];
    let serial: Vec<BenchResult> = cells
        .iter()
        .map(|&(sys, b)| run_benchmark_chaos(sys, b, secs(2), 0xCEDA_2026, chaos_preset()))
        .collect();
    let concurrent: Vec<BenchResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = cells
            .iter()
            .map(|&(sys, b)| {
                scope.spawn(move || {
                    run_benchmark_chaos(sys, b, secs(2), 0xCEDA_2026, chaos_preset())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chaos cell panicked"))
            .collect()
    });
    for (a, b) in serial.iter().zip(&concurrent) {
        let label = format!("{}/{:?}", a.system.name(), a.benchmark);
        assert_eq!(a.hazards, b.hazards, "{label}: hazard tallies");
        assert_eq!(a.event_volume, b.event_volume, "{label}: event volume");
        assert_eq!(
            a.rates.switches_per_sec, b.rates.switches_per_sec,
            "{label}: switch rate"
        );
    }
}
