//! The census cross-check as a test: the hand-transcribed inventory
//! and the static self-census must agree, and the workspace must be
//! lint-clean. (threadlint's own `selfcheck` suite covers the lints in
//! isolation; this suite closes the loop against `core::inventory`.)

use threadlint::{analyze_workspace, workspace_root};

#[test]
fn modeled_inventory_sites_all_map_to_fork_call_sites() {
    let analysis = analyze_workspace(&workspace_root()).expect("workspace scan");
    let census = workloads::inventory::census();
    let modeled: Vec<String> = census.modeled_sites().map(|s| s.name.clone()).collect();
    assert!(
        !modeled.is_empty(),
        "inventory claims no modeled sites at all"
    );
    let unmapped = threadlint::census_unmapped(&modeled, &analysis);
    assert!(
        unmapped.is_empty(),
        "modeled inventory sites with no fork call site: {unmapped:?}"
    );
}

#[test]
fn lint_run_reports_success() {
    // The full CLI path, minus the process boundary: census, lints,
    // self-test, cross-check. `false` means "nothing failed".
    assert!(!bench::lint::run(None));
}

#[test]
fn lint_json_artifact_is_well_formed() {
    let analysis = analyze_workspace(&workspace_root()).expect("workspace scan");
    let doc = threadlint::to_json(&analysis).to_string();
    assert!(doc.contains("\"tool\":\"threadlint\""), "{doc:.>120}");
    assert!(doc.contains("\"ok\":true"), "workspace should be clean");
    // Every deliberate-mistake lint shows up in the export.
    for lint in threadlint::Lint::ALL {
        assert!(doc.contains(lint.name()), "missing {lint} in JSON export");
    }
}
