//! The census cross-check as a test: the hand-transcribed inventory
//! and the static self-census must agree, and the workspace must be
//! lint-clean. (threadlint's own `selfcheck` suite covers the lints in
//! isolation; this suite closes the loop against `core::inventory`.)

use threadlint::{analyze_workspace, workspace_root};

#[test]
fn modeled_inventory_sites_all_map_to_fork_call_sites() {
    let analysis = analyze_workspace(&workspace_root()).expect("workspace scan");
    let census = workloads::inventory::census();
    let modeled: Vec<String> = census.modeled_sites().map(|s| s.name.clone()).collect();
    assert!(
        !modeled.is_empty(),
        "inventory claims no modeled sites at all"
    );
    let unmapped = threadlint::census_unmapped(&modeled, &analysis);
    assert!(
        unmapped.is_empty(),
        "modeled inventory sites with no fork call site: {unmapped:?}"
    );
}

#[test]
fn lint_run_reports_success() {
    // The full CLI path, minus the process boundary: census, lints,
    // self-test, cross-check. `false` means "nothing failed".
    assert!(!bench::lint::run(&Default::default()));
}

#[test]
fn baseline_round_trips_and_ratchets_both_ways() {
    let dir = std::env::temp_dir().join(format!("lint-baseline-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("baseline.json");
    let write = bench::lint::LintOpts {
        baseline: Some(path.to_string_lossy().into_owned()),
        write_baseline: true,
        ..Default::default()
    };
    assert!(!bench::lint::run(&write), "writing the baseline must pass");
    let check = bench::lint::LintOpts {
        baseline: Some(path.to_string_lossy().into_owned()),
        ..Default::default()
    };
    assert!(
        !bench::lint::run(&check),
        "a freshly written baseline must match exactly"
    );
    // A stale entry (finding that no longer fires) must fail the check:
    // the ratchet is two-sided.
    let doc = std::fs::read_to_string(&path).unwrap();
    let salted = doc.replace(
        "\"findings\": [",
        "\"findings\": [\n    \"ghost-lint|nowhere.rs|never fired\",",
    );
    assert_ne!(doc, salted, "baseline artifact shape changed");
    std::fs::write(&path, salted).unwrap();
    assert!(
        bench::lint::run(&check),
        "a stale baseline entry must fail the ratchet"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn committed_baseline_matches_current_findings() {
    // The file CI ratchets against must stay in lockstep with the
    // analyzer: any drift fails here first, with a regeneration hint.
    let path = workspace_root().join("ci/lint-baseline.json");
    let check = bench::lint::LintOpts {
        baseline: Some(path.to_string_lossy().into_owned()),
        ..Default::default()
    };
    assert!(
        !bench::lint::run(&check),
        "ci/lint-baseline.json is out of date — regenerate with \
         `repro lint --baseline ci/lint-baseline.json --write-baseline`"
    );
}

#[test]
fn sarif_export_is_wellformed_and_complete() {
    let analysis = analyze_workspace(&workspace_root()).expect("workspace scan");
    let doc = threadlint::to_sarif(&analysis).to_string();
    let parsed = trace::Json::parse(&doc).expect("sarif parses");
    let runs = parsed.get("runs").and_then(trace::Json::as_array).unwrap();
    assert_eq!(runs.len(), 1);
    let results = runs[0]
        .get("results")
        .and_then(trace::Json::as_array)
        .unwrap();
    assert_eq!(
        results.len(),
        analysis.findings.len(),
        "every finding must appear as a SARIF result"
    );
    // Allowed findings carry an in-source suppression; the workspace is
    // clean, so all of them do.
    for r in results {
        assert!(
            r.get("suppressions").is_some(),
            "workspace finding without suppression: {r}"
        );
    }
}

#[test]
fn lint_json_artifact_is_well_formed() {
    let analysis = analyze_workspace(&workspace_root()).expect("workspace scan");
    let doc = threadlint::to_json(&analysis).to_string();
    assert!(doc.contains("\"tool\":\"threadlint\""), "{doc:.>120}");
    assert!(doc.contains("\"ok\":true"), "workspace should be clean");
    // Every deliberate-mistake lint shows up in the export.
    for lint in threadlint::Lint::ALL {
        assert!(doc.contains(lint.name()), "missing {lint} in JSON export");
    }
}
