//! Black-box tests of the `repro` binary's argument handling.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn unknown_command_prints_usage_and_exits_nonzero() {
    let out = repro()
        .arg("no-such-command")
        .output()
        .expect("spawn repro");
    assert_eq!(out.status.code(), Some(2), "exit code: {:?}", out.status);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown command: no-such-command"),
        "{stderr}"
    );
    assert!(stderr.contains("usage: repro"), "{stderr}");
}

#[test]
fn help_prints_usage_and_succeeds() {
    for arg in ["help", "--help", "-h"] {
        let out = repro().arg(arg).output().expect("spawn repro");
        assert!(out.status.success(), "{arg}: {:?}", out.status);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("usage: repro"), "{arg}: {stdout}");
        assert!(stdout.contains("lint"), "{arg}: {stdout}");
    }
}

#[test]
fn lint_subcommand_is_clean_and_writes_json() {
    let json = std::env::temp_dir().join(format!("threadlint-{}.json", std::process::id()));
    let out = repro()
        .args(["lint", "--json"])
        .arg(&json)
        .output()
        .expect("spawn repro");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("self-census"), "{stdout}");
    assert!(stdout.contains("0 unallowed"), "{stdout}");
    let doc = std::fs::read_to_string(&json).expect("json artifact");
    std::fs::remove_file(&json).ok();
    assert!(doc.contains("\"ok\": true"), "{doc:.>200}");
}
