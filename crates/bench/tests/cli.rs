//! Black-box tests of the `repro` binary's argument handling.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn unknown_command_prints_usage_and_exits_nonzero() {
    let out = repro()
        .arg("no-such-command")
        .output()
        .expect("spawn repro");
    assert_eq!(out.status.code(), Some(2), "exit code: {:?}", out.status);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown command: no-such-command"),
        "{stderr}"
    );
    assert!(stderr.contains("usage: repro"), "{stderr}");
}

#[test]
fn help_prints_usage_and_succeeds() {
    for arg in ["help", "--help", "-h"] {
        let out = repro().arg(arg).output().expect("spawn repro");
        assert!(out.status.success(), "{arg}: {:?}", out.status);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("usage: repro"), "{arg}: {stdout}");
        assert!(stdout.contains("lint"), "{arg}: {stdout}");
    }
}

#[test]
fn help_lists_every_documented_subcommand() {
    // The README quickstart documents these; `repro help` must list
    // each one so the docs and the binary cannot drift apart.
    let out = repro().arg("help").output().expect("spawn repro");
    assert!(out.status.success(), "{:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for cmd in [
        "tables",
        "table4",
        "figures",
        "experiments",
        "history",
        "contention",
        "trace",
        "diff",
        "chaos",
        "fuzz",
        "shrink",
        "replay",
        "lint",
        "markdown",
        "bench",
        "serve",
        "tournament",
        "all",
        "help",
    ] {
        assert!(
            stdout.lines().any(|l| {
                l.trim_start().starts_with(cmd)
                    || l.trim_start()
                        .split('|')
                        .any(|alt| alt.split_whitespace().next() == Some(cmd))
            }),
            "`repro help` does not list {cmd}:\n{stdout}"
        );
    }
}

/// Structural validation of a Chrome trace-event file: valid JSON, the
/// object form with a traceEvents array, every X span with non-negative
/// dur, and per-track monotonically non-decreasing timestamps.
fn validate_chrome(text: &str) {
    let doc = trace::Json::parse(text).expect("chrome trace parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(trace::Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "empty trace");
    let mut last_ts: std::collections::BTreeMap<(u64, u64), u64> =
        std::collections::BTreeMap::new();
    for e in events {
        let ph = e.get("ph").and_then(trace::Json::as_str).expect("ph");
        assert!(
            ["X", "i", "s", "f", "M"].contains(&ph),
            "unexpected phase {ph:?}"
        );
        if ph == "M" {
            continue;
        }
        let pid = e.get("pid").and_then(trace::Json::as_u64).expect("pid");
        let tid = e.get("tid").and_then(trace::Json::as_u64).expect("tid");
        let ts = e.get("ts").and_then(trace::Json::as_u64).expect("ts");
        if ph == "X" {
            assert!(
                e.get("dur").and_then(trace::Json::as_u64).is_some(),
                "X without dur"
            );
        }
        let prev = last_ts.entry((pid, tid)).or_insert(0);
        assert!(
            ts >= *prev,
            "track ({pid},{tid}) went backwards: {ts} after {prev}"
        );
        *prev = ts;
    }
}

#[test]
fn trace_chrome_is_valid_and_seed_deterministic() {
    let dir = std::env::temp_dir();
    let p1 = dir.join(format!("chrome-a-{}.json", std::process::id()));
    let p2 = dir.join(format!("chrome-b-{}.json", std::process::id()));
    for p in [&p1, &p2] {
        let out = repro()
            .args(["trace", "--window", "2", "--seed", "abc123", "--chrome"])
            .arg(p)
            .output()
            .expect("spawn repro");
        assert!(
            out.status.success(),
            "stderr:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let a = std::fs::read_to_string(&p1).expect("trace file");
    let b = std::fs::read_to_string(&p2).expect("trace file");
    std::fs::remove_file(&p1).ok();
    std::fs::remove_file(&p2).ok();
    assert_eq!(a, b, "same-seed chrome traces are not byte-identical");
    validate_chrome(&a);
}

#[test]
fn diff_of_identical_runs_is_clean_and_chaos_names_a_fault_site() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let clean1 = dir.join(format!("clean1-{pid}.jsonl"));
    let clean2 = dir.join(format!("clean2-{pid}.jsonl"));
    let chaos = dir.join(format!("chaos-{pid}.jsonl"));
    for (path, extra) in [(&clean1, false), (&clean2, false), (&chaos, true)] {
        let mut cmd = repro();
        cmd.args(["trace", "--window", "2", "--seed", "77", "--jsonl"]);
        cmd.arg(path);
        if extra {
            cmd.arg("--chaos");
        }
        let out = cmd.output().expect("spawn repro");
        assert!(
            out.status.success(),
            "stderr:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // Identical-seed clean runs: zero deltas, exit 0.
    let out = repro()
        .arg("diff")
        .args([&clean1, &clean2])
        .output()
        .expect("spawn repro");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "clean diff failed:\n{stdout}");
    assert!(stdout.contains("no deltas"), "{stdout}");

    // Chaos vs clean: the dedicated diff-delta exit code, at least one
    // named fault site.
    let out = repro()
        .arg("diff")
        .args([&clean1, &chaos])
        .output()
        .expect("spawn repro");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(4), "chaos diff exit:\n{stdout}");
    assert!(stdout.contains("injected fault site:"), "{stdout}");

    for p in [&clean1, &clean2, &chaos] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn help_documents_the_exit_codes() {
    let out = repro().arg("help").output().expect("spawn repro");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("exit codes:"), "{stdout}");
    for needle in ["diff deltas", "deadlock or wedge", "--expect"] {
        assert!(stdout.contains(needle), "missing {needle:?}:\n{stdout}");
    }
}

#[test]
fn bad_seeds_are_rejected_with_an_explanation() {
    for (seed, needle) in [
        ("abc", "odd number of hex digits"),
        ("abc", "0abc"),
        ("aabbccddeeff00112233", "do not fit a 64-bit seed"),
        ("xyz1", "not a hex digit"),
        ("0x", "got none"),
    ] {
        let out = repro()
            .args(["table4", "--seed", seed])
            .output()
            .expect("spawn repro");
        assert_eq!(
            out.status.code(),
            Some(2),
            "seed {seed:?}: {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(needle),
            "seed {seed:?}: expected {needle:?} in:\n{stderr}"
        );
    }
}

#[test]
fn bad_counts_are_rejected_with_an_explanation() {
    for (args, needle) in [
        (&["bench", "--reps", "0"][..], "must be at least 1"),
        (&["bench", "--reps", "-3"][..], "negative"),
        (
            &["bench", "--reps", "99999999999"][..],
            "does not fit a 32-bit count",
        ),
        (
            &["bench", "--reps", "18446744073709551616"][..],
            "does not fit a 64-bit count",
        ),
        (&["tables", "--window", "junk"][..], "positive integer"),
        (&["serve", "--sessions", "0"][..], "must be at least 1"),
        (&["serve", "--reps", "three"][..], "positive integer"),
        (&["serve", "--slo-p99-ms", "-1"][..], "negative"),
        (&["bench", "--workers", "0"][..], "positive integer"),
    ] {
        let out = repro().args(args).output().expect("spawn repro");
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {args:?}: {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(needle),
            "args {args:?}: expected {needle:?} in:\n{stderr}"
        );
        // The hint names the offending flag and value, --seed style.
        assert!(stderr.contains(args[1]), "args {args:?}:\n{stderr}");
    }
}

#[test]
fn serve_report_is_deterministic_across_runs_and_worker_counts() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let mut reports = Vec::new();
    for (tag, workers) in [("a", "1"), ("b", "4")] {
        let path = dir.join(format!("serve-{tag}-{pid}.json"));
        let out = repro()
            .args(["serve", "--sessions", "1200", "--seed", "A5"])
            .args(["--reps", "2", "--workers", workers, "--json"])
            .arg(&path)
            .output()
            .expect("spawn repro");
        let stdout = String::from_utf8_lossy(&out.stdout);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            out.status.success(),
            "workers {workers}:\nstdout:\n{stdout}\nstderr:\n{stderr}"
        );
        assert!(stdout.contains("slo: all gates met"), "{stdout}");
        reports.push(std::fs::read_to_string(&path).expect("report json"));
        std::fs::remove_file(&path).ok();
    }
    assert_eq!(
        reports[0], reports[1],
        "serve reports differ across --workers values"
    );
    assert!(
        reports[0].starts_with("{\"schema\":\"threadstudy-serve-v1\""),
        "{:.>120}",
        reports[0]
    );
}

#[test]
fn serve_slo_breach_exits_with_the_dedicated_code() {
    let out = repro()
        .args(["serve", "--sessions", "800", "--seed", "A5"])
        .args(["--slo-p99-ms", "1"])
        .output()
        .expect("spawn repro");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(8),
        "stdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stderr.contains("SLO breach"), "{stderr}");
}

#[test]
fn serve_baseline_catches_a_planted_regression() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let path = dir.join(format!("serve-base-{pid}.json"));
    let out = repro()
        .args(["serve", "--sessions", "800", "--seed", "A5", "--json"])
        .arg(&path)
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Same cell vs its own report: clean.
    let out = repro()
        .args(["serve", "--sessions", "800", "--seed", "A5", "--baseline"])
        .arg(&path)
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "self-baseline:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Plant a much better baseline: current goodput now looks regressed.
    let text = std::fs::read_to_string(&path).expect("baseline");
    let doc = trace::Json::parse(&text).expect("baseline json");
    let goodput = doc
        .get("goodput_per_sec")
        .and_then(trace::Json::as_f64)
        .expect("goodput");
    let planted = text.replacen(
        &format!("\"goodput_per_sec\":{goodput}"),
        &format!("\"goodput_per_sec\":{}", goodput * 10.0),
        1,
    );
    assert_ne!(planted, text, "failed to plant the regression");
    std::fs::write(&path, planted).unwrap();
    let out = repro()
        .args(["serve", "--sessions", "800", "--seed", "A5", "--baseline"])
        .arg(&path)
        .output()
        .expect("spawn repro");
    std::fs::remove_file(&path).ok();
    assert_eq!(
        out.status.code(),
        Some(5),
        "planted baseline:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("goodput"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn fuzz_shrink_replay_round_trip() {
    let dir = std::env::temp_dir().join(format!("repro-fuzz-{}", std::process::id()));
    // Budget 2 on the Cedar/Keyboard cell covers the tolerated preset
    // rung and the guaranteed fork-cap failure.
    let out = repro()
        .args(["fuzz", "--budget", "2", "--workload", "cedar/keyboard"])
        .args(["--window", "4", "--out"])
        .arg(&dir)
        .output()
        .expect("spawn repro");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "fuzz failed:\n{stdout}\n{stderr}");
    assert!(stdout.contains("1 unique signature(s)"), "{stdout}");
    let case_file = std::fs::read_dir(&dir)
        .expect("fuzz out dir")
        .map(|e| e.expect("dir entry").path())
        .find(|p| p.extension().is_some_and(|e| e == "json"))
        .expect("a stored case");
    let case_text = std::fs::read_to_string(&case_file).expect("case file");
    let case = trace::Json::parse(&case_text).expect("case json");
    let signature = case
        .get("signature")
        .and_then(trace::Json::as_str)
        .expect("signature field")
        .to_string();
    let original_decisions = case
        .get("decisions")
        .and_then(trace::Json::as_array)
        .expect("decisions")
        .len();
    assert!(
        original_decisions >= 1,
        "expected recorded decisions, got {original_decisions}"
    );

    // Shrink: must reduce to <= 25% of the original injection decisions
    // while keeping the signature.
    let out = repro()
        .arg("shrink")
        .arg(&case_file)
        .args(["--max-replays", "40"])
        .output()
        .expect("spawn repro");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "shrink failed:\n{stdout}");
    assert!(stdout.contains("repro:"), "{stdout}");
    let min_file = case_file.with_extension("min.json");
    let min_text = std::fs::read_to_string(&min_file).expect("minimized case");
    let min_case = trace::Json::parse(&min_text).expect("minimized json");
    assert_eq!(
        min_case.get("signature").and_then(trace::Json::as_str),
        Some(signature.as_str())
    );
    let min_decisions = min_case
        .get("decisions")
        .and_then(trace::Json::as_array)
        .expect("decisions")
        .len();
    assert!(
        min_decisions == 0 || min_decisions * 4 <= original_decisions,
        "shrink left {min_decisions} of {original_decisions} decisions"
    );

    // Replay the minimized schedule: same signature, exit 0.
    let out = repro()
        .arg("replay")
        .arg(&min_file)
        .output()
        .expect("spawn repro");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "replay failed:\n{stdout}");
    assert!(stdout.contains("signature reproduced"), "{stdout}");

    // The expected-signature gate: a matching file passes, a bogus one
    // exits with the new-failure code.
    let expect_ok = dir.join("expected.txt");
    std::fs::write(&expect_ok, format!("# known failures\n{signature}\n")).unwrap();
    let expect_stale = dir.join("stale.txt");
    std::fs::write(&expect_stale, "wedge:[somebody-else(monitor)]\n").unwrap();
    for (expect, want) in [(&expect_ok, Some(0)), (&expect_stale, Some(7))] {
        let out = repro()
            .args(["fuzz", "--budget", "2", "--workload", "cedar/keyboard"])
            .args(["--window", "4", "--out"])
            .arg(&dir)
            .arg("--expect")
            .arg(expect)
            .output()
            .expect("spawn repro");
        assert_eq!(
            out.status.code(),
            want,
            "expect file {expect:?}:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_recover_supervises_both_demo_cells() {
    let out = repro()
        .args(["chaos", "--recover", "--window", "6", "--seed", "c0ffee"])
        .output()
        .expect("spawn repro");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "recover failed:\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stdout.contains("supervised recovery"), "{stdout}");
    for cell in ["Cedar/Keyboard", "GVX/Scroll"] {
        assert!(stdout.contains(cell), "missing {cell}:\n{stdout}");
        assert!(stdout.contains("wedges"), "{stdout}");
    }
    // Both recovery levers should appear across the two cells.
    assert!(stderr.contains("fail-pending-forks"), "{stderr}");
    assert!(stderr.contains("rejuvenate"), "{stderr}");
}

#[test]
fn diff_schedule_names_the_stored_fault_sites() {
    let dir = std::env::temp_dir().join(format!("repro-diff-sched-{}", std::process::id()));
    let out = repro()
        .args(["fuzz", "--budget", "2", "--workload", "gvx/scroll"])
        .args(["--window", "6", "--out"])
        .arg(&dir)
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "fuzz failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let case_file = std::fs::read_dir(&dir)
        .expect("fuzz out dir")
        .map(|e| e.expect("dir entry").path())
        .find(|p| p.extension().is_some_and(|e| e == "json"))
        .expect("a stored case");

    // Two identical clean traces: diff is clean, but --schedule still
    // names what the stored schedule would inject.
    let pid = std::process::id();
    let t1 = std::env::temp_dir().join(format!("sched-clean1-{pid}.jsonl"));
    let t2 = std::env::temp_dir().join(format!("sched-clean2-{pid}.jsonl"));
    for p in [&t1, &t2] {
        let out = repro()
            .args(["trace", "--window", "1", "--seed", "77", "--jsonl"])
            .arg(p)
            .output()
            .expect("spawn repro");
        assert!(out.status.success());
    }
    let out = repro()
        .arg("diff")
        .args([&t1, &t2])
        .arg("--schedule")
        .arg(&case_file)
        .output()
        .expect("spawn repro");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("injected fault site:"), "{stdout}");
    assert!(stdout.contains("gated on holding gvx-screen"), "{stdout}");
    for p in [&t1, &t2] {
        std::fs::remove_file(p).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lint_subcommand_is_clean_and_writes_json() {
    let json = std::env::temp_dir().join(format!("threadlint-{}.json", std::process::id()));
    let out = repro()
        .args(["lint", "--json"])
        .arg(&json)
        .output()
        .expect("spawn repro");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("self-census"), "{stdout}");
    assert!(stdout.contains("0 unallowed"), "{stdout}");
    let doc = std::fs::read_to_string(&json).expect("json artifact");
    std::fs::remove_file(&json).ok();
    assert!(doc.contains("\"ok\": true"), "{doc:.>200}");
}
