//! Regression guard for the scheduler hot path.
//!
//! Two worlds that live almost entirely inside the scheduler's fast
//! paths — the ready-queue bitmask, the CV queues, and the masked
//! `emit` — reported as simulated events per wall-clock second (the same
//! metric `repro bench` tracks), plus raw arm/fire churn over the timer
//! wheel against the retired `BinaryHeap` baseline. Plain `main()`
//! harness, like the other benches in this directory.
//!
//! Each target also asserts a *floor* chosen three orders of magnitude
//! below typical rates on any development machine: the assertion is a
//! smoke check that only trips on a catastrophic regression (an
//! accidentally quadratic scan, a deadlock), never on CI noise.

use std::time::Instant;

use pcr::{millis, secs, Priority, RunLimit, Sim, SimConfig};

/// Arm/fire churn over a timer queue harness: keep 256 jittered
/// deadlines pending, then repeatedly fire the earliest and arm a
/// replacement — the steady-state pattern the sim's CV timeouts and
/// timeslices produce. Shared by the wheel and heap via an identical
/// inherent-method surface.
macro_rules! timer_churn_ops_per_sec {
    ($name:expr, $bench:expr, $ops:expr) => {{
        let mut b = $bench;
        let mut rng = pcr::SplitMix64::new(0x7133_D00D);
        let mut now = 0u64;
        for _ in 0..256 {
            b.arm(now + 1 + rng.next_below(100_000));
        }
        let t0 = Instant::now();
        for _ in 0..$ops {
            let due = b.next_deadline_us().expect("queue stays populated");
            assert!(b.fire(due), "armed timer must fire at its deadline");
            now = due;
            b.arm(now + 1 + rng.next_below(100_000));
        }
        let rate = $ops as f64 / t0.elapsed().as_secs_f64();
        println!("{:40} {rate:>12.0} arm+fire/sec", $name);
        (b, rate)
    }};
}

/// Runs `world` once as warmup and `reps` more times, printing and
/// returning the best observed events/sec. `world` returns the run's
/// [`pcr::SimStats::event_volume`].
fn events_per_sec(name: &str, reps: u32, mut world: impl FnMut() -> u64) -> f64 {
    world(); // Warmup.
    let mut best = 0.0f64;
    for _ in 0..reps {
        let start = Instant::now();
        let events = world();
        let rate = events as f64 / start.elapsed().as_secs_f64();
        best = best.max(rate);
    }
    println!("{name:40} {best:>12.0} events/sec  (best of {reps})");
    best
}

/// Two threads exchanging NOTIFY/WAIT as fast as virtual time allows:
/// the CV-queue and ready-queue hot path with zero fork traffic.
fn notify_wait_pingpong() -> u64 {
    let mut sim = Sim::new(SimConfig::default());
    let m = sim.monitor("m", 0u32);
    let cv = sim.condition(&m, "cv", Some(millis(50)));
    let (m2, cv2) = (m.clone(), cv.clone());
    let _ = sim.fork_root("a", Priority::of(4), move |ctx| {
        let mut g = ctx.enter(&m2);
        loop {
            g.with_mut(|v| *v = v.wrapping_add(1));
            g.notify(&cv2);
            let _ = g.wait(&cv2);
        }
    });
    let _ = sim.fork_root("b", Priority::of(4), move |ctx| {
        let mut g = ctx.enter(&m);
        loop {
            g.with_mut(|v| *v = v.wrapping_add(1));
            g.notify(&cv);
            let _ = g.wait(&cv);
        }
    });
    sim.run(RunLimit::For(secs(5)));
    sim.stats().event_volume()
}

/// A forker spinning up batches of short-lived children and joining
/// them: the fork/exit/join and timeslice hot path, with threads
/// entering and leaving the ready queues at several priorities.
fn fork_join_storm() -> u64 {
    let mut sim = Sim::new(SimConfig::default());
    let _ = sim.fork_root("forker", Priority::of(5), |ctx| loop {
        let batch: Vec<_> = (0..8)
            .map(|i| {
                ctx.fork_with(
                    &format!("w{i}"),
                    pcr::ForkOpts::default().priority(Priority::of(3 + (i % 3) as u8)),
                    move |ctx| ctx.work(millis(1)),
                )
                .unwrap()
            })
            .collect();
        for h in batch {
            ctx.join(h).unwrap();
        }
    });
    sim.run(RunLimit::For(secs(5)));
    let alloc = sim.alloc_counters();
    // The arena/pool acceptance checks: after thousands of forks, the
    // carrier pool and queue-node arena must be recycling, not growing.
    assert!(
        alloc.os_thread_reuses > alloc.os_thread_spawns,
        "fork storm should reuse pooled carriers ({alloc:?})"
    );
    assert!(
        alloc.queue_node_reuses > alloc.queue_node_allocs,
        "ready/CV queues should reuse arena nodes ({alloc:?})"
    );
    sim.stats().event_volume()
}

fn main() {
    let pingpong = events_per_sec("hotpath_notify_wait_pingpong_5s", 3, notify_wait_pingpong);
    let storm = events_per_sec("hotpath_fork_join_storm_5s", 3, fork_join_storm);

    const TIMER_OPS: u64 = 200_000;
    let (wheel, wheel_rate) = timer_churn_ops_per_sec!(
        "hotpath_timer_wheel_churn",
        pcr::microbench::WheelBench::new(),
        TIMER_OPS
    );
    let (_, heap_rate) = timer_churn_ops_per_sec!(
        "hotpath_timer_heap_churn",
        pcr::microbench::HeapBench::new(),
        TIMER_OPS
    );
    println!(
        "{:40} {:>12.2}x vs heap baseline",
        "hotpath_timer_wheel_ratio",
        wheel_rate / heap_rate
    );
    let (allocs, reuses) = wheel.alloc_stats();
    assert!(
        reuses > allocs,
        "timer churn should be served from the wheel's free list ({allocs} allocs, {reuses} reuses)"
    );

    const FLOOR_EVENTS_PER_SEC: f64 = 1_000.0;
    const FLOOR_TIMER_OPS_PER_SEC: f64 = 50_000.0;
    assert!(
        pingpong > FLOOR_EVENTS_PER_SEC,
        "notify/wait ping-pong fell below {FLOOR_EVENTS_PER_SEC} events/sec ({pingpong:.0})"
    );
    assert!(
        storm > FLOOR_EVENTS_PER_SEC,
        "fork/join storm fell below {FLOOR_EVENTS_PER_SEC} events/sec ({storm:.0})"
    );
    assert!(
        wheel_rate > FLOOR_TIMER_OPS_PER_SEC,
        "timer wheel churn fell below {FLOOR_TIMER_OPS_PER_SEC} arm+fire/sec ({wheel_rate:.0})"
    );
    println!(
        "hot-path floors ok (> {FLOOR_EVENTS_PER_SEC} events/sec, wheel > {FLOOR_TIMER_OPS_PER_SEC} arm+fire/sec)"
    );
}
