//! Regression guard for the scheduler hot path.
//!
//! Two worlds that live almost entirely inside the scheduler's fast
//! paths — the ready-queue bitmask, the CV queues, and the masked
//! `emit` — reported as simulated events per wall-clock second (the same
//! metric `repro bench` tracks). Plain `main()` harness, like the other
//! benches in this directory.
//!
//! Each target also asserts a *floor* chosen three orders of magnitude
//! below typical rates on any development machine: the assertion is a
//! smoke check that only trips on a catastrophic regression (an
//! accidentally quadratic scan, a deadlock), never on CI noise.

use std::time::Instant;

use pcr::{millis, secs, Priority, RunLimit, Sim, SimConfig};

/// Runs `world` once as warmup and `reps` more times, printing and
/// returning the best observed events/sec. `world` returns the run's
/// [`pcr::SimStats::event_volume`].
fn events_per_sec(name: &str, reps: u32, mut world: impl FnMut() -> u64) -> f64 {
    world(); // Warmup.
    let mut best = 0.0f64;
    for _ in 0..reps {
        let start = Instant::now();
        let events = world();
        let rate = events as f64 / start.elapsed().as_secs_f64();
        best = best.max(rate);
    }
    println!("{name:40} {best:>12.0} events/sec  (best of {reps})");
    best
}

/// Two threads exchanging NOTIFY/WAIT as fast as virtual time allows:
/// the CV-queue and ready-queue hot path with zero fork traffic.
fn notify_wait_pingpong() -> u64 {
    let mut sim = Sim::new(SimConfig::default());
    let m = sim.monitor("m", 0u32);
    let cv = sim.condition(&m, "cv", Some(millis(50)));
    let (m2, cv2) = (m.clone(), cv.clone());
    let _ = sim.fork_root("a", Priority::of(4), move |ctx| {
        let mut g = ctx.enter(&m2);
        loop {
            g.with_mut(|v| *v = v.wrapping_add(1));
            g.notify(&cv2);
            let _ = g.wait(&cv2);
        }
    });
    let _ = sim.fork_root("b", Priority::of(4), move |ctx| {
        let mut g = ctx.enter(&m);
        loop {
            g.with_mut(|v| *v = v.wrapping_add(1));
            g.notify(&cv);
            let _ = g.wait(&cv);
        }
    });
    sim.run(RunLimit::For(secs(5)));
    sim.stats().event_volume()
}

/// A forker spinning up batches of short-lived children and joining
/// them: the fork/exit/join and timeslice hot path, with threads
/// entering and leaving the ready queues at several priorities.
fn fork_join_storm() -> u64 {
    let mut sim = Sim::new(SimConfig::default());
    let _ = sim.fork_root("forker", Priority::of(5), |ctx| loop {
        let batch: Vec<_> = (0..8)
            .map(|i| {
                ctx.fork_with(
                    &format!("w{i}"),
                    pcr::ForkOpts::default().priority(Priority::of(3 + (i % 3) as u8)),
                    move |ctx| ctx.work(millis(1)),
                )
                .unwrap()
            })
            .collect();
        for h in batch {
            ctx.join(h).unwrap();
        }
    });
    sim.run(RunLimit::For(secs(5)));
    sim.stats().event_volume()
}

fn main() {
    let pingpong = events_per_sec("hotpath_notify_wait_pingpong_5s", 3, notify_wait_pingpong);
    let storm = events_per_sec("hotpath_fork_join_storm_5s", 3, fork_join_storm);

    const FLOOR_EVENTS_PER_SEC: f64 = 1_000.0;
    assert!(
        pingpong > FLOOR_EVENTS_PER_SEC,
        "notify/wait ping-pong fell below {FLOOR_EVENTS_PER_SEC} events/sec ({pingpong:.0})"
    );
    assert!(
        storm > FLOOR_EVENTS_PER_SEC,
        "fork/join storm fell below {FLOOR_EVENTS_PER_SEC} events/sec ({storm:.0})"
    );
    println!("hot-path floors ok (> {FLOOR_EVENTS_PER_SEC} events/sec)");
}
