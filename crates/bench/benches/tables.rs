//! Benchmark harness for the paper's tables and figure-like
//! distributions: each target runs a (short-window) benchmark world and
//! reports wall time — i.e. how fast the reproduction regenerates a row
//! of Tables 1–3 — while printing the row itself once per target so
//! `cargo bench` output doubles as a miniature reproduction.
//!
//! The full-length (30 s window) regeneration is `cargo run --release -p
//! bench --bin repro`.
//!
//! Plain `main()` harness (no external bench framework is available
//! offline): each target runs a fixed iteration count after a warmup and
//! reports mean wall time per iteration.

use std::time::Instant;

use pcr::secs;
use workloads::{run_benchmark, Benchmark, System};

fn bench<F: FnMut()>(name: &str, iters: u32, mut f: F) {
    f(); // Warmup.
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = start.elapsed() / iters;
    println!("{name:40} {per:>12.2?}/iter  ({iters} iters)");
}

fn print_row(sys: System, bench: Benchmark) {
    let r = run_benchmark(sys, bench, secs(10), 0xBEEF);
    eprintln!(
        "row {:24} forks/s {:5.1}  switches/s {:6.0}  waits/s {:5.0} ({:3.0}% t/o)  ML/s {:6.0}  CVs {:3} MLs {:4}",
        r.rates.name,
        r.rates.forks_per_sec,
        r.rates.switches_per_sec,
        r.rates.waits_per_sec,
        r.rates.timeout_pct,
        r.rates.ml_enters_per_sec,
        r.rates.distinct_cvs,
        r.rates.distinct_mls,
    );
}

fn main() {
    for (sys, benches) in [
        (System::Cedar, &Benchmark::CEDAR[..]),
        (System::Gvx, &Benchmark::GVX[..]),
    ] {
        for &b in benches {
            print_row(sys, b);
            let id = format!("{}_{b:?}", sys.name());
            bench(&id, 3, || {
                run_benchmark(sys, b, secs(2), 0xBEEF);
            });
        }
    }
    bench("execution_interval_histogram_compile", 3, || {
        let r = run_benchmark(System::Cedar, Benchmark::Compile, secs(2), 0xBEEF);
        let _ = (
            r.intervals.fraction_between(pcr::millis(0), pcr::millis(5)),
            r.intervals
                .time_fraction_between(pcr::millis(44), pcr::millis(51)),
        );
    });
    bench("table4_census", 10, || {
        let _ = workloads::inventory::census();
    });
}
