//! Benchmark harness for the paper's tables and figure-like
//! distributions: each target runs a (short-window) benchmark world and
//! reports wall time — i.e. how fast the reproduction regenerates a row
//! of Tables 1–3 — while printing the row itself once per target so
//! `cargo bench` output doubles as a miniature reproduction.
//!
//! The full-length (30 s window) regeneration is `cargo run --release -p
//! bench --bin repro`.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use pcr::secs;
use workloads::{run_benchmark, Benchmark, System};

fn row_once(sys: System, bench: Benchmark, printed: &Once) {
    printed.call_once(|| {
        let r = run_benchmark(sys, bench, secs(10), 0xBEEF);
        eprintln!(
            "row {:24} forks/s {:5.1}  switches/s {:6.0}  waits/s {:5.0} ({:3.0}% t/o)  ML/s {:6.0}  CVs {:3} MLs {:4}",
            r.rates.name,
            r.rates.forks_per_sec,
            r.rates.switches_per_sec,
            r.rates.waits_per_sec,
            r.rates.timeout_pct,
            r.rates.ml_enters_per_sec,
            r.rates.distinct_cvs,
            r.rates.distinct_mls,
        );
    });
}

fn bench_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_rows");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (sys, benches) in [
        (System::Cedar, &Benchmark::CEDAR[..]),
        (System::Gvx, &Benchmark::GVX[..]),
    ] {
        for &bench in benches {
            let printed = Once::new();
            let id = format!("{}_{bench:?}", sys.name());
            group.bench_function(&id, |b| {
                row_once(sys, bench, &printed);
                b.iter(|| run_benchmark(sys, bench, secs(2), 0xBEEF));
            });
        }
    }
    group.finish();
}

fn bench_interval_figure(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("execution_interval_histogram_compile", |b| {
        b.iter(|| {
            let r = run_benchmark(System::Cedar, Benchmark::Compile, secs(2), 0xBEEF);
            (
                r.intervals.fraction_between(pcr::millis(0), pcr::millis(5)),
                r.intervals
                    .time_fraction_between(pcr::millis(44), pcr::millis(51)),
            )
        })
    });
    group.bench_function("table4_census", |b| b.iter(workloads::inventory::census));
    group.finish();
}

criterion_group!(benches, bench_rows, bench_interval_figure);
criterion_main!(benches);
