//! Microbenchmarks of the runtime's primitives — the costs §2 and §5
//! discuss ("the scheduler takes less than 50 microseconds to switch
//! between threads"; "the modest cost of creating a thread"). These
//! measure the *simulator's* real-time costs per simulated primitive,
//! i.e. how expensive reproduction experiments are to run, alongside the
//! real-thread `mesa` monitor for comparison.
//!
//! Plain `main()` harness (no external bench framework is available
//! offline): each target runs a fixed iteration count after a short
//! warmup and reports mean wall time per iteration.

use std::time::Instant;

use pcr::{micros, millis, Priority, RunLimit, Sim, SimConfig};

fn bench<F: FnMut()>(name: &str, iters: u32, mut f: F) {
    for _ in 0..2 {
        f(); // Warmup.
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = start.elapsed() / iters;
    println!("{name:40} {per:>12.2?}/iter  ({iters} iters)");
}

fn sim_fork_join() {
    let mut sim = Sim::new(SimConfig::default());
    let _ = sim.fork_root("main", Priority::DEFAULT, |ctx| {
        for i in 0..100 {
            let h = ctx.fork(&format!("c{i}"), |_| 1u32).unwrap();
            ctx.join(h).unwrap();
        }
    });
    sim.run(RunLimit::ToCompletion);
}

fn sim_monitor_cycle() {
    let mut sim = Sim::new(SimConfig::default());
    let m = sim.monitor("m", 0u64);
    let _ = sim.fork_root("main", Priority::DEFAULT, move |ctx| {
        for _ in 0..1000 {
            let mut g = ctx.enter(&m);
            g.with_mut(|v| *v += 1);
        }
    });
    sim.run(RunLimit::ToCompletion);
}

fn sim_notify_wait() {
    let mut sim = Sim::new(SimConfig::default());
    let m = sim.monitor("m", 0u32);
    let cv = sim.condition(&m, "cv", Some(millis(50)));
    let (m2, cv2) = (m.clone(), cv.clone());
    let _ = sim.fork_root("a", Priority::of(4), move |ctx| {
        let mut g = ctx.enter(&m2);
        for _ in 0..500 {
            g.with_mut(|v| *v += 1);
            g.notify(&cv2);
            let _ = g.wait(&cv2);
        }
    });
    let _ = sim.fork_root("b", Priority::of(4), move |ctx| {
        let mut g = ctx.enter(&m);
        for _ in 0..500 {
            g.with_mut(|v| *v += 1);
            g.notify(&cv);
            let _ = g.wait(&cv);
        }
    });
    sim.run(RunLimit::For(pcr::secs(60)));
}

fn sim_timeslicing() {
    let mut sim = Sim::new(SimConfig::default());
    for i in 0..4 {
        let _ = sim.fork_root(&format!("hog{i}"), Priority::DEFAULT, |ctx| loop {
            ctx.work(micros(500));
        });
    }
    sim.run(RunLimit::For(pcr::secs(1)));
}

fn main() {
    bench("sim_fork_join_100", 20, sim_fork_join);
    bench("sim_monitor_enter_exit_1000", 20, sim_monitor_cycle);
    bench("sim_notify_wait_pingpong_500", 20, sim_notify_wait);
    bench("sim_timeslicing_1s_virtual", 10, sim_timeslicing);
    let m = mesa::Monitor::new("m", 0u64);
    bench("mesa_monitor_enter_exit_1000", 50, || {
        for _ in 0..1000 {
            let mut g = m.enter();
            *g.data() += 1;
        }
    });
}
