//! Microbenchmarks of the runtime's primitives — the costs §2 and §5
//! discuss ("the scheduler takes less than 50 microseconds to switch
//! between threads"; "the modest cost of creating a thread"). These
//! measure the *simulator's* real-time costs per simulated primitive,
//! i.e. how expensive reproduction experiments are to run, alongside the
//! real-thread `mesa` monitor for comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use pcr::{micros, millis, Priority, RunLimit, Sim, SimConfig};

fn bench_fork_join(c: &mut Criterion) {
    c.bench_function("sim_fork_join_100", |b| {
        b.iter(|| {
            let mut sim = Sim::new(SimConfig::default());
            let _ = sim.fork_root("main", Priority::DEFAULT, |ctx| {
                for i in 0..100 {
                    let h = ctx.fork(&format!("c{i}"), |_| 1u32).unwrap();
                    ctx.join(h).unwrap();
                }
            });
            sim.run(RunLimit::ToCompletion)
        })
    });
}

fn bench_monitor_cycle(c: &mut Criterion) {
    c.bench_function("sim_monitor_enter_exit_1000", |b| {
        b.iter(|| {
            let mut sim = Sim::new(SimConfig::default());
            let m = sim.monitor("m", 0u64);
            let _ = sim.fork_root("main", Priority::DEFAULT, move |ctx| {
                for _ in 0..1000 {
                    let mut g = ctx.enter(&m);
                    g.with_mut(|v| *v += 1);
                }
            });
            sim.run(RunLimit::ToCompletion)
        })
    });
}

fn bench_notify_wait(c: &mut Criterion) {
    c.bench_function("sim_notify_wait_pingpong_500", |b| {
        b.iter(|| {
            let mut sim = Sim::new(SimConfig::default());
            let m = sim.monitor("m", 0u32);
            let cv = sim.condition(&m, "cv", Some(millis(50)));
            let (m2, cv2) = (m.clone(), cv.clone());
            let _ = sim.fork_root("a", Priority::of(4), move |ctx| {
                let mut g = ctx.enter(&m2);
                for _ in 0..500 {
                    g.with_mut(|v| *v += 1);
                    g.notify(&cv2);
                    let _ = g.wait(&cv2);
                }
            });
            let _ = sim.fork_root("b", Priority::of(4), move |ctx| {
                let mut g = ctx.enter(&m);
                for _ in 0..500 {
                    g.with_mut(|v| *v += 1);
                    g.notify(&cv);
                    let _ = g.wait(&cv);
                }
            });
            sim.run(RunLimit::For(pcr::secs(60)))
        })
    });
}

fn bench_work_and_preemption(c: &mut Criterion) {
    c.bench_function("sim_timeslicing_1s_virtual", |b| {
        b.iter(|| {
            let mut sim = Sim::new(SimConfig::default());
            for i in 0..4 {
                let _ = sim.fork_root(&format!("hog{i}"), Priority::DEFAULT, |ctx| loop {
                    ctx.work(micros(500));
                });
            }
            sim.run(RunLimit::For(pcr::secs(1)))
        })
    });
}

fn bench_real_monitor(c: &mut Criterion) {
    c.bench_function("mesa_monitor_enter_exit_1000", |b| {
        let m = mesa::Monitor::new("m", 0u64);
        b.iter(|| {
            for _ in 0..1000 {
                let mut g = m.enter();
                *g.data() += 1;
            }
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_fork_join, bench_monitor_cycle, bench_notify_wait,
              bench_work_and_preemption, bench_real_monitor
);
criterion_main!(benches);
