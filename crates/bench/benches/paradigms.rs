//! Benchmarks of the paradigm components and the §5/§6 experiments:
//! one target per experiment so `cargo bench` exercises every
//! reproduction code path (E5, E6, E7, E12 run shortened here; the full
//! measurements come from `repro experiments`).
//!
//! Plain `main()` harness (no external bench framework is available
//! offline): each target runs a fixed iteration count after a warmup and
//! reports mean wall time per iteration.

use std::time::Instant;

use pcr::{micros, millis, NotifyMode, Priority, RunLimit, Sim, SimConfig};

fn bench<F: FnMut()>(name: &str, iters: u32, mut f: F) {
    f(); // Warmup.
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = start.elapsed() / iters;
    println!("{name:40} {per:>12.2?}/iter  ({iters} iters)");
}

fn main() {
    bench("paradigm_mbqueue_500_actions", 5, || {
        let mut sim = Sim::new(SimConfig::default());
        let _ = sim.fork_root("driver", Priority::of(5), |ctx| {
            let mb = paradigms::serializer::MbQueue::new(ctx, "mb", Priority::of(4), 64);
            for _ in 0..500 {
                mb.enqueue(ctx, micros(10), |_| {});
            }
            mb.stop(ctx);
        });
        sim.run(RunLimit::For(pcr::secs(30)));
    });
    bench("mesa_mbqueue_5000_actions", 5, || {
        let mb = mesa::mbqueue::MbQueue::new("mb");
        for _ in 0..5000 {
            mb.enqueue(|| {});
        }
        mb.shutdown();
    });
    for policy in [
        paradigms::slack::SlackPolicy::PlainYield,
        paradigms::slack::SlackPolicy::YieldButNotToMe,
    ] {
        bench(&format!("slack_e5_{policy:?}"), 3, || {
            xpipe::slackbench::run_slack(xpipe::slackbench::SlackConfig {
                policy,
                requests: 300,
                ..Default::default()
            });
        });
    }
    for mode in [NotifyMode::Immediate, NotifyMode::DeferredReschedule] {
        bench(&format!("notify_e6_{mode:?}"), 3, || {
            xpipe::spurious::run_notify_bench(mode, 200);
        });
    }
    bench("xlib_e12_modified_xlib", 3, || {
        xpipe::xlib::run_modified_xlib();
    });
    bench("xlib_e12_x1", 3, || {
        xpipe::xlib::run_x1();
    });
    for cpus in [1usize, 4] {
        bench(
            &format!("exploiters_e13_fork_join_16x25ms_{cpus}cpu"),
            3,
            || {
                xpipe::exploiters::fork_join_makespan(cpus, 16, millis(25));
            },
        );
    }
    bench("mesa_pool_10000_jobs", 5, || {
        let pool = mesa::pool::WorkerPool::new("p", 4);
        for _ in 0..10_000 {
            pool.defer(|| {});
        }
        pool.shutdown();
    });
    bench("paradigm_guarded_button_cycle", 10, || {
        let mut sim = Sim::new(SimConfig::default());
        let _ = sim.fork_root("ui", Priority::of(5), |ctx| {
            let button = paradigms::oneshot::GuardedButton::new(millis(100), millis(400));
            let _ = button.press(ctx);
            ctx.sleep_precise(millis(200));
            assert!(button.press(ctx));
        });
        sim.run(RunLimit::For(pcr::secs(5)));
    });
}
