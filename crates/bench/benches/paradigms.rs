//! Benchmarks of the paradigm components and the §5/§6 experiments:
//! one target per experiment so `cargo bench` exercises every
//! reproduction code path (E5, E6, E7, E12 run shortened here; the full
//! measurements come from `repro experiments`).

use criterion::{criterion_group, criterion_main, Criterion};
use pcr::{micros, millis, NotifyMode, Priority, RunLimit, Sim, SimConfig};

fn bench_mbqueue(c: &mut Criterion) {
    c.bench_function("paradigm_mbqueue_500_actions", |b| {
        b.iter(|| {
            let mut sim = Sim::new(SimConfig::default());
            let _ = sim.fork_root("driver", Priority::of(5), |ctx| {
                let mb = paradigms::serializer::MbQueue::new(ctx, "mb", Priority::of(4), 64);
                for _ in 0..500 {
                    mb.enqueue(ctx, micros(10), |_| {});
                }
                mb.stop(ctx);
            });
            sim.run(RunLimit::For(pcr::secs(30)))
        })
    });
    c.bench_function("mesa_mbqueue_5000_actions", |b| {
        b.iter(|| {
            let mb = mesa::mbqueue::MbQueue::new("mb");
            for _ in 0..5000 {
                mb.enqueue(|| {});
            }
            mb.shutdown();
        })
    });
}

fn bench_slack_experiment(c: &mut Criterion) {
    let mut group = c.benchmark_group("slack_e5");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for policy in [
        paradigms::slack::SlackPolicy::PlainYield,
        paradigms::slack::SlackPolicy::YieldButNotToMe,
    ] {
        group.bench_function(format!("{policy:?}"), |b| {
            b.iter(|| {
                xpipe::slackbench::run_slack(xpipe::slackbench::SlackConfig {
                    policy,
                    requests: 300,
                    ..Default::default()
                })
            })
        });
    }
    group.finish();
}

fn bench_spurious_experiment(c: &mut Criterion) {
    let mut group = c.benchmark_group("notify_e6");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for mode in [NotifyMode::Immediate, NotifyMode::DeferredReschedule] {
        group.bench_function(format!("{mode:?}"), |b| {
            b.iter(|| xpipe::spurious::run_notify_bench(mode, 200))
        });
    }
    group.finish();
}

fn bench_xlib_experiment(c: &mut Criterion) {
    let mut group = c.benchmark_group("xlib_e12");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("modified_xlib", |b| b.iter(xpipe::xlib::run_modified_xlib));
    group.bench_function("x1", |b| b.iter(xpipe::xlib::run_x1));
    group.finish();
}

fn bench_exploiters_e13(c: &mut Criterion) {
    let mut group = c.benchmark_group("exploiters_e13");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for cpus in [1usize, 4] {
        group.bench_function(format!("fork_join_16x25ms_{cpus}cpu"), |b| {
            b.iter(|| xpipe::exploiters::fork_join_makespan(cpus, 16, millis(25)))
        });
    }
    group.finish();
}

fn bench_pool(c: &mut Criterion) {
    c.bench_function("mesa_pool_10000_jobs", |b| {
        b.iter(|| {
            let pool = mesa::pool::WorkerPool::new("p", 4);
            for _ in 0..10_000 {
                pool.defer(|| {});
            }
            pool.shutdown();
        })
    });
}

fn bench_guarded_button(c: &mut Criterion) {
    c.bench_function("paradigm_guarded_button_cycle", |b| {
        b.iter(|| {
            let mut sim = Sim::new(SimConfig::default());
            let _ = sim.fork_root("ui", Priority::of(5), |ctx| {
                let button = paradigms::oneshot::GuardedButton::new(millis(100), millis(400));
                let _ = button.press(ctx);
                ctx.sleep_precise(millis(200));
                assert!(button.press(ctx));
            });
            sim.run(RunLimit::For(pcr::secs(5)))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_mbqueue, bench_slack_experiment, bench_spurious_experiment,
              bench_xlib_experiment, bench_exploiters_e13, bench_pool,
              bench_guarded_button
);
criterion_main!(benches);
